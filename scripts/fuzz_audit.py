#!/usr/bin/env python3
"""Audit fuzzer CLI: seeded random traces, every config, all audits on.

Thin wrapper over :mod:`repro.audit.fuzz`::

    PYTHONPATH=src python scripts/fuzz_audit.py                 # default soak
    PYTHONPATH=src python scripts/fuzz_audit.py --cases 40      # CI smoke
    PYTHONPATH=src python scripts/fuzz_audit.py --seed 7 --records 600

Exit status 0 when every case passes; 1 with a shrunk, replayable repro
for each failure otherwise.  Everything is deterministic in ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.audit.fuzz import (  # noqa: E402
    CORPUS_NAMES,
    FUZZ_CONFIGS,
    fuzz,
    render_failure,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cases", type=int, default=200,
                        help="number of audited cases to run (default 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--records", type=int, default=350,
                        help="records per generated trace (default 350)")
    parser.add_argument("--corpus", choices=CORPUS_NAMES, default="random",
                        help="seed family: random program walks, adversarial "
                             "BTB-probe microbenchmarks, or a mix")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without ddmin minimization")
    args = parser.parse_args(argv)

    start = time.monotonic()
    failures = fuzz(
        cases=args.cases,
        seed=args.seed,
        records=args.records,
        shrink_failures=not args.no_shrink,
        progress=lambda line: print(f"FAIL {line}", file=sys.stderr),
        corpus=args.corpus,
    )
    elapsed = time.monotonic() - start
    print(
        f"fuzz_audit: {args.cases} cases x {len(FUZZ_CONFIGS)} configs "
        f"(round robin), corpus {args.corpus!r}, seed {args.seed}: "
        f"{len(failures)} failure(s) in {elapsed:.1f}s"
    )
    for failure in failures:
        print()
        print(render_failure(failure))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
