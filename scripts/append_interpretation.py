#!/usr/bin/env python3
"""Append the interpretation section to EXPERIMENTS.md after a full run.

Computes the headroom-conditioned effectiveness (the meaningful analog of
the paper's 52 % mean) from the cached Figure 2 runs and documents the
known deviations.  Idempotent: skips if the section already exists.
"""

import json
from pathlib import Path

from repro.metrics.counters import btb2_effectiveness, cpi_improvement

MARKER = "## Interpretation"


def figure2_rows(cache_dir: Path) -> dict[str, dict[str, dict]]:
    """Per (workload, config): the largest-scale cached run."""
    rows: dict[str, dict[str, dict]] = {}
    for payload_file in cache_dir.glob("*.json"):
        payload = json.loads(payload_file.read_text())
        per_config = rows.setdefault(payload["workload"], {})
        existing = per_config.get(payload["config"])
        if existing is None or payload["instructions"] > existing["instructions"]:
            per_config[payload["config"]] = payload
    return rows


def main() -> None:
    experiments = Path("EXPERIMENTS.md")
    text = experiments.read_text()
    if MARKER in text:
        print("interpretation section already present")
        return

    effs, positives, total = [], 0, 0
    for workload, configs in figure2_rows(Path(".results_cache")).items():
        if len(configs) < 3:
            continue
        # Use the largest-instruction-count (full-scale) entries only.
        base = configs.get("1. No BTB2")
        btb2 = configs.get("2. BTB2 enabled")
        large = configs.get("3. Unrealistically large BTB1")
        if not (base and btb2 and large):
            continue
        total += 1
        g2 = cpi_improvement(base["cpi"], btb2["cpi"])
        g3 = cpi_improvement(base["cpi"], large["cpi"])
        if g2 > 0:
            positives += 1
        if g3 >= 2.0:
            effs.append(btb2_effectiveness(g2, g3))

    section = [
        "",
        MARKER,
        "",
        "* **Where the mechanism matters, it reproduces.**  On the traces "
        f"with at least 2 % capacity headroom (large-BTB1 gain), the BTB2 "
        f"recovers a mean {sum(effs) / len(effs):.0f} % of the ceiling "
        f"({len(effs)} traces) — the paper reports a 52 % average.",
        f"* {positives}/{total} traces show a positive BTB2 gain.  The "
        "negative tail are the smallest-footprint synthetics, whose working "
        "sets barely exceed the first level: perceived misses still trigger "
        "transfers whose BTBP occupancy costs more than the few capacity "
        "misses they save.  The paper's hardware shows the same shape as a "
        "16.6 % effectiveness low end rather than a negative one because "
        "its traces carry far more reuse per unique branch (hours of server "
        "steady state vs our ~2M-record budget).",
        "* **Absolute gains are attenuated ~2x** against the paper "
        "(max 7.3 % vs 13.8 %) for the same reason: capacity-bad surprises "
        "are 3-6 % of branch outcomes in our traces vs 21.9 % in the "
        "paper's DayTrader DBServ.  Every CPI number above is measured, "
        "not fitted.",
        "* In Figure 4, capacity remains the bad-surprise class the BTB2 "
        "attacks (and the only one that moves); our largest *static* bad "
        "class is wrong-target mispredicts on the per-transaction dispatch "
        "indirect — identical across configurations, so it offsets but "
        "does not distort the comparison.",
        "",
    ]
    experiments.write_text(text + "\n".join(section))
    print("appended interpretation section")


if __name__ == "__main__":
    main()
