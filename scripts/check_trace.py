#!/usr/bin/env python3
"""Telemetry artifact checker: JSONL event streams and Chrome traces.

Validates the files the ``simulate --trace`` / ``--chrome-trace`` flags
produce, for CI smoke steps and by hand::

    PYTHONPATH=src python scripts/check_trace.py events.jsonl
    PYTHONPATH=src python scripts/check_trace.py --chrome trace.json
    PYTHONPATH=src python scripts/check_trace.py ev1.jsonl ev2.jsonl --chrome t.json
    PYTHONPATH=src python scripts/check_trace.py --merged merged.chrome.json
    PYTHONPATH=src python scripts/check_trace.py --metrics metrics.json

* **JSONL** files are checked line by line against the event schema
  (``repro.telemetry.events``): required common fields, per-kind payload
  fields, exact types. Extra fields are fine; unknown kinds are not.
* **Chrome** files must parse as JSON with a non-empty ``traceEvents``
  list whose events carry the ``trace_event`` essentials (``ph``/``pid``,
  names and timestamps per phase type), with every duration begin ("B")
  matched by an end ("E") on its (pid, tid) stack — Perfetto loads such
  a file without complaint.
* **Merged** files (the relay aggregator's output) get all the Chrome
  checks plus the multi-worker contract: relay metadata present, per-lane
  (pid, tid) timestamps monotone non-decreasing, every shard the manifest
  expected accounted for (``missing`` empty), and every worker the
  metadata names owning a pid lane.
* **Metrics** files must validate as a metrics registry snapshot
  (``repro.telemetry.metrics.validate_snapshot``).

Exit status 0 when every file is clean; 1 with a per-problem report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry.distributed import RELAY_SCHEMA  # noqa: E402
from repro.telemetry.events import validate_jsonl  # noqa: E402
from repro.telemetry.metrics import validate_snapshot  # noqa: E402


def check_jsonl_file(path: Path) -> list[str]:
    """Schema problems of one JSONL event file."""
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        return [f"unreadable: {error}"]
    if not any(line.strip() for line in lines):
        return ["no events (empty file)"]
    return validate_jsonl(lines)


def check_chrome_file(path: Path) -> list[str]:
    """Structural problems of one Chrome ``trace_event`` file."""
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        return [f"unreadable: {error}"]
    except ValueError as error:
        return [f"not JSON: {error}"]
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["missing top-level 'traceEvents' object"]
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["'traceEvents' is not a non-empty list"]

    problems = []
    stacks: dict[tuple, list[str]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str):
            problems.append(f"event {index}: missing phase 'ph'")
            continue
        if "pid" not in event:
            problems.append(f"event {index}: missing 'pid'")
        if phase in ("B", "E", "i", "X"):
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event {index}: {phase} without numeric 'ts'")
            if phase != "E" and not isinstance(event.get("name"), str):
                problems.append(f"event {index}: {phase} without 'name'")
        elif phase == "M":
            if not isinstance(event.get("name"), str):
                problems.append(f"event {index}: metadata without 'name'")
        else:
            problems.append(f"event {index}: unknown phase {phase!r}")
        if phase in ("B", "E"):
            key = (event.get("pid"), event.get("tid"))
            stack = stacks.setdefault(key, [])
            if phase == "B":
                stack.append(event.get("name", "?"))
            elif not stack:
                problems.append(f"event {index}: E without matching B")
            else:
                stack.pop()
    for key, stack in stacks.items():
        if stack:
            problems.append(
                f"unclosed span(s) on pid/tid {key}: {', '.join(stack)}"
            )
    return problems


def check_merged_file(path: Path) -> list[str]:
    """Multi-worker contract problems of one aggregated Chrome trace.

    Runs the plain Chrome checks first, then the relay aggregator's
    promises: the ``metadata`` block is present with the expected relay
    schema, no manifest-expected shard is missing, per-lane (pid, tid)
    timestamps are monotone non-decreasing, and every non-empty shard the
    metadata accounts for actually owns events on its pid lane.
    """
    problems = check_chrome_file(path)
    if problems:  # unparseable / structurally broken: stop here
        return problems
    payload = json.loads(path.read_text())
    meta = payload.get("metadata")
    if not isinstance(meta, dict):
        return ["merged trace missing top-level 'metadata' object"]

    if meta.get("relay_schema") != RELAY_SCHEMA:
        problems.append(
            f"metadata relay_schema is {meta.get('relay_schema')!r}, "
            f"expected {RELAY_SCHEMA}")
    shards = meta.get("shards")
    if not isinstance(shards, list) or not shards:
        problems.append("metadata 'shards' is not a non-empty list")
        shards = []
    missing = meta.get("missing")
    if missing:
        for name in missing:
            problems.append(f"manifest-expected shard never appeared: {name}")
    elif missing is None:
        problems.append("metadata missing the 'missing' shard ledger")

    # Per-lane monotone time: within one (pid, tid) lane, timestamps may
    # repeat but never go backwards once sorted by the aggregator.
    last_ts: dict[tuple, float] = {}
    lane_events: dict = {}
    for index, event in enumerate(payload["traceEvents"]):
        pid = event.get("pid")
        lane_events[pid] = lane_events.get(pid, 0) + 1
        if event.get("ph") == "M" or "ts" not in event:
            continue
        lane = (pid, event.get("tid"))
        ts = float(event["ts"])
        if lane in last_ts and ts < last_ts[lane]:
            problems.append(
                f"event {index}: lane {lane} time went backwards "
                f"({last_ts[lane]:g} -> {ts:g})")
        last_ts[lane] = ts

    for shard in shards:
        if not isinstance(shard, dict):
            problems.append(f"metadata shard entry not an object: {shard!r}")
            continue
        pid = shard.get("pid")
        if shard.get("events", 0) > 0 and not lane_events.get(pid):
            problems.append(
                f"shard {shard.get('file')} claims {shard.get('events')} "
                f"event(s) but pid lane {pid} is empty")
    return problems


def check_metrics_file(path: Path) -> list[str]:
    """Schema problems of one metrics registry snapshot file."""
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        return [f"unreadable: {error}"]
    except ValueError as error:
        return [f"not JSON: {error}"]
    return validate_snapshot(payload)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", nargs="*", type=Path,
                        help="JSONL event stream file(s) to validate")
    parser.add_argument("--chrome", action="append", default=[], type=Path,
                        metavar="FILE",
                        help="Chrome trace_event file(s) to validate")
    parser.add_argument("--merged", action="append", default=[], type=Path,
                        metavar="FILE",
                        help="aggregated multi-worker Chrome trace file(s) "
                             "to validate (relay metadata + lane checks)")
    parser.add_argument("--metrics", action="append", default=[], type=Path,
                        metavar="FILE",
                        help="metrics registry snapshot file(s) to validate")
    args = parser.parse_args(argv)
    if not (args.jsonl or args.chrome or args.merged or args.metrics):
        parser.error("nothing to check: give JSONL files, --chrome, "
                     "--merged, and/or --metrics")

    failures = 0
    for path in args.jsonl:
        problems = check_jsonl_file(path)
        _report(path, "jsonl", problems)
        failures += bool(problems)
    for path in args.chrome:
        problems = check_chrome_file(path)
        _report(path, "chrome", problems)
        failures += bool(problems)
    for path in args.merged:
        problems = check_merged_file(path)
        _report(path, "merged", problems)
        failures += bool(problems)
    for path in args.metrics:
        problems = check_metrics_file(path)
        _report(path, "metrics", problems)
        failures += bool(problems)
    return 1 if failures else 0


def _report(path: Path, kind: str, problems: list[str]) -> None:
    if problems:
        for problem in problems[:20]:
            print(f"{path} [{kind}]: {problem}")
        if len(problems) > 20:
            print(f"{path} [{kind}]: ... {len(problems) - 20} more")
    else:
        print(f"{path} [{kind}]: OK")


if __name__ == "__main__":
    sys.exit(main())
