#!/usr/bin/env python3
"""Telemetry artifact checker: JSONL event streams and Chrome traces.

Validates the files the ``simulate --trace`` / ``--chrome-trace`` flags
produce, for CI smoke steps and by hand::

    PYTHONPATH=src python scripts/check_trace.py events.jsonl
    PYTHONPATH=src python scripts/check_trace.py --chrome trace.json
    PYTHONPATH=src python scripts/check_trace.py ev1.jsonl ev2.jsonl --chrome t.json

* **JSONL** files are checked line by line against the event schema
  (``repro.telemetry.events``): required common fields, per-kind payload
  fields, exact types. Extra fields are fine; unknown kinds are not.
* **Chrome** files must parse as JSON with a non-empty ``traceEvents``
  list whose events carry the ``trace_event`` essentials (``ph``/``pid``,
  names and timestamps per phase type), with every duration begin ("B")
  matched by an end ("E") on its (pid, tid) stack — Perfetto loads such
  a file without complaint.

Exit status 0 when every file is clean; 1 with a per-problem report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry.events import validate_jsonl  # noqa: E402


def check_jsonl_file(path: Path) -> list[str]:
    """Schema problems of one JSONL event file."""
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        return [f"unreadable: {error}"]
    if not any(line.strip() for line in lines):
        return ["no events (empty file)"]
    return validate_jsonl(lines)


def check_chrome_file(path: Path) -> list[str]:
    """Structural problems of one Chrome ``trace_event`` file."""
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        return [f"unreadable: {error}"]
    except ValueError as error:
        return [f"not JSON: {error}"]
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["missing top-level 'traceEvents' object"]
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["'traceEvents' is not a non-empty list"]

    problems = []
    stacks: dict[tuple, list[str]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str):
            problems.append(f"event {index}: missing phase 'ph'")
            continue
        if "pid" not in event:
            problems.append(f"event {index}: missing 'pid'")
        if phase in ("B", "E", "i", "X"):
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event {index}: {phase} without numeric 'ts'")
            if phase != "E" and not isinstance(event.get("name"), str):
                problems.append(f"event {index}: {phase} without 'name'")
        elif phase == "M":
            if not isinstance(event.get("name"), str):
                problems.append(f"event {index}: metadata without 'name'")
        else:
            problems.append(f"event {index}: unknown phase {phase!r}")
        if phase in ("B", "E"):
            key = (event.get("pid"), event.get("tid"))
            stack = stacks.setdefault(key, [])
            if phase == "B":
                stack.append(event.get("name", "?"))
            elif not stack:
                problems.append(f"event {index}: E without matching B")
            else:
                stack.pop()
    for key, stack in stacks.items():
        if stack:
            problems.append(
                f"unclosed span(s) on pid/tid {key}: {', '.join(stack)}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", nargs="*", type=Path,
                        help="JSONL event stream file(s) to validate")
    parser.add_argument("--chrome", action="append", default=[], type=Path,
                        metavar="FILE",
                        help="Chrome trace_event file(s) to validate")
    args = parser.parse_args(argv)
    if not args.jsonl and not args.chrome:
        parser.error("nothing to check: give JSONL files and/or --chrome")

    failures = 0
    for path in args.jsonl:
        problems = check_jsonl_file(path)
        _report(path, "jsonl", problems)
        failures += bool(problems)
    for path in args.chrome:
        problems = check_chrome_file(path)
        _report(path, "chrome", problems)
        failures += bool(problems)
    return 1 if failures else 0


def _report(path: Path, kind: str, problems: list[str]) -> None:
    if problems:
        for problem in problems[:20]:
            print(f"{path} [{kind}]: {problem}")
        if len(problems) > 20:
            print(f"{path} [{kind}]: ... {len(problems) - 20} more")
    else:
        print(f"{path} [{kind}]: OK")


if __name__ == "__main__":
    sys.exit(main())
