#!/usr/bin/env python3
"""Documentation checker: links, coverage, headings, docstrings.

Four checks, all wired into the test suite (``tests/test_docs.py``) and
runnable standalone::

    python scripts/check_docs.py [repo_root]

1. **Link integrity** — every relative markdown link ``[text](target)`` in
   the repo's ``*.md`` files must point at an existing file or directory
   (``#anchors`` are stripped; ``http(s)://`` and ``mailto:`` links are
   out of scope).
2. **Architecture coverage** — every package under ``src/repro`` (a
   directory with an ``__init__.py``) must be mentioned by name in
   ``docs/ARCHITECTURE.md``, so the module map cannot silently rot as the
   codebase grows.
3. **Required headings** — sections other parts of the repo rely on
   (e.g. the observability and tracing how-tos that ARCHITECTURE.md and
   the CLI docs cross-reference) must keep existing under their
   registered titles.
4. **Docstring coverage** — the packages registered in
   ``DOCSTRING_PACKAGES`` must carry docstrings on every module and
   every public class, function, and method, so the prose layer of the
   hot-path code (``repro.engine``, ``repro.btb``) cannot regress.

Exit status 0 when clean; 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

#: Markdown inline links: [text](target).  Images ![alt](target) match too
#: via the optional leading "!".
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Directories never scanned for markdown (caches, VCS, build output).
_SKIP_DIRS = {".git", ".results_cache", ".trace_cache", "__pycache__",
              ".pytest_cache", "build", "dist", ".eggs", "node_modules"}

ARCHITECTURE_DOC = Path("docs") / "ARCHITECTURE.md"

#: Doc -> headings that must exist verbatim (line-anchored).  Sections
#: other code or docs link to by name register here so a rename or
#: deletion fails the suite instead of silently orphaning the reference.
REQUIRED_HEADINGS: dict[str, tuple[str, ...]] = {
    "docs/ARCHITECTURE.md": (
        "## Observability",
        "## Auditing & invariants",
        "## Sampling & checkpoints",
        "## Batched engine core",
        "## Checkpoint-parallel simulation",
        "## Distributed observability",
        "## Simulation service",
        "## Predictor zoo",
        "## Verification",
    ),
    "docs/OBSERVABILITY.md": (
        "## The telemetry relay",
        "## The metrics registry",
        "## Live monitoring: repro top",
        "## Perfetto recipe",
        "## CI gates",
    ),
    "docs/PERFORMANCE.md": (
        "## Engine modes",
        "## The batched core: layout and prescan",
        "## The fast/slow path contract",
        "## Benchmark methodology",
        "## Measured throughput",
        "## Interval scaling: the checkpoint-parallel fan-out",
        "## Reading the BENCH files",
    ),
    "docs/TESTING.md": (
        "## Test taxonomy",
        "## Tiers and markers",
        "## The predictor conformance contract",
        "## Regenerating golden baselines",
        "## Reading a divergence report",
        "## Coverage ratchet",
    ),
    "docs/EXPERIMENTS.md": (
        "## Cross-predictor ablations: `repro ablation`",
        "## Tracing, timelines, and profiles",
        "## Auditing and fuzzing: `--audit` / `REPRO_AUDIT`",
        "## Sampled runs and checkpoints: `--sampled` / `repro checkpoint`",
        "## Checkpoint-parallel runs: `--parallel-intervals` / `--backend`",
    ),
    "docs/SERVICE.md": (
        "## API reference",
        "## Session lifecycle",
        "## Backpressure & eviction",
        "## Deployment notes",
        "## Parity guarantees",
    ),
}


def markdown_files(root: Path) -> list[Path]:
    """All markdown files in the repo, skipping cache/VCS directories."""
    found = []
    for path in sorted(root.rglob("*.md")):
        parts = set(path.relative_to(root).parts[:-1])
        if parts & _SKIP_DIRS:
            continue
        found.append(path)
    return found


def extract_links(text: str) -> list[str]:
    """All link targets in ``text``, fenced code blocks excluded."""
    links: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(_LINK.findall(line))
    return links


def check_links(root: Path) -> list[str]:
    """Broken relative links, as ``file: target`` problem strings."""
    problems = []
    for path in markdown_files(root):
        for target in extract_links(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link -> {target}"
                )
    return problems


def repro_packages(root: Path) -> list[str]:
    """Names of all python packages under ``src/repro`` (recursive)."""
    base = root / "src" / "repro"
    names = []
    for init in sorted(base.rglob("__init__.py")):
        package = init.parent
        if package == base:
            continue
        names.append(str(package.relative_to(base)).replace("/", "."))
    return names


def check_architecture_coverage(root: Path) -> list[str]:
    """Packages missing from the module map in docs/ARCHITECTURE.md."""
    doc = root / ARCHITECTURE_DOC
    if not doc.exists():
        return [f"{ARCHITECTURE_DOC} does not exist"]
    text = doc.read_text()
    problems = []
    for package in repro_packages(root):
        leaf = package.rsplit(".", 1)[-1]
        if not re.search(rf"\b{re.escape(leaf)}\b", text):
            problems.append(
                f"{ARCHITECTURE_DOC}: package 'repro.{package}' not mentioned"
            )
    return problems


def check_required_headings(root: Path) -> list[str]:
    """Registered headings missing from their documents."""
    problems = []
    for doc, headings in REQUIRED_HEADINGS.items():
        path = root / doc
        if not path.exists():
            problems.append(f"{doc} does not exist")
            continue
        lines = {line.rstrip() for line in path.read_text().splitlines()}
        for heading in headings:
            if heading not in lines:
                problems.append(f"{doc}: missing heading '{heading}'")
    return problems


#: Packages (relative to ``src/repro``) whose public surface must be
#: fully docstringed.  The engine and BTB hierarchy are the hot-path
#: code documented by docs/PERFORMANCE.md; the predictor zoo is the
#: formal contract documented by docs/TESTING.md; their prose must not
#: rot.
DOCSTRING_PACKAGES: tuple[str, ...] = ("engine", "btb", "service",
                                       "predictors")


def _public_defs(body: list[ast.stmt], *, in_class: bool):
    """Public ``def``/``class`` nodes in ``body`` needing docstrings."""
    for node in body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        if node.name.startswith("_"):
            continue
        if in_class and any(
            isinstance(deco, ast.Name) and deco.id == "overload"
            for deco in getattr(node, "decorator_list", [])
        ):
            continue
        yield node


def check_docstring_coverage(root: Path) -> list[str]:
    """Public names without docstrings in the registered packages.

    Walks every module of each package in :data:`DOCSTRING_PACKAGES` and
    reports a problem string per missing docstring: the module itself,
    each public class and function, and each public method (dunders and
    ``_private`` names are exempt, as are ``@overload`` stubs).
    """
    problems = []
    for package in DOCSTRING_PACKAGES:
        base = root / "src" / "repro" / package
        if not base.is_dir():
            problems.append(f"src/repro/{package}: package does not exist")
            continue
        for source in sorted(base.rglob("*.py")):
            rel = source.relative_to(root)
            tree = ast.parse(source.read_text(), filename=str(rel))
            if ast.get_docstring(tree) is None:
                problems.append(f"{rel}: missing module docstring")
            for node in _public_defs(tree.body, in_class=False):
                if ast.get_docstring(node) is None:
                    problems.append(
                        f"{rel}:{node.lineno}: missing docstring "
                        f"on '{node.name}'"
                    )
                if isinstance(node, ast.ClassDef):
                    for method in _public_defs(node.body, in_class=True):
                        if ast.get_docstring(method) is None:
                            problems.append(
                                f"{rel}:{method.lineno}: missing docstring "
                                f"on '{node.name}.{method.name}'"
                            )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    problems = (check_links(root) + check_architecture_coverage(root)
                + check_required_headings(root)
                + check_docstring_coverage(root))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)")
        return 1
    print(f"docs OK: {len(markdown_files(root))} markdown files, "
          f"{len(repro_packages(root))} repro packages covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
