#!/usr/bin/env python3
"""Enforce the ratcheted branch-coverage floor.

CI runs the fast test tier under ``pytest --cov=repro --cov-branch
--cov-report=json:coverage.json`` and then this script, which compares the
measured total coverage against the committed floor in
``scripts/coverage_floor.json``.  The floor only moves up: after genuinely
improving coverage, re-run with ``--update`` to ratchet it (the new floor
is the measured value minus a small hysteresis margin, so unrelated churn
does not flake the gate).

The script consumes coverage.py's JSON report rather than importing
coverage, so it needs nothing beyond the standard library — locally you
can produce the report with any coverage runner, or simply not run this
gate (exit code 2 distinguishes "no report" from "below floor").
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FLOOR_FILE = Path(__file__).resolve().parent / "coverage_floor.json"
#: Ratchet hysteresis: --update records measured minus this margin.
UPDATE_MARGIN = 1.0


def read_percent(report_path: Path) -> float:
    """Total percent covered from a coverage.py JSON report."""
    report = json.loads(report_path.read_text())
    return float(report["totals"]["percent_covered"])


def read_floor(floor_path: Path = FLOOR_FILE) -> float:
    return float(json.loads(floor_path.read_text())["minimum_percent"])


def write_floor(percent: float, floor_path: Path = FLOOR_FILE) -> None:
    floor_path.write_text(
        json.dumps({"minimum_percent": round(percent, 1)}, indent=2) + "\n"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", default="coverage.json", metavar="PATH",
        help="coverage.py JSON report (default: coverage.json)",
    )
    parser.add_argument(
        "--floor-file", default=str(FLOOR_FILE), metavar="PATH",
        help=f"committed floor (default: {FLOOR_FILE})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="ratchet the floor up to the measured coverage "
             f"(minus a {UPDATE_MARGIN}%% hysteresis margin); never lowers it",
    )
    args = parser.parse_args(argv)

    report_path = Path(args.report)
    floor_path = Path(args.floor_file)
    if not report_path.exists():
        print(f"coverage report not found: {report_path} "
              "(run pytest with --cov-report=json first)", file=sys.stderr)
        return 2
    measured = read_percent(report_path)
    floor = read_floor(floor_path)

    if args.update:
        candidate = measured - UPDATE_MARGIN
        if candidate > floor:
            write_floor(candidate, floor_path)
            print(f"coverage floor ratcheted: {floor:.1f}% -> "
                  f"{candidate:.1f}% (measured {measured:.2f}%)")
        else:
            print(f"coverage floor unchanged at {floor:.1f}% "
                  f"(measured {measured:.2f}%)")
        return 0

    if measured < floor:
        print(f"coverage {measured:.2f}% is below the committed floor "
              f"{floor:.1f}% ({floor_path})", file=sys.stderr)
        return 1
    print(f"coverage {measured:.2f}% >= floor {floor:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
