#!/usr/bin/env python
"""End-to-end smoke test for the simulation daemon.

Boots a real ``repro serve`` subprocess on an ephemeral port, then walks
the whole session lifecycle over HTTP:

1. create a session,
2. stream a small workload trace in over a chunked request,
3. suspend the session to the spool and resume it,
4. stream the remainder and close,
5. demand the counters are bit-identical to an in-process ``simulate``,
6. scrape ``/metrics`` and validate it with ``parse_prometheus``,
7. shut the daemon down gracefully and check it drained.

Exits non-zero (with a reason on stderr) on any deviation.  Used by the
CI fast tier; run locally with ``PYTHONPATH=src python
scripts/service_smoke.py``.
"""

import argparse
import re
import subprocess
import sys
import tempfile
import time


def fail(message: str) -> None:
    print(f"service smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="Informix")
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="overall deadline in seconds")
    args = parser.parse_args()

    from repro.core.config import ZEC12_CONFIG_2
    from repro.engine.simulator import simulate
    from repro.service import ServiceClient
    from repro.telemetry.metrics import parse_prometheus
    from repro.workloads.catalog import workload_by_name

    records = workload_by_name(args.workload).trace(scale=args.scale)
    expected = simulate(records, config=ZEC12_CONFIG_2).counters.state_dict()
    half = len(records) // 2
    deadline = time.monotonic() + args.timeout

    spool = tempfile.mkdtemp(prefix="repro-service-smoke-")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--backend", "thread", "--jobs", "2", "--spool", spool],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        banner = daemon.stdout.readline()
        match = re.search(r"http://[\w.]+:(\d+)", banner)
        if not match:
            fail(f"daemon did not announce a port: {banner!r}")
        port = int(match.group(1))
        print(f"service smoke: daemon up on port {port}, "
              f"{len(records)} records")

        client = ServiceClient(port=port)
        client.wait_healthy(timeout=max(1.0, deadline - time.monotonic()))

        sid = client.create_session(config="2", label="smoke")["id"]
        client.stream(sid, records[:half])
        client.wait_processed(
            sid, half, timeout=max(1.0, deadline - time.monotonic()))

        if client.suspend(sid)["state"] != "suspended":
            fail("suspend did not reach the suspended state")
        if client.resume(sid)["state"] != "active":
            fail("resume did not reactivate the session")
        print("service smoke: suspend/resume cycle ok")

        client.stream(sid, records[half:])
        closed = client.close_session(sid)
        counters = closed["result"]["counters"]
        if counters != expected:
            fail(f"counter parity broken:\n  service  {counters}\n"
                 f"  simulate {expected}")
        print(f"service smoke: counter parity ok "
              f"(cpi={closed['result']['cpi']:.6f})")

        families = parse_prometheus(client.metrics_text())
        for family in ("repro_service_requests_total",
                       "repro_service_records_total",
                       "repro_service_sessions"):
            if family not in families:
                fail(f"/metrics scrape is missing {family}")
        processed = sum(
            families["repro_service_records_total"]["samples"].values())
        if processed != len(records):
            fail(f"/metrics counted {processed} records, "
                 f"expected {len(records)}")
        print("service smoke: /metrics scrape ok")

        client.shutdown()
        daemon.wait(timeout=max(1.0, deadline - time.monotonic()))
        if daemon.returncode != 0:
            fail(f"daemon exited {daemon.returncode} on graceful shutdown")
        print("service smoke: graceful shutdown ok")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    print("service smoke: PASS")


if __name__ == "__main__":
    main()
