"""Figure 6 — varying the definition of a BTB1 miss.

Paper reference: "reporting a BTB1 miss after 4 searches without
predictions, up to 128 bytes, provides the best results on the studied
workloads".  Expected reproduced shape: the mean benefit peaks at (or
statistically near) the 4-search setting — hair-trigger definitions flood
the BTB2 with false misses, lazy ones start transfers too late.
"""

from repro.experiments.figure6 import render, run_figure6


def test_figure6_miss_definition_sweep(benchmark):
    points = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    print()
    print(render(points))

    assert [p.miss_limit for p in points] == [2, 3, 4, 6, 8]
    by_limit = {p.miss_limit: p.mean_gain_percent for p in points}
    # The chosen hardware setting is statistically near the sweep optimum
    # (the curve is shallow at reduced scale, so we bound the shortfall
    # rather than demand an exact argmax).
    shortfall = max(by_limit.values()) - by_limit[4]
    assert shortfall <= 0.4, f"4-search setting trails optimum by {shortfall:.2f}"
