"""Sampled vs full simulation: wall-clock speedup and estimation error.

The acceptance demonstration for `repro.sampling`: one full detailed run
of a Table-4-scale workload against one sampled run under the pinned
plan, asserting the sampled run is **≥5× faster** with **|ΔCPI| ≤ 2 %**
and **|Δbad-outcome-fraction| ≤ 2 %** (absolute).  The measured numbers
— wall times, speedup, both errors, and the per-metric confidence
intervals — are recorded into ``BENCH_sampling.json`` at the repo root.

The plan is fixed (stratified, interval 500 / period 20,000 / warmup
500, seed 777), so the error figures are deterministic; only the wall
times vary with the host.  A smaller-scale version of the same
comparison is pinned in ``tests/sampling/test_runner.py`` so plain
``pytest`` guards the accuracy without paying for the full trace.

This bench always runs the workload at full scale (``scale=1``),
ignoring ``REPRO_SCALE``: "Table-4-scale" is the claim being
demonstrated, and the 5× figure depends on the warming/detailed
throughput ratio integrated over the real trace length.
"""

import time

from common import write_bench
from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import simulate
from repro.sampling import SamplingPlan, error_report, run_sampled
from repro.workloads.catalog import workload_by_name

BENCH_WORKLOAD = "TPF"
BENCH_SCALE = 1.0
BENCH_PLAN = SamplingPlan(mode="stratified", interval=500, period=20_000,
                          warmup=500, seed=777)


def test_sampled_speedup_and_error(benchmark):
    trace = workload_by_name(BENCH_WORKLOAD).trace(scale=BENCH_SCALE)

    start = time.perf_counter()
    full = simulate(trace, config=ZEC12_CONFIG_2)
    full_seconds = time.perf_counter() - start

    def sampled_run():
        return run_sampled(trace, config=ZEC12_CONFIG_2, plan=BENCH_PLAN)

    sampled = benchmark.pedantic(sampled_run, rounds=1, iterations=1)
    sampled_seconds = benchmark.stats["mean"]

    speedup = full_seconds / sampled_seconds
    cpi_error = abs(sampled.cpi - full.cpi) / full.cpi
    bad_error = abs(sampled.bad_outcome_fraction - full.bad_outcome_fraction)

    record = {
        "workload": BENCH_WORKLOAD,
        "scale": BENCH_SCALE,
        "config": ZEC12_CONFIG_2.name,
        "records": len(trace),
        "plan": BENCH_PLAN.describe(),
        "detailed_records": sampled.detailed_records,
        "detailed_fraction": sampled.detailed_records / len(trace),
        "full_seconds": round(full_seconds, 3),
        "sampled_seconds": round(sampled_seconds, 3),
        "speedup": round(speedup, 2),
        "full_cpi": full.cpi,
        "sampled_cpi": sampled.cpi,
        "cpi_rel_error": cpi_error,
        "full_bad_fraction": full.bad_outcome_fraction,
        "sampled_bad_fraction": sampled.bad_outcome_fraction,
        "bad_fraction_abs_error": bad_error,
        "estimates": {
            est.name: {"value": est.value, "ci_halfwidth": est.ci_halfwidth}
            for est in sampled.metric_estimates()
        },
    }
    output = write_bench("sampling", record, "benchmarks/bench_sampling.py")

    print()
    print(error_report(sampled, full=full, max_ci=1.0))
    print(f"\nfull: {full_seconds:.1f} s   sampled: {sampled_seconds:.1f} s"
          f"   speedup: {speedup:.1f}x   -> {output.name}")

    assert speedup >= 5.0, f"sampled speedup {speedup:.2f}x < 5x"
    assert cpi_error <= 0.02, f"|dCPI| {cpi_error:.2%} > 2%"
    assert bad_error <= 0.02, f"|dBad| {bad_error:.4f} > 0.02"
