"""Checkpoint-parallel fan-out: interval-scaling curve and speedup.

The acceptance demonstration for ``repro.sampling.parallel``: one serial
detailed run of TPF against checkpoint-parallel runs at K in {1, 2, 4, 8}
slices, asserting the stitched results are **bit-identical** to serial at
every K and that K=4 is **>= 2.5x** faster on the warm-store fan-out.
The measured numbers — serial wall time, per-K critical-path times,
speedups, and checkpoint traffic — land in ``BENCH_parallel.json`` at the
repo root.

Two timings are reported per K:

* ``cold_seconds`` — first run against an empty store: the producer pass
  steps the detailed model to every slice boundary (inherently serial),
  so the cold run costs roughly serial time plus the fan-out.
* ``warm_seconds`` — rerun with the boundary states on disk: the producer
  steps **zero** records and the run is just the fan-out.  This is the
  regime the subsystem exists for (engine bisection, config sweeps over
  anything downstream of the trace, repeated verification).

Speedup is serial time over the **critical path** (producer seconds plus
the slowest slice's in-worker CPU seconds): the wall-clock lower bound
with one core per slice, which observed wall time converges to on a host
with >= K idle cores.  Reporting the critical path keeps the curve a
property of the decomposition rather than of the core count of the
machine running the bench — a single-core CI runner measures the same
figure a 16-core workstation does.  Both sides are measured
**disk-to-result**: the serial baseline decodes the cached trace before
simulating, because every worker likewise streams and decodes its own
slice — excluding the decode from one side only would skew the ratio.

This bench always runs TPF at full scale (``scale=1``), ignoring
``REPRO_SCALE``: near-linear scaling in K is the claim, and the fixed
per-slice overheads (state load, trace seek) only amortize over
Table-4-length traces.
"""

import time

from common import write_bench
from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import simulate
from repro.sampling import CheckpointStore, ParallelPlan, TraceSource, run_parallel
from repro.trace.reader import load_trace
from repro.workloads.catalog import workload_by_name

BENCH_WORKLOAD = "TPF"
BENCH_SCALE = 1.0
SLICE_COUNTS = (1, 2, 4, 8)
REQUIRED_SPEEDUP_AT_4 = 2.5


def test_parallel_interval_scaling(benchmark, tmp_path):
    spec = workload_by_name(BENCH_WORKLOAD)
    spec.trace(scale=BENCH_SCALE)  # warm the on-disk trace cache (untimed)
    source = TraceSource.for_workload(spec, BENCH_SCALE)
    assert source.path is not None, "bench needs the on-disk trace cache"

    # CPU seconds, matching the per-slice accounting inside the workers.
    start = time.process_time()
    trace = load_trace(source.path)
    serial = simulate(trace, config=ZEC12_CONFIG_2)
    serial_seconds = time.process_time() - start

    # Slices run one at a time (jobs=1) so per-slice CPU accounting is
    # uncontended — concurrent workers time-sharing the bench host's cores
    # would inflate each other's cache-miss costs and turn the curve into
    # a property of the machine.  Cross-process concurrency correctness is
    # covered by the `repro verify` parallel gate, not this bench.
    curve = {}
    for workers in SLICE_COUNTS:
        store = CheckpointStore(tmp_path / f"k{workers}")
        kwargs = dict(config=ZEC12_CONFIG_2, plan=ParallelPlan(workers),
                      checkpoint_store=store, backend="process", jobs=1)
        cold = run_parallel(source, **kwargs)
        warms = [run_parallel(source, **kwargs) for _ in range(2)]
        for stitched in (cold, *warms):
            assert stitched.exact, f"K={workers} degraded to warm fallback"
            assert stitched.result.counters.state_dict() == \
                serial.counters.state_dict(), f"K={workers} not bit-identical"
            assert stitched.cpi == serial.cpi
        # The store made the producer free on the reruns.
        assert all(w.produced_records == 0 for w in warms)
        warm_seconds = min(w.critical_path_seconds for w in warms)
        curve[workers] = {
            "slices": len(cold.outcomes),
            "cold_seconds": round(cold.critical_path_seconds, 3),
            "cold_produce_seconds": round(cold.produce_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "warm_speedup": round(serial_seconds / warm_seconds, 2),
            "checkpoints_saved": cold.checkpoints_saved,
            "checkpoints_loaded": warms[0].checkpoints_loaded,
        }

    # The benchmark fixture records the headline configuration (K=4, warm)
    # as one more observation; the asserted figure is the curve's.
    store4 = CheckpointStore(tmp_path / "k4")

    def warm_fanout():
        return run_parallel(source, config=ZEC12_CONFIG_2,
                            plan=ParallelPlan(4), checkpoint_store=store4,
                            backend="process", jobs=1)

    stitched = benchmark.pedantic(warm_fanout, rounds=1, iterations=1)
    assert stitched.result.counters.state_dict() == \
        serial.counters.state_dict()
    speedup_at_4 = curve[4]["warm_speedup"]

    record = {
        "workload": BENCH_WORKLOAD,
        "scale": BENCH_SCALE,
        "config": ZEC12_CONFIG_2.name,
        "records": len(trace),
        "backend": "process",
        "serial_seconds": round(serial_seconds, 3),
        "serial_cpi": serial.cpi,
        "parallel_cpi": stitched.cpi,
        "bit_identical": True,
        "speedup_at_4": round(speedup_at_4, 2),
        "speedup_measure": "serial_seconds / critical_path_seconds "
                           "(producer + slowest slice; wall-clock bound "
                           "with one core per slice)",
        "curve": curve,
    }
    output = write_bench("parallel", record, "benchmarks/bench_parallel.py")

    print()
    print(f"serial: {serial_seconds:.1f} s over {len(trace):,} records")
    for workers, row in curve.items():
        print(f"  K={workers}: warm {row['warm_seconds']:.1f} s "
              f"({row['warm_speedup']:.1f}x), cold {row['cold_seconds']:.1f} s")
    print(f"-> {output.name}")

    assert speedup_at_4 >= REQUIRED_SPEEDUP_AT_4, \
        f"warm K=4 speedup {speedup_at_4:.2f}x < {REQUIRED_SPEEDUP_AT_4}x"
