"""Telemetry off-path overhead measurement.

The ISSUE-3 contract: with telemetry disabled the simulator must pay no
measurable cost (> 2 %) for carrying the hook sites.  The off path is a
bare attribute test (``if self.telemetry is not None``) per hook site —
the same discipline the auditor uses — so the honest way to bound the
overhead is to measure that guard directly and scale it by a generous
per-record hook count, then compare against the real per-record
simulation cost.

``test_off_path_guard_budget`` does exactly that and asserts the ratio.
``test_whole_run_off_vs_on`` prints the end-to-end rates with telemetry
off and fully on for the curious (the ON path is allowed to be slower —
it does real work); it is informational, not a gate.
"""

import time

import pytest

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.simulator import Simulator
from repro.telemetry import Telemetry
from repro.workloads.catalog import workload_by_name

#: Upper bound on telemetry guard evaluations per trace record.  A
#: non-branch record hits ~2 sites (fetch, sampler tick); a branch adds
#: lookup/outcome/surprise/profiler sites; preload activity adds a few
#: more amortised over many records.  8 is comfortably above the mean.
GUARDS_PER_RECORD = 8

OVERHEAD_BUDGET = 0.02  # the ISSUE-3 "no measurable slowdown" bar


@pytest.fixture(scope="module")
def trace():
    return workload_by_name("TPF").trace(scale=0.06)


class _Host:
    """Stand-in carrying the exact attribute the hook sites test."""

    __slots__ = ("telemetry",)

    def __init__(self):
        self.telemetry = None


def _guard_cost_seconds(iterations: int = 2_000_000) -> float:
    """Per-evaluation cost of ``if host.telemetry is not None``."""
    host = _Host()
    sink = 0
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(iterations):
            if host.telemetry is not None:  # pragma: no cover - never taken
                sink += 1
        best = min(best, time.perf_counter() - start)
    assert sink == 0
    return best / iterations


def test_off_path_guard_budget(trace):
    runs = [time.perf_counter()]
    for _ in range(3):
        Simulator(ZEC12_CONFIG_2).run(trace)
        runs.append(time.perf_counter())
    per_record = min(b - a for a, b in zip(runs, runs[1:])) / len(trace)

    per_guard = _guard_cost_seconds()
    overhead = GUARDS_PER_RECORD * per_guard / per_record
    print(f"\nper-record sim cost: {per_record * 1e6:.2f} us, "
          f"guard cost: {per_guard * 1e9:.1f} ns, "
          f"off-path overhead: {100 * overhead:.3f}% "
          f"(budget {100 * OVERHEAD_BUDGET:.0f}%)")
    assert overhead < OVERHEAD_BUDGET


def test_whole_run_off_vs_on(benchmark, trace):
    def run_on():
        telemetry = Telemetry.full(sample_interval=4096)
        return Simulator(ZEC12_CONFIG_2, telemetry=telemetry).run(trace)

    off_marks = [time.perf_counter()]
    for _ in range(3):
        Simulator(ZEC12_CONFIG_2).run(trace)
        off_marks.append(time.perf_counter())
    off = min(b - a for a, b in zip(off_marks, off_marks[1:]))

    result = benchmark.pedantic(run_on, rounds=3, iterations=1)
    on = benchmark.stats["min"]
    print(f"\ntelemetry off: {len(trace) / off:,.0f} records/s, "
          f"fully on: {len(trace) / on:,.0f} records/s "
          f"({on / off:.2f}x; the ON path does real work)")
    assert result.counters.instructions == len(trace)
