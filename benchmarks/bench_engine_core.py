"""Batched vs object engine: throughput and bit-identity, recorded.

The acceptance demonstration for :mod:`repro.engine.batched`: the same
catalog trace is simulated by the object engine and the batched engine,
in full detail and in functional warming, and the measured throughputs
plus the full ``state_dict()`` comparison land in
``BENCH_engine_core.json`` at the repo root.

The issue that introduced the batched core set *aspirational* targets of
10x (detail) and 50x (warm_run); the recorded numbers are the honestly
achieved ones.  In pure Python the speedup is bounded by Amdahl's law on
the event density: ~22 % of records are branches whose full model work
(search walk, row probe, training, move protocol) is inherent and shared
by both engines, and bulk-transfer busy windows require per-record
preload advances either way.  What the batched core eliminates is the
per-record dispatch for the quiet majority — measured below — while
staying bit-identical (asserted below, and gated by ``repro verify``).

docs/PERFORMANCE.md explains the fast/slow path contract and how to read
the file; CI's nightly job uploads it as an artifact.
"""

import time

from common import write_bench
from repro.core.config import ZEC12_CONFIG_2
from repro.engine.batched import BatchedSimulator
from repro.engine.simulator import Simulator
from repro.workloads.catalog import workload_by_name

BENCH_WORKLOAD = "CB84"
DETAIL_SCALE = 0.25
WARM_SCALE = 0.35
ROUNDS = 3

#: Aspirational targets from the introducing issue, recorded for context.
TARGET_DETAIL_SPEEDUP = 10.0
TARGET_WARM_SPEEDUP = 50.0

#: Regression floors actually asserted: the batched engine must beat the
#: object engine on the detailed path and stay within noise on warming.
FLOOR_DETAIL_SPEEDUP = 1.1
FLOOR_WARM_SPEEDUP = 0.75


def _best_throughput(records, make_sim, run):
    """Best-of-``ROUNDS`` records/second for ``run`` on fresh simulators."""
    best = 0.0
    state = None
    for _ in range(ROUNDS):
        sim = make_sim()
        started = time.perf_counter()
        run(sim, records)
        elapsed = time.perf_counter() - started
        best = max(best, len(records) / elapsed)
        state = sim.state_dict()
    return best, state


def test_engine_core_throughput_and_identity():
    workload = workload_by_name(BENCH_WORKLOAD)
    detail_trace = list(workload.trace(scale=DETAIL_SCALE))
    warm_trace = list(workload.trace(scale=WARM_SCALE))

    detail_object, detail_object_state = _best_throughput(
        detail_trace, lambda: Simulator(config=ZEC12_CONFIG_2),
        lambda sim, records: sim.run(records),
    )
    detail_batched, detail_batched_state = _best_throughput(
        detail_trace,
        lambda: Simulator(config=ZEC12_CONFIG_2, engine_mode="batched"),
        lambda sim, records: sim.run(records),
    )
    warm_object, warm_object_state = _best_throughput(
        warm_trace, lambda: Simulator(config=ZEC12_CONFIG_2),
        lambda sim, records: sim.warm_run(records),
    )
    warm_batched, warm_batched_state = _best_throughput(
        warm_trace,
        lambda: Simulator(config=ZEC12_CONFIG_2, engine_mode="batched"),
        lambda sim, records: sim.warm_run(records),
    )

    detail_identical = detail_object_state == detail_batched_state
    warm_identical = warm_object_state == warm_batched_state

    # Escape statistics of one batched detailed run, for the record.
    sim = Simulator(config=ZEC12_CONFIG_2)
    batched = BatchedSimulator(sim)
    batched.feed(detail_trace)
    sim.finish()

    detail_speedup = detail_batched / detail_object
    warm_speedup = warm_batched / warm_object
    record = {
        "workload": workload.name,
        "config": ZEC12_CONFIG_2.name,
        "detail": {
            "scale": DETAIL_SCALE,
            "records": len(detail_trace),
            "object_records_per_second": round(detail_object),
            "batched_records_per_second": round(detail_batched),
            "speedup": round(detail_speedup, 2),
            "target_speedup": TARGET_DETAIL_SPEEDUP,
            "bit_identical": detail_identical,
        },
        "warm_run": {
            "scale": WARM_SCALE,
            "records": len(warm_trace),
            "object_records_per_second": round(warm_object),
            "batched_records_per_second": round(warm_batched),
            "speedup": round(warm_speedup, 2),
            "target_speedup": TARGET_WARM_SPEEDUP,
            "bit_identical": warm_identical,
        },
        "escapes": {
            "total": sum(batched.escape_counts.values()),
            "per_reason": dict(sorted(batched.escape_counts.items())),
            "fraction_of_records":
                sum(batched.escape_counts.values()) / len(detail_trace),
        },
        "rounds": ROUNDS,
    }
    output = write_bench("engine_core", record,
                         "benchmarks/bench_engine_core.py")

    print()
    print(f"detail: object {detail_object:,.0f} rec/s, "
          f"batched {detail_batched:,.0f} rec/s ({detail_speedup:.2f}x, "
          f"target {TARGET_DETAIL_SPEEDUP:.0f}x)")
    print(f"warm:   object {warm_object:,.0f} rec/s, "
          f"batched {warm_batched:,.0f} rec/s ({warm_speedup:.2f}x, "
          f"target {TARGET_WARM_SPEEDUP:.0f}x)")
    print(f"-> {output.name}")

    assert detail_identical, "detailed batched run diverged from object"
    assert warm_identical, "batched warm_run diverged from object"
    assert detail_speedup >= FLOOR_DETAIL_SPEEDUP, (
        f"detail speedup {detail_speedup:.2f}x < floor "
        f"{FLOOR_DETAIL_SPEEDUP}x"
    )
    assert warm_speedup >= FLOOR_WARM_SPEEDUP, (
        f"warm speedup {warm_speedup:.2f}x < floor {FLOOR_WARM_SPEEDUP}x"
    )
