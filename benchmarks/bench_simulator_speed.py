"""Raw simulator throughput — a true pytest-benchmark measurement.

Unlike the figure benches (which cache results on disk), this measures the
live simulation rate in records/second on a fixed workload slice under the
architected configuration, giving a regression guard for the hot path.
"""

import pytest

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.engine.simulator import Simulator
from repro.workloads.catalog import workload_by_name


@pytest.fixture(scope="module")
def trace():
    return workload_by_name("TPF").trace(scale=0.06)


def test_speed_baseline_config(benchmark, trace):
    result = benchmark.pedantic(
        lambda: Simulator(ZEC12_CONFIG_1).run(trace), rounds=3, iterations=1
    )
    rate = len(trace) / benchmark.stats["mean"]
    print(f"\nconfig 1 simulation rate: {rate:,.0f} records/s")
    assert result.counters.instructions == len(trace)


def test_speed_btb2_config(benchmark, trace):
    result = benchmark.pedantic(
        lambda: Simulator(ZEC12_CONFIG_2).run(trace), rounds=3, iterations=1
    )
    rate = len(trace) / benchmark.stats["mean"]
    print(f"\nconfig 2 simulation rate: {rate:,.0f} records/s")
    assert result.counters.instructions == len(trace)
