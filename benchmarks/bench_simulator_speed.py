"""Raw simulator throughput — a true pytest-benchmark measurement.

Unlike the figure benches (which cache results on disk), the first two
benches measure the live simulation rate in records/second on a fixed
workload slice under the architected configuration, giving a regression
guard for the hot path.

The ``test_speed_pool_*`` pair then measures the experiment harness
end-to-end: the same cold-cache batch of runs executed serially
(``jobs=1``) and through the process pool (``jobs=`` CPU count).  On a
multicore host the parallel batch finishes in roughly ``1/cores`` of the
serial wall time; the README's Performance section quotes these numbers.
"""

import os

import pytest

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2, ZEC12_CONFIG_3
from repro.engine.simulator import Simulator
from repro.experiments.pool import ExecutionLog, RunSpec, run_many
from repro.workloads.catalog import TABLE4_WORKLOADS, workload_by_name

#: The cold-cache batch the pool benches execute: 4 workloads x 3 configs.
POOL_BENCH_SCALE = 0.06
POOL_BENCH_SPECS = tuple(
    RunSpec(spec, config, scale=POOL_BENCH_SCALE)
    for spec in TABLE4_WORKLOADS[:4]
    for config in (ZEC12_CONFIG_1, ZEC12_CONFIG_2, ZEC12_CONFIG_3)
)


@pytest.fixture(scope="module")
def trace():
    return workload_by_name("TPF").trace(scale=0.06)


def test_speed_baseline_config(benchmark, trace):
    result = benchmark.pedantic(
        lambda: Simulator(ZEC12_CONFIG_1).run(trace), rounds=3, iterations=1
    )
    rate = len(trace) / benchmark.stats["mean"]
    print(f"\nconfig 1 simulation rate: {rate:,.0f} records/s")
    assert result.counters.instructions == len(trace)


def test_speed_btb2_config(benchmark, trace):
    result = benchmark.pedantic(
        lambda: Simulator(ZEC12_CONFIG_2).run(trace), rounds=3, iterations=1
    )
    rate = len(trace) / benchmark.stats["mean"]
    print(f"\nconfig 2 simulation rate: {rate:,.0f} records/s")
    assert result.counters.instructions == len(trace)


def _run_pool_batch(tmp_path, jobs: int) -> ExecutionLog:
    """One cold-cache execution of the bench batch at ``jobs`` workers."""
    os.environ["REPRO_RESULTS_CACHE"] = str(tmp_path / f"results-j{jobs}")
    log = ExecutionLog()
    results = run_many(POOL_BENCH_SPECS, jobs=jobs, log=log)
    assert len(results) == len(POOL_BENCH_SPECS)
    assert log.simulated == len(POOL_BENCH_SPECS)
    return log


def test_speed_pool_serial(benchmark, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RESULTS_CACHE", raising=False)
    log = benchmark.pedantic(
        lambda: _run_pool_batch(tmp_path, jobs=1), rounds=1, iterations=1
    )
    print(f"\nserial batch: {log.simulated} runs, "
          f"{log.batch_seconds:.1f} s wall, {log.throughput:,.0f} instr/s")


def test_speed_pool_parallel(benchmark, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RESULTS_CACHE", raising=False)
    jobs = os.cpu_count() or 1
    log = benchmark.pedantic(
        lambda: _run_pool_batch(tmp_path, jobs=jobs), rounds=1, iterations=1
    )
    print(f"\nparallel batch ({jobs} workers): {log.simulated} runs, "
          f"{log.batch_seconds:.1f} s wall, {log.throughput:,.0f} instr/s "
          "(simulated seconds sum across workers)")
