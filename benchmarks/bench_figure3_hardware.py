"""Figure 3 — benefit of the BTB2 on zEC12 hardware (multi-core proxy).

Paper reference: WASDB+CBW2 gains 5.3 % on one hardware core vs 8.5 % in
the model; Web CICS/DB2 gains 3.4 % on four cores.  Expected reproduced
shape: the hardware-proxy gain is positive but smaller than the model gain
(the proxy's finite/shared memory dilutes the branch-prediction share of
CPI), and the 4-core run still shows a positive gain.
"""

from repro.experiments.figure3 import render, run_figure3


def test_figure3_hardware_proxy(benchmark):
    rows = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    print()
    print(render(rows))

    single, quad = rows
    assert single.cores == 1 and quad.cores == 4
    # Hardware-proxy gain below the (infinite-L2) model gain — the paper's
    # explicitly stated expectation.
    assert single.hardware_gain_percent < single.model_gain_percent
    assert single.hardware_gain_percent > 0
    assert quad.hardware_gain_percent > 0
