"""Shared benchmark infrastructure: the single ``BENCH_*.json`` writer.

Every bench that records numbers into the repository root must go through
:func:`write_bench`, which stamps a common provenance envelope (schema
version, bench name, git revision, generator path) around the payload.
The envelope is what makes the scattered ``BENCH_*.json`` files mutually
comparable: a reader can always tell which revision produced a number and
whether the layout is the one it understands.  The schema is documented
in docs/PERFORMANCE.md ("Reading the BENCH files").
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

#: Version of the common BENCH envelope.  Bump when envelope keys change
#: meaning; payload keys are owned by the individual benches.
BENCH_SCHEMA = 1

#: Repository root — BENCH files live here, next to README.md.
REPO_ROOT = Path(__file__).resolve().parent.parent


def git_revision() -> str | None:
    """The repository HEAD revision, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def write_bench(name: str, payload: dict, generator: str) -> Path:
    """Write ``BENCH_<name>.json`` with the common provenance envelope.

    ``payload`` carries the bench-specific measurements; ``generator`` is
    the repo-relative path of the producing bench (e.g.
    ``benchmarks/bench_sampling.py``).  Envelope keys win on collision so
    a payload cannot accidentally mis-stamp its own provenance.  Returns
    the path written.
    """
    record = dict(payload)
    record.update(
        bench_schema=BENCH_SCHEMA,
        bench=name,
        git_rev=git_revision(),
        generated_by=generator,
    )
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path
