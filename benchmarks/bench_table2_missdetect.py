"""Table 2 — BTB1 miss detection timing, driven live.

Reproduces the paper's worked example: with a 3-search limit, searches
launched back-to-back from address 0x102 detect the miss at the b3 cycle of
the third search and report it at the starting search address.
"""

from repro.core.config import ZEC12_CONFIG_1
from repro.core.hierarchy import FirstLevelPredictor
from repro.core.search import (
    LookaheadSearch,
    MISS_DETECT_LATENCY,
    SEQUENTIAL_CYCLES_PER_ROW,
)
from repro.experiments.tables import render_table2


def run_example():
    """Replay the Table 2 scenario; return the emitted miss report."""
    hierarchy = FirstLevelPredictor(ZEC12_CONFIG_1)
    reports = []
    search = LookaheadSearch(hierarchy, miss_limit=3, on_miss=reports.append)
    search.restart(0x102, 0)
    search.run_ahead(until_cycle=3 * SEQUENTIAL_CYCLES_PER_ROW)
    return reports


def test_table2_miss_detection(benchmark):
    reports = benchmark.pedantic(run_example, rounds=1, iterations=1)
    print()
    print(render_table2(miss_limit=3))

    assert len(reports) == 1
    report = reports[0]
    # Reported at the starting search address (0x102, not a row boundary).
    assert report.search_address == 0x102
    # Detected at the b3 stage of the third search.
    assert report.cycle == 2 * SEQUENTIAL_CYCLES_PER_ROW + MISS_DETECT_LATENCY
