"""Figure 2 — CPI improvement per trace and BTB2 effectiveness.

Paper reference: max BTB2 benefit 13.8 % (DayTrader DBServ), large-BTB1
benefit 20.2 % on the same trace, effectiveness 16.6-83.4 % (mean 52 %).
Expected reproduced shape: config 3 >= config 2 >= config 1 on every trace;
effectiveness broadly spread with a mean near one half.
"""

from repro.experiments.figure2 import render, run_figure2, summarize
from repro.experiments.tables import render_table3


def test_figure2_cpi_improvements(benchmark):
    rows = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    print()
    print(render_table3())
    print()
    print(render(rows))

    assert len(rows) == 13
    summary = summarize(rows)
    # Shape assertions.  (1) The BTB2 essentially never beats its own
    # ceiling — the unrealistically large BTB1.
    ceiling_violations = sum(
        1 for row in rows
        if row.btb2_gain_percent > row.large_btb1_gain_percent + 0.5
    )
    assert ceiling_violations <= 2, f"{ceiling_violations} ceiling violations"
    # (2) The best trace shows a clear benefit.
    assert summary["max_btb2_gain_percent"] > 0.5
    # (3) Wherever the capacity headroom is substantial (the large BTB1
    # gains at least 2 %), the BTB2 recovers a solid fraction of it — the
    # paper's ~52 %-mean effectiveness claim.  Traces without headroom can
    # show noisy or slightly negative ratios (our analog of the paper's
    # 16.6 % low end) and are excluded from the ratio, not from the print.
    meaningful = [
        row.effectiveness_percent
        for row in rows
        if row.large_btb1_gain_percent >= 2.0
    ]
    assert meaningful, "no trace shows >= 2% capacity headroom"
    mean_meaningful = sum(meaningful) / len(meaningful)
    assert 25 <= mean_meaningful <= 110, f"effectiveness {mean_meaningful:.1f}%"
