"""Figure 7 — varying the number of BTB2 search trackers.

Paper reference: the zEC12 implements three trackers; the sweep supports
that choice.  Expected reproduced shape: benefit rises from one tracker and
saturates around the implemented three — beyond that, the single-ported
BTB2 transfer pipe is the bottleneck, not miss-tracking capacity.
"""

from repro.experiments.figure7 import render, run_figure7


def test_figure7_tracker_sweep(benchmark):
    points = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    print()
    print(render(points))

    assert [p.trackers for p in points] == [1, 2, 3, 4, 8]
    by_count = {p.trackers: p.mean_gain_percent for p in points}
    # More trackers never hurt much, and three captures nearly all of
    # eight's benefit (saturation).
    assert by_count[3] >= by_count[1] - 0.15
    assert by_count[3] >= by_count[8] - 0.30
