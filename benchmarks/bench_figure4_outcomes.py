"""Figure 4 — effect of the BTB2 on bad branch outcomes (DayTrader DBServ).

Paper reference: 25.9 % bad outcomes without the BTB2 (21.9 points
capacity) dropping to 14.3 % with it (capacity to 8.1 points).  Expected
reproduced shape: capacity is the largest bad-surprise category in the
baseline and shrinks by the biggest margin when the BTB2 is enabled, while
compulsory stays identical (the BTB2 cannot invent first sightings).
"""

from repro.core.events import OutcomeKind
from repro.experiments.figure4 import render, run_figure4


def test_figure4_bad_branch_outcomes(benchmark):
    columns = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    print()
    print(render(columns))

    without, with_btb2 = columns
    capacity = OutcomeKind.SURPRISE_CAPACITY
    compulsory = OutcomeKind.SURPRISE_COMPULSORY

    assert with_btb2.total_bad < without.total_bad
    assert with_btb2.fractions[capacity] < without.fractions[capacity]
    # Compulsory misses are untouched by definition (the BTB2 cannot
    # invent first sightings).
    assert abs(
        with_btb2.fractions[compulsory] - without.fractions[compulsory]
    ) < 1e-9
    # The paper's central Figure 4 claim: the reduction comes from the
    # capacity category — it shrinks more than every other bad category.
    reductions = {
        kind: without.fractions[kind] - with_btb2.fractions[kind]
        for kind in without.fractions
    }
    assert reductions[capacity] == max(reductions.values())
