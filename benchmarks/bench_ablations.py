"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each ablation reruns a representative subset of the Table 4 workloads with
one design decision changed, reporting the mean BTB2 benefit so the
contribution of each mechanism is visible in isolation:

* ordering-table steering on/off (section 3.7);
* the I-cache-miss filter: partial search (implemented) vs blocking
  filtered misses vs no filter (section 3.5);
* semi-exclusive vs inclusive vs no-victim-writeback BTB2 management
  (section 3.3);
* BTBP present vs BTB2 hits written straight into the BTB1 (pollution
  study, section 3.1).
"""

import pytest

from repro.core.config import (
    ExclusivityMode,
    FilterMode,
    ZEC12_CONFIG_1,
    ZEC12_CONFIG_2,
)
from repro.experiments.common import mean, run_workload
from repro.metrics.counters import cpi_improvement
from repro.workloads.catalog import workload_by_name

#: Representative subset: small/medium/large/highest-gain workloads.
ABLATION_WORKLOADS = tuple(
    workload_by_name(name)
    for name in ("CB84", "IMS", "DayTrader DBServ", "zLinux Trade6")
)


def mean_gain(config):
    """Mean CPI improvement of ``config`` over configuration 1."""
    gains = []
    for spec in ABLATION_WORKLOADS:
        base = run_workload(spec, ZEC12_CONFIG_1)
        variant = run_workload(spec, config)
        gains.append(cpi_improvement(base.cpi, variant.cpi))
    return mean(gains)


def test_ablation_steering(benchmark):
    def run():
        return {
            "steered (zEC12)": mean_gain(ZEC12_CONFIG_2),
            "sequential order": mean_gain(
                ZEC12_CONFIG_2.with_(steering_enabled=False,
                                     name="no steering")
            ),
        }

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: BTB2 search steering (mean gain, 4 traces)")
    for label, gain in gains.items():
        print(f"  {label:20s} {gain:6.2f}%")
    # Steering must not lose to naive sequential return ordering.
    assert gains["steered (zEC12)"] >= gains["sequential order"] - 0.35


def test_ablation_icache_filter(benchmark):
    def run():
        return {
            "partial search (zEC12)": mean_gain(ZEC12_CONFIG_2),
            "block filtered misses": mean_gain(
                ZEC12_CONFIG_2.with_(filter_mode=FilterMode.BLOCK,
                                     name="filter: block")
            ),
            "no filter (all full)": mean_gain(
                ZEC12_CONFIG_2.with_(filter_mode=FilterMode.OFF,
                                     name="filter: off")
            ),
        }

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: I-cache-miss filter (mean gain, 4 traces)")
    for label, gain in gains.items():
        print(f"  {label:24s} {gain:6.2f}%")
    # The implemented partial search recovers the sporadic capacity gaps
    # the blocking filter gives up on.
    assert gains["partial search (zEC12)"] >= gains["block filtered misses"] - 0.35


def test_ablation_exclusivity(benchmark):
    def run():
        return {
            "semi-exclusive (zEC12)": mean_gain(ZEC12_CONFIG_2),
            "inclusive": mean_gain(
                ZEC12_CONFIG_2.with_(exclusivity=ExclusivityMode.INCLUSIVE,
                                     name="inclusive")
            ),
            "no victim writeback": mean_gain(
                ZEC12_CONFIG_2.with_(
                    exclusivity=ExclusivityMode.NO_VICTIM_WRITEBACK,
                    name="no writeback",
                )
            ),
        }

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: BTB1/BTB2 exclusivity protocol (mean gain, 4 traces)")
    for label, gain in gains.items():
        print(f"  {label:24s} {gain:6.2f}%")
    # Dropping victim write-back starves the BTB2 of trained content.
    assert gains["semi-exclusive (zEC12)"] >= gains["no victim writeback"] - 0.35


def test_extension_features(benchmark):
    """Paper-described extensions (3.4 alternative / section 6 future work).

    Decode-time miss reporting adds a later, less speculative miss signal;
    bounded multi-block transfer chases one cross-block target per
    delivery.  Neither is in the shipped zEC12 design; the bench shows
    what they would buy on these workloads.
    """

    def run():
        return {
            "zEC12 design": mean_gain(ZEC12_CONFIG_2),
            "+ decode miss reports": mean_gain(
                ZEC12_CONFIG_2.with_(decode_miss_reporting=True,
                                     name="decode miss reporting")
            ),
            "+ multi-block transfer": mean_gain(
                ZEC12_CONFIG_2.with_(multi_block_transfer=True,
                                     name="multi-block transfer")
            ),
            "+ both": mean_gain(
                ZEC12_CONFIG_2.with_(decode_miss_reporting=True,
                                     multi_block_transfer=True,
                                     name="both extensions")
            ),
        }

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExtensions beyond the shipped design (mean gain, 4 traces)")
    for label, gain in gains.items():
        print(f"  {label:24s} {gain:6.2f}%")
    assert all(isinstance(g, float) for g in gains.values())


def test_ablation_btbp(benchmark):
    def run():
        return {
            "BTBP filter (zEC12)": mean_gain(ZEC12_CONFIG_2),
            "transfers direct to BTB1": mean_gain(
                ZEC12_CONFIG_2.with_(btbp_enabled=False, name="no BTBP")
            ),
        }

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: BTBP as transfer filter (mean gain, 4 traces)")
    for label, gain in gains.items():
        print(f"  {label:26s} {gain:6.2f}%")
    # Sanity only: both must run.  (Whether pollution hurts depends on the
    # workload mix; EXPERIMENTS.md records the observed direction.)
    assert all(isinstance(g, float) for g in gains.values())
