"""Table 1 — the 7-cycle first-level search pipeline, driven live.

The table is regenerated from the implementation's constants, and the
throughput rules of section 3.2 are measured on purpose-built microtraces
(the same checks the unit suite makes, here against the architected
configuration end to end).
"""

from repro.btb.entry import BTBEntry
from repro.core.config import ZEC12_CONFIG_1
from repro.core.hierarchy import FirstLevelPredictor
from repro.core.search import (
    COST_SINGLE_BRANCH_LOOP,
    COST_TAKEN_MRU,
    LookaheadSearch,
)
from repro.experiments.tables import render_table1


def measure_loop_rate():
    """Cycles per prediction of a single-taken-branch loop (must be 1)."""
    hierarchy = FirstLevelPredictor(ZEC12_CONFIG_1)
    search = LookaheadSearch(hierarchy)
    search.restart(0x1000, 0)
    hierarchy.btb1.install(BTBEntry(address=0x1004, target=0x1000))
    search.advance_to_branch(0x1004)  # warm
    start = search.cycle
    iterations = 1000
    for _ in range(iterations):
        search.advance_to_branch(0x1004)
    return (search.cycle - start) / iterations


def test_table1_search_pipeline(benchmark):
    rate = benchmark.pedantic(measure_loop_rate, rounds=1, iterations=1)
    print()
    print(render_table1())
    print(f"\nmeasured single-branch loop rate: {rate:.2f} cycles/prediction")
    assert rate == COST_SINGLE_BRANCH_LOOP
    assert COST_TAKEN_MRU == 3  # Table 1 b3 re-index rate
