"""Table 4 — the 13 large-footprint traces: paper counters vs measured.

The synthetic workloads preserve the *ordering* and capacity-relevance of
the paper's trace population (see DESIGN.md §1 on working-set scaling); the
bench prints paper-vs-measured side by side and asserts the invariants the
reproduction relies on.
"""

from repro.experiments.tables import render_table4
from repro.trace.stats import LARGE_FOOTPRINT_TAKEN_BRANCHES
from repro.workloads.catalog import TABLE4_WORKLOADS


def collect():
    return [(spec, spec.stats()) for spec in TABLE4_WORKLOADS]


def test_table4_trace_population(benchmark):
    measured = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    print(render_table4())

    for spec, stats in measured:
        # Every trace must qualify as "large footprint" by the paper's own
        # criterion (> 5,000 unique taken branch addresses) at full scale;
        # at bench scale we require at least a capacity-relevant population.
        assert stats.unique_taken_branch_addresses > min(
            LARGE_FOOTPRINT_TAKEN_BRANCHES, 2_000
        ), spec.name
    # Relative ordering across workloads follows the paper's Table 4 for
    # the extremes: the Trade6-class giants exceed the TPF-class compacts.
    by_name = {spec.name: stats for spec, stats in measured}
    giants = by_name["Z/OS Trade6"].unique_branch_addresses
    compact = by_name["TPF airline reservations"].unique_branch_addresses
    assert giants > compact
