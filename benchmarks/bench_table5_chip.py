"""Table 5 — zEnterprise EC12 chip configuration, and the model's use of it.

The table itself is configuration data; the bench verifies the pieces the
simulator actually instantiates (the 64 KB 4-way L1I) match it, and times a
short architected-configuration run as a sanity measurement.
"""

from repro.core.config import ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING, ZEC12_CHIP_CONFIG
from repro.engine.simulator import Simulator
from repro.experiments.tables import render_table5
from repro.workloads.catalog import workload_by_name


def run_short():
    trace = workload_by_name("TPF").trace(scale=0.05)
    return Simulator(ZEC12_CONFIG_2).run(trace)


def test_table5_chip_configuration(benchmark):
    result = benchmark.pedantic(run_short, rounds=1, iterations=1)
    print()
    print(render_table5())

    assert "64KB (4-way)" in ZEC12_CHIP_CONFIG["L1 Cache"]
    assert DEFAULT_TIMING.icache_capacity_bytes == 64 * 1024
    assert DEFAULT_TIMING.icache_ways == 4
    assert result.icache_stats["misses"] > 0
