"""Benchmark harness configuration.

Benches regenerate every table and figure of the paper.  By default they
run at ``REPRO_SCALE=0.35`` (35 % of the full trace lengths — the smallest
scale at which the capacity-miss phenomenon survives, see
``repro.workloads.catalog.scaled_functions``) so the whole suite finishes
in tens of minutes rather than an hour; set ``REPRO_SCALE=1`` to reproduce the
EXPERIMENTS.md numbers exactly (tens of minutes).

Traces and simulation results are cached in ``.trace_cache/`` and
``.results_cache/`` — baseline runs are shared between figures, so the
suite does not re-simulate configuration 1 thirteen times per figure.
Both caches are safe under concurrent writers: set ``REPRO_JOBS=N`` (0 =
one worker per CPU) to let the figure runners fan cache misses out over N
processes via ``repro.experiments.pool`` — on a cold cache and a multicore
host this cuts regeneration wall time by roughly the core count.
"""

import os
import sys
from pathlib import Path

DEFAULT_BENCH_SCALE = "0.35"

os.environ.setdefault("REPRO_SCALE", DEFAULT_BENCH_SCALE)

# Make the shared BENCH writer importable as ``from common import
# write_bench`` regardless of pytest's rootdir/importmode.
sys.path.insert(0, str(Path(__file__).resolve().parent))
