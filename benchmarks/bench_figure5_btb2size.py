"""Figure 5 — varying the BTB2 size (mean over the 13 traces).

Paper reference: the sweep "demonstrat[es] the performance opportunity of a
larger BTB2".  Expected reproduced shape: mean benefit grows with BTB2
capacity (diminishing returns allowed), with the implemented 24k point
well inside the rising part of the curve.
"""

from repro.experiments.figure5 import render, run_figure5


def test_figure5_btb2_size_sweep(benchmark):
    points = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    print()
    print(render(points))

    assert [p.capacity for p in points] == [6144, 12288, 24576, 49152, 98304]
    implemented = next(p for p in points if p.implemented)
    assert implemented.capacity == 24576
    # Bigger is better overall: the largest BTB2 beats the smallest.
    assert points[-1].mean_gain_percent > points[0].mean_gain_percent
    # The implemented point captures most of the largest point's benefit.
    assert implemented.mean_gain_percent > 0.5 * points[-1].mean_gain_percent
