"""BTB2 — the large second-level branch target buffer.

"The BTB2 contains 24k branches and is organized as a 4k x 6-way cache ...
Instruction address bits 47:58 are used to index the BTB2." (paper, 3.1)

The BTB2 *never makes predictions directly*.  It is read only by the bulk
transfer engine (row by row, one row per cycle) and written on two occasions:

* surprise installs into the hierarchy (duplicated from the BTBP install);
* BTB1 victims, at the moment a BTBP entry is promoted into the BTB1.

Semi-exclusivity (section 3.3): "When an entry is copied from BTB2 to BTBP,
it is made LRU in the BTB2.  Upon moving content from the BTBP to BTB1, the
content that is evicted from the BTB1 is written into the LRU column in the
BTB2 and made MRU."  Making transfer hits LRU means they are the first
candidates for replacement by subsequent victims/installs — approximating
exclusivity without an invalidation write.

Transferred entries are *cloned* into the BTBP: the first level then trains
its own copy, and the freshest learned state returns to the BTB2 with the
eventual BTB1 victim write-back, exactly the paper's exclusive-design
freshness argument.
"""

from __future__ import annotations

from repro.btb.entry import BTBEntry
from repro.btb.storage import BranchTargetBuffer
from repro.isa.address import BLOCK_BYTES, ROW_BYTES

BTB2_ROWS = 4096
BTB2_WAYS = 6


class BTB2(BranchTargetBuffer):
    """Second-level BTB with the semi-exclusive management protocol."""

    def __init__(self, rows: int = BTB2_ROWS, ways: int = BTB2_WAYS) -> None:
        super().__init__(rows=rows, ways=ways, name="BTB2")
        self.transfer_hits = 0
        self.victim_writes = 0
        self.surprise_writes = 0

    def transfer_row(self, address: int) -> list[BTBEntry]:
        """Read one 32-byte row for a bulk transfer.

        Every tag-matching entry is a "BTB2 hit"; each hit is demoted to LRU
        in its congruence class and a *clone* is returned for installation
        into the BTBP.
        """
        hits = self.search_row(address)
        clones = []
        for entry in hits:
            self.demote(entry)
            self.transfer_hits += 1
            clones.append(entry.clone())
        return clones

    def transfer_span(self, start: int, row_count: int) -> list[BTBEntry]:
        """Read ``row_count`` consecutive rows starting at ``start``.

        Behaviorally identical to calling :meth:`transfer_row` for each row
        address in ascending order (pinned by test), but with the row loop
        inside one frame — this is the functional-warming fast path, where
        per-call overhead dominates.
        """
        clones: list[BTBEntry] = []
        rows = self._rows
        total_rows = self.rows
        hits_total = 0
        for row_start in range(start, start + row_count * ROW_BYTES,
                               ROW_BYTES):
            ways = rows[(row_start >> 5) % total_rows]
            if not ways:
                continue
            hits = [
                entry for entry in ways
                if entry.address & ~(ROW_BYTES - 1) == row_start
            ]
            if not hits:
                continue
            if len(hits) > 1:
                hits.sort(key=lambda entry: entry.address)
            hits_total += len(hits)
            for entry in hits:
                self.demote(entry)
                clones.append(entry.clone())
        self.transfer_hits += hits_total
        return clones

    def transfer_block(self, block: int) -> list[BTBEntry]:
        """Read every row of one 4 KB block (:meth:`transfer_span`)."""
        return self.transfer_span(block, BLOCK_BYTES // ROW_BYTES)

    def write_victim(self, entry: BTBEntry) -> BTBEntry | None:
        """Write a BTB1 victim into the LRU column and make it MRU."""
        self.victim_writes += 1
        return self.install_lru(entry)

    def write_surprise(self, entry: BTBEntry) -> BTBEntry | None:
        """Duplicate a surprise install into the BTB2 (clone, MRU)."""
        self.surprise_writes += 1
        return self.install(entry.clone())

    def state_dict(self) -> dict:
        """Table state plus the BTB2-specific write/hit counters."""
        state = super().state_dict()
        state["transfer_hits"] = self.transfer_hits
        state["victim_writes"] = self.victim_writes
        state["surprise_writes"] = self.surprise_writes
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore table state and counters captured by ``state_dict``."""
        super().load_state_dict(state)
        self.transfer_hits = state["transfer_hits"]
        self.victim_writes = state["victim_writes"]
        self.surprise_writes = state["surprise_writes"]
