"""Surprise-branch direction guessing.

"Any branch not predicted by the first level predictor is called a surprise
branch and its direction (taken or not-taken) is guessed based on a tagless
32k entry one-bit BHT, its opcode and other instruction text fields."
(paper, 3.1)

The guess combines the opcode static rule (:func:`repro.isa.opcodes.static_guess`)
with a tagless, direct-mapped, one-bit history table: once a conditional
branch has resolved, its hashed slot remembers the last direction and
overrides the static rule on the next surprise encounter.  Being tagless,
the table aliases freely — that is faithful to the hardware and is what the
tests probe.
"""

from __future__ import annotations

from repro.isa.opcodes import BranchKind, static_guess

SURPRISE_BHT_ENTRIES = 32 * 1024


class SurpriseBHT:
    """Tagless 32k-entry one-bit direction history for surprise branches."""

    def __init__(self, entries: int = SURPRISE_BHT_ENTRIES) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        # One bit per entry; None means never written (fall back to static).
        self._bits: list[bool | None] = [None] * entries
        self.guesses = 0
        self.correct_guesses = 0

    def _index(self, address: int) -> int:
        # Halfword-aligned instruction addresses: drop bit 63..63 (addresses
        # are even) and fold the rest into the table.
        return (address >> 1) % self.entries

    def guess(self, address: int, kind: BranchKind, backward: bool) -> bool:
        """Direction guess for a surprise branch at ``address``."""
        self.guesses += 1
        if kind.always_taken:
            return True
        bit = self._bits[self._index(address)]
        if bit is None:
            return static_guess(kind, backward)
        return bit

    def update(self, address: int, kind: BranchKind, taken: bool) -> None:
        """Record the resolved direction of a conditional branch."""
        if kind is BranchKind.COND:
            self._bits[self._index(address)] = taken

    def record_outcome(self, guessed: bool, taken: bool) -> None:
        """Bookkeeping for guess accuracy statistics."""
        if guessed == taken:
            self.correct_guesses += 1

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Sparse snapshot: ``[index, bit]`` for every written slot."""
        return {
            "bits": [
                [index, bit]
                for index, bit in enumerate(self._bits)
                if bit is not None
            ],
            "guesses": self.guesses,
            "correct_guesses": self.correct_guesses,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self._bits = [None] * self.entries
        for index, bit in state["bits"]:
            self._bits[index] = bit
        self.guesses = state["guesses"]
        self.correct_guesses = state["correct_guesses"]

    @property
    def accuracy(self) -> float:
        """Fraction of recorded guesses that matched the resolution."""
        return self.correct_guesses / self.guesses if self.guesses else 0.0
