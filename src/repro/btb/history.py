"""Path history feeding the PHT and CTB.

"The PHT contains 4,096 entries and is indexed based on the direction of the
12 previous predicted branches and the instruction addresses of the 6
previous taken branches.  The CTB contains 2,048 entries and is indexed
based on the instruction addresses of the 12 previous taken branches."
(paper, 3.1)

:class:`PathHistory` maintains exactly those two streams and produces the
folded index hashes.  It supports snapshot/restore so the simulator can keep
a speculative copy along the lookahead search path and repair it on restarts
("Until table updates take place, speculative BHT and PHT updates are
applied to predictions", 3.2).
"""

from __future__ import annotations

from collections import deque

DIRECTION_DEPTH = 12
PHT_ADDRESS_DEPTH = 6
CTB_ADDRESS_DEPTH = 12


class PathHistory:
    """Sliding window of predicted directions and taken-branch addresses."""

    def __init__(self) -> None:
        self._directions: deque[bool] = deque(maxlen=DIRECTION_DEPTH)
        self._taken_addresses: deque[int] = deque(maxlen=CTB_ADDRESS_DEPTH)
        # Incrementally maintained index material, so the per-branch
        # :meth:`record` and the per-lookup index computations are O(1)
        # instead of re-folding the windows.  ``_fold_addresses`` stays as
        # the reference implementation; :meth:`restore` recomputes from it
        # and a property test pins the equivalence.
        self._dir_bits = 0
        self._pht_fold = 0
        self._ctb_fold = 0

    def record(self, branch_address: int, taken: bool) -> None:
        """Push one predicted/resolved branch into the history."""
        self._dir_bits = ((self._dir_bits << 1) | taken) & 0xFFF
        self._directions.append(taken)
        if taken:
            addresses = self._taken_addresses
            count = len(addresses)
            half = (branch_address >> 1) & 0xFFFF
            # Rotate the whole fold left 3, then cancel the element leaving
            # the window: its contribution now sits at rotation 3*depth
            # (mod 16) — rotl 2 for the 6-deep PHT fold, rotl 4 for the
            # 12-deep CTB fold.
            fold = ((self._pht_fold << 3) | (self._pht_fold >> 13)) & 0xFFFF
            if count >= PHT_ADDRESS_DEPTH:
                old = (addresses[-PHT_ADDRESS_DEPTH] >> 1) & 0xFFFF
                fold ^= ((old << 2) | (old >> 14)) & 0xFFFF
            self._pht_fold = fold ^ half
            fold = ((self._ctb_fold << 3) | (self._ctb_fold >> 13)) & 0xFFFF
            if count >= CTB_ADDRESS_DEPTH:
                old = (addresses[0] >> 1) & 0xFFFF
                fold ^= ((old << 4) | (old >> 12)) & 0xFFFF
            self._ctb_fold = fold ^ half
            addresses.append(branch_address)

    def snapshot(self) -> tuple[tuple[bool, ...], tuple[int, ...]]:
        """Immutable copy of the current history state."""
        return (tuple(self._directions), tuple(self._taken_addresses))

    def restore(self, state: tuple[tuple[bool, ...], tuple[int, ...]]) -> None:
        """Reset the history to a previously snapshotted state."""
        directions, addresses = state
        self._directions = deque(directions, maxlen=DIRECTION_DEPTH)
        self._taken_addresses = deque(addresses, maxlen=CTB_ADDRESS_DEPTH)
        bits = 0
        for bit in self._directions:
            bits = (bits << 1) | int(bit)
        self._dir_bits = bits
        self._pht_fold = self._fold_addresses(PHT_ADDRESS_DEPTH)
        self._ctb_fold = self._fold_addresses(CTB_ADDRESS_DEPTH)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of both history streams."""
        return {
            "directions": list(self._directions),
            "taken_addresses": list(self._taken_addresses),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self.restore((tuple(state["directions"]), tuple(state["taken_addresses"])))

    def _fold_addresses(self, depth: int) -> int:
        folded = 0
        recent = list(self._taken_addresses)[-depth:]
        for address in recent:
            # Rotate-and-xor fold of the halfword address; the rotate keeps
            # path order significant (a->b differs from b->a).
            folded = ((folded << 3) | (folded >> 13)) & 0xFFFF
            folded ^= (address >> 1) & 0xFFFF
        return folded

    def pht_index(self, table_entries: int) -> int:
        """PHT index: 12 direction bits xor 6 folded taken addresses."""
        return (self._dir_bits ^ self._pht_fold) % table_entries

    def ctb_index(self, table_entries: int) -> int:
        """CTB index: 12 folded taken-branch addresses."""
        return self._ctb_fold % table_entries
