"""Path history feeding the PHT and CTB.

"The PHT contains 4,096 entries and is indexed based on the direction of the
12 previous predicted branches and the instruction addresses of the 6
previous taken branches.  The CTB contains 2,048 entries and is indexed
based on the instruction addresses of the 12 previous taken branches."
(paper, 3.1)

:class:`PathHistory` maintains exactly those two streams and produces the
folded index hashes.  It supports snapshot/restore so the simulator can keep
a speculative copy along the lookahead search path and repair it on restarts
("Until table updates take place, speculative BHT and PHT updates are
applied to predictions", 3.2).
"""

from __future__ import annotations

from collections import deque

DIRECTION_DEPTH = 12
PHT_ADDRESS_DEPTH = 6
CTB_ADDRESS_DEPTH = 12


class PathHistory:
    """Sliding window of predicted directions and taken-branch addresses."""

    def __init__(self) -> None:
        self._directions: deque[bool] = deque(maxlen=DIRECTION_DEPTH)
        self._taken_addresses: deque[int] = deque(maxlen=CTB_ADDRESS_DEPTH)

    def record(self, branch_address: int, taken: bool) -> None:
        """Push one predicted/resolved branch into the history."""
        self._directions.append(taken)
        if taken:
            self._taken_addresses.append(branch_address)

    def snapshot(self) -> tuple[tuple[bool, ...], tuple[int, ...]]:
        """Immutable copy of the current history state."""
        return (tuple(self._directions), tuple(self._taken_addresses))

    def restore(self, state: tuple[tuple[bool, ...], tuple[int, ...]]) -> None:
        """Reset the history to a previously snapshotted state."""
        directions, addresses = state
        self._directions = deque(directions, maxlen=DIRECTION_DEPTH)
        self._taken_addresses = deque(addresses, maxlen=CTB_ADDRESS_DEPTH)

    def _fold_addresses(self, depth: int) -> int:
        folded = 0
        recent = list(self._taken_addresses)[-depth:]
        for address in recent:
            # Rotate-and-xor fold of the halfword address; the rotate keeps
            # path order significant (a->b differs from b->a).
            folded = ((folded << 3) | (folded >> 13)) & 0xFFFF
            folded ^= (address >> 1) & 0xFFFF
        return folded

    def pht_index(self, table_entries: int) -> int:
        """PHT index: 12 direction bits xor 6 folded taken addresses."""
        directions = 0
        for bit in self._directions:
            directions = (directions << 1) | int(bit)
        return (directions ^ self._fold_addresses(PHT_ADDRESS_DEPTH)) % table_entries

    def ctb_index(self, table_entries: int) -> int:
        """CTB index: 12 folded taken-branch addresses."""
        return self._fold_addresses(CTB_ADDRESS_DEPTH) % table_entries
