"""Branch target buffer entries and the per-entry bimodal direction state.

"Each BTB1 entry contains a 2-bit bimodal Branch History Table (BHT)
direction prediction and a target address used for predicted taken branches"
(paper, 3.1).  The BTBP and BTB2 hold "the same type of content".

Entries are *mutable objects that migrate between levels by reference*,
mirroring the semi-exclusive protocol: when a BTB1 victim is written to the
BTB2, "any information that has been learned about that branch's behavior is
written into the BTB2" (3.3) — i.e. the learned bimodal counter, the current
target, and the PHT/CTB override bits travel with the entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import BranchKind

#: 2-bit saturating counter states.
STRONG_NOT_TAKEN, WEAK_NOT_TAKEN, WEAK_TAKEN, STRONG_TAKEN = range(4)


@dataclass(slots=True)
class BTBEntry:
    """Prediction metadata for one ever-taken branch.

    ``address`` doubles as the tag (full-address tags; see DESIGN.md §7).
    ``use_pht`` / ``use_ctb`` are the control bits "maintained in the BTB1
    and BTBP to control whether or not the PHT and/or CTB are allowed to be
    used for a particular branch" (3.1).
    """

    address: int
    target: int
    kind: BranchKind = BranchKind.COND
    counter: int = WEAK_TAKEN
    use_pht: bool = False
    use_ctb: bool = False
    #: 2-bit CTB confidence: the CTB prediction is only applied while
    #: confidence is in the upper half.  Truly unpredictable indirect
    #: targets would otherwise let a mistrained CTB override a BTB target
    #: that short-term repetition keeps correct.
    ctb_confidence: int = 2
    #: Accumulated bimodal direction mispredicts, drives PHT enablement.
    #: Accumulated (not consecutive): a loop that mispredicts only its exit
    #: still deserves pattern prediction.
    bimodal_misses: int = field(default=0, repr=False)
    #: Accumulated target mispredicts, drives CTB enablement.
    target_misses: int = field(default=0, repr=False)

    #: Mispredicts before delegating direction to the PHT.
    PHT_THRESHOLD = 2
    #: Target mispredicts before delegating the target to the CTB.
    CTB_THRESHOLD = 1

    @property
    def predict_taken(self) -> bool:
        """Bimodal direction prediction."""
        return self.counter >= WEAK_TAKEN

    @property
    def trust_ctb(self) -> bool:
        """True when a CTB prediction should override the stored target."""
        return self.use_ctb and self.ctb_confidence >= 2

    def update_ctb_confidence(self, ctb_correct: bool) -> None:
        """Saturating update of the CTB confidence counter."""
        if ctb_correct:
            self.ctb_confidence = min(3, self.ctb_confidence + 1)
        else:
            self.ctb_confidence = max(0, self.ctb_confidence - 1)

    def update_direction(self, taken: bool) -> None:
        """Train the bimodal counter and the PHT-enable heuristic."""
        predicted = self.predict_taken
        if taken:
            self.counter = min(STRONG_TAKEN, self.counter + 1)
        else:
            self.counter = max(STRONG_NOT_TAKEN, self.counter - 1)
        if predicted != taken:
            self.bimodal_misses += 1
            if self.bimodal_misses >= self.PHT_THRESHOLD:
                self.use_pht = True

    def update_target(self, target: int) -> None:
        """Train the stored target and the CTB-enable heuristic."""
        if target != self.target:
            self.target_misses += 1
            if self.kind.target_changes or self.target_misses >= self.CTB_THRESHOLD:
                self.use_ctb = True
            self.target = target
        else:
            self.target_misses = 0

    def clone(self) -> "BTBEntry":
        """Deep copy, for configurations that must not share learned state."""
        return BTBEntry(
            address=self.address,
            target=self.target,
            kind=self.kind,
            counter=self.counter,
            use_pht=self.use_pht,
            use_ctb=self.use_ctb,
            ctb_confidence=self.ctb_confidence,
            bimodal_misses=self.bimodal_misses,
            target_misses=self.target_misses,
        )

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of this entry."""
        return {
            "address": self.address,
            "target": self.target,
            "kind": self.kind.name,
            "counter": self.counter,
            "use_pht": self.use_pht,
            "use_ctb": self.use_ctb,
            "ctb_confidence": self.ctb_confidence,
            "bimodal_misses": self.bimodal_misses,
            "target_misses": self.target_misses,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "BTBEntry":
        """Reconstruct an entry snapshotted by :meth:`state_dict`."""
        return cls(
            address=state["address"],
            target=state["target"],
            kind=BranchKind[state["kind"]],
            counter=state["counter"],
            use_pht=state["use_pht"],
            use_ctb=state["use_ctb"],
            ctb_confidence=state["ctb_confidence"],
            bimodal_misses=state["bimodal_misses"],
            target_misses=state["target_misses"],
        )
