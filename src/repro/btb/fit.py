"""FIT — the fast index table.

"...branch predictions are possible every other cycle with the assistance of
a 64 branch Fast Index Table (FIT) which accelerates branch prediction
re-indexing on a 64 branch subset of the BTB1." (paper, 3.2)

The FIT caches, for recently predicted taken branches, the re-index
information for the *next* expected branch, letting the search pipeline
re-index in the b2 cycle instead of b3/b4 (Table 1).  We model it as a
64-entry fully associative recency table keyed by the predicted branch
address; a hit means the 2-cycle prediction rate applies (the timing policy
itself lives in :class:`repro.core.search.SearchTimingModel`).
"""

from __future__ import annotations

from collections import OrderedDict

FIT_ENTRIES = 64


class FIT:
    """64-entry LRU table of taken branches with cached re-index info."""

    def __init__(self, entries: int = FIT_ENTRIES) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        # branch address -> next search index hint (the hint value is not
        # used by the timing model, only presence matters; stored for
        # completeness and for tests).
        self._table: OrderedDict[int, int] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def probe(self, branch_address: int) -> bool:
        """True when the FIT controls re-indexing for this branch."""
        if branch_address in self._table:
            self._table.move_to_end(branch_address)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def train(self, branch_address: int, next_index_hint: int) -> None:
        """Remember re-index info after a predicted taken branch."""
        self._table[branch_address] = next_index_hint
        self._table.move_to_end(branch_address)
        while len(self._table) > self.entries:
            self._table.popitem(last=False)

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot: ``[address, hint]`` pairs in LRU-to-MRU order."""
        return {
            "table": [[address, hint] for address, hint in self._table.items()],
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self._table = OrderedDict(
            (address, hint) for address, hint in state["table"]
        )
        self.hits = state["hits"]
        self.misses = state["misses"]

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, branch_address: int) -> bool:
        return branch_address in self._table
