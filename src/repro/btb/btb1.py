"""BTB1 — the first-level branch target buffer.

"The BTB1 contains 4k branches, is organized as a 1k x 4-way set associative
cache, and is implemented as an SRAM array.  Instruction address bits 49:58
are used to index into the array." (paper, 3.1)

The BTB1 is only ever written from the BTBP (when a BTBP entry makes a
prediction it is promoted here); its victims flow back to the BTBP and down
to the BTB2.  That wiring lives in :class:`repro.core.hierarchy.FirstLevelPredictor`.
"""

from __future__ import annotations

from repro.btb.storage import BranchTargetBuffer

BTB1_ROWS = 1024
BTB1_WAYS = 4


class BTB1(BranchTargetBuffer):
    """First-level BTB with the architected zEC12 geometry by default."""

    def __init__(self, rows: int = BTB1_ROWS, ways: int = BTB1_WAYS) -> None:
        super().__init__(rows=rows, ways=ways, name="BTB1")
