"""Row-organized branch target buffer storage.

All three BTB levels share the same organization: a set-associative array
indexed by instruction-address bits ending at bit 58, so that "each row
covers 32 bytes of instruction space" (paper, 3.1).  A row can hold entries
for several *different* branches inside the same (or an aliasing) 32-byte
granule; full branch addresses serve as tags.

The index is computed as ``(address >> 5) % rows``, which is identical to the
paper's bit-range extraction (bits 49:58 / 52:58 / 47:58) for the architected
row counts and generalizes to the sizes swept in Figure 5.  Tests assert the
equivalence against :mod:`repro.isa.address`'s bit fields.

Ways are kept in MRU-first order; true LRU everywhere ("the LRU can be a
separate, smaller structure than the BTB2 array itself", 3.3 — we model the
ordering, not the encoding).
"""

from __future__ import annotations

from typing import Iterator

from repro.btb.entry import BTBEntry
from repro.isa.address import ROW_BYTES, row_address


class BranchTargetBuffer:
    """Set-associative, full-tagged branch target buffer."""

    def __init__(self, rows: int, ways: int, name: str = "btb") -> None:
        if rows <= 0 or rows & (rows - 1):
            raise ValueError(f"rows must be a positive power of two, got {rows}")
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.rows = rows
        self.ways = ways
        self.name = name
        self._rows: list[list[BTBEntry]] = [[] for _ in range(rows)]
        self.installs = 0
        self.evictions = 0
        #: Optional :class:`repro.audit.Auditor`; ``None`` keeps every write
        #: path on the fast branch (one attribute test per mutation).
        self.audit = None
        #: Optional :class:`repro.telemetry.Telemetry`; ``None`` = no tracing.
        self.telemetry = None

    # -- geometry ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total branch entries the structure can hold."""
        return self.rows * self.ways

    def row_index(self, address: int) -> int:
        """Row selected by ``address`` (32-byte granules, modulo rows)."""
        return (address >> 5) % self.rows

    # -- read paths -------------------------------------------------------

    def search_row(self, address: int) -> list[BTBEntry]:
        """All entries for branches in the 32-byte row holding ``address``.

        This is the per-cycle search primitive: entries are tag-matched to
        the row (aliasing rows in the same congruence class do not match)
        and returned in ascending branch-address order, the order in which
        the search pipeline would encounter them.
        """
        row_start = address & ~(ROW_BYTES - 1)
        entries = [
            entry
            for entry in self._rows[(address >> 5) % self.rows]
            if entry.address & ~(ROW_BYTES - 1) == row_start
        ]
        entries.sort(key=lambda entry: entry.address)
        return entries

    def lookup(self, branch_address: int) -> BTBEntry | None:
        """Exact-address probe, without touching LRU state."""
        for entry in self._rows[(branch_address >> 5) % self.rows]:
            if entry.address == branch_address:
                return entry
        return None

    def is_mru(self, entry: BTBEntry) -> bool:
        """True when ``entry`` occupies the most recently used way."""
        ways = self._rows[(entry.address >> 5) % self.rows]
        return bool(ways) and ways[0] is entry

    def row_ways(self, address: int) -> list[BTBEntry]:
        """Entries of the row indexed by ``address``, MRU-first.

        A read-only copy of the way list in replacement order — the
        differential oracle diffs this against its reference model to
        localize LRU/victim divergences to a single row.
        """
        return list(self._rows[(address >> 5) % self.rows])

    # -- write paths ------------------------------------------------------

    def install(self, entry: BTBEntry, *, make_mru: bool = True) -> BTBEntry | None:
        """Insert ``entry``; return the evicted victim, if any.

        An existing entry for the same branch address is replaced in place
        (no victim).  Otherwise the LRU way is evicted when the row is full.
        """
        ways = self._rows[(entry.address >> 5) % self.rows]
        for position, existing in enumerate(ways):
            if existing.address == entry.address:
                ways.pop(position)
                ways.insert(0 if make_mru else len(ways), entry)
                if self.audit is not None:
                    self.audit.on_btb_write(self, "install", ways)
                return None
        self.installs += 1
        victim = None
        if len(ways) >= self.ways:
            victim = ways.pop()
            self.evictions += 1
        ways.insert(0 if make_mru else len(ways), entry)
        if self.audit is not None:
            self.audit.on_btb_write(self, "install", ways)
        if self.telemetry is not None:
            self.telemetry.on_install(self.name, entry.address)
            if victim is not None:
                self.telemetry.on_evict(self.name, victim.address)
        return victim

    def install_lru(self, entry: BTBEntry) -> BTBEntry | None:
        """Insert ``entry`` into the LRU way *then* make it MRU.

        This is the BTB2 victim-install protocol of section 3.3: "the content
        that is evicted from the BTB1 is written into the LRU column in the
        BTB2 and made MRU" — the previous LRU occupant is displaced even if
        empty ways notionally exist elsewhere; with full-tag matching this is
        equivalent to a plain MRU install, kept separate for clarity and for
        the inclusive-design ablation.
        """
        return self.install(entry, make_mru=True)

    def touch(self, entry: BTBEntry) -> None:
        """Promote ``entry`` to MRU in its row.

        Matches by *identity*, consistent with :meth:`is_mru`: entries
        migrate between levels as clones that compare equal to their
        originals, and an equality match here could promote — or worse,
        replace — a resident entry with a distinct stale object.  An entry
        no longer resident (by identity) is a no-op.
        """
        ways = self._rows[(entry.address >> 5) % self.rows]
        for position, existing in enumerate(ways):
            if existing is entry:
                if position:
                    ways.pop(position)
                    ways.insert(0, entry)
                    if self.audit is not None:
                        self.audit.on_btb_write(self, "touch", ways)
                return

    def demote(self, entry: BTBEntry) -> None:
        """Demote ``entry`` to LRU in its row (BTB2 hit handling, 3.3).

        Identity-matched for the same reason as :meth:`touch`.
        """
        ways = self._rows[(entry.address >> 5) % self.rows]
        for position, existing in enumerate(ways):
            if existing is entry:
                if position != len(ways) - 1:
                    ways.pop(position)
                    ways.append(entry)
                    if self.audit is not None:
                        self.audit.on_btb_write(self, "demote", ways)
                return

    def remove(self, branch_address: int) -> BTBEntry | None:
        """Invalidate and return the entry for ``branch_address``, if present."""
        ways = self._rows[self.row_index(branch_address)]
        for position, existing in enumerate(ways):
            if existing.address == branch_address:
                victim = ways.pop(position)
                if self.audit is not None:
                    self.audit.on_btb_write(self, "remove", ways)
                return victim
        return None

    def clear(self) -> None:
        """Drop all entries (counters preserved)."""
        for ways in self._rows:
            ways.clear()

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot: occupied rows (MRU-first) + counters.

        Rows are stored sparsely as ``[index, [entry, ...]]`` pairs; way
        order is the LRU order, so a restore reproduces replacement behavior
        exactly.  Subclasses extend this with their own counters.
        """
        return {
            "rows": [
                [index, [entry.state_dict() for entry in ways]]
                for index, ways in enumerate(self._rows)
                if ways
            ],
            "installs": self.installs,
            "evictions": self.evictions,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`.

        Entries are rebuilt as fresh objects, preserving the level
        object-exclusivity invariant (no object shared across structures).
        """
        for ways in self._rows:
            ways.clear()
        for index, ways in state["rows"]:
            self._rows[index] = [
                BTBEntry.from_state_dict(entry) for entry in ways
            ]
        self.installs = state["installs"]
        self.evictions = state["evictions"]

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(ways) for ways in self._rows)

    def __iter__(self) -> Iterator[BTBEntry]:
        for ways in self._rows:
            yield from ways

    def __contains__(self, branch_address: int) -> bool:
        return self.lookup(branch_address) is not None

    def occupancy(self) -> float:
        """Fraction of ways currently valid."""
        return len(self) / self.capacity

    def covered_rows(self, start: int, count: int) -> Iterator[int]:
        """Row start addresses for ``count`` sequential rows from ``start``."""
        base = row_address(start)
        for step in range(count):
            yield base + step * ROW_BYTES
