"""PHT — tagged pattern history table for multi-directional branches.

"Auxiliary structures called the Pattern History Table (PHT) and Changing
Target Buffer (CTB) are used as part of the first level branch predictor for
branches exhibiting multiple directions and targets.  They are indexed based
on the path taken to get to a branch and are tagged with branch instruction
address bits. ... These predictors are similar to the tagged ppm-like
predictors described by Michaud." (paper, 3.1)

A PHT prediction is only *used* when the BTB entry's ``use_pht`` control bit
is set, and only *trusted* when the tag matches; otherwise the bimodal
counter in the BTB entry prevails.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btb.entry import STRONG_NOT_TAKEN, STRONG_TAKEN, WEAK_TAKEN
from repro.btb.history import PathHistory

PHT_ENTRIES = 4096
#: Width of the branch-address tag stored per entry.
TAG_BITS = 10


@dataclass(slots=True)
class _PHTEntry:
    tag: int
    counter: int


class PHT:
    """Direct-mapped, tagged, path-indexed 2-bit direction predictor."""

    def __init__(self, entries: int = PHT_ENTRIES) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._table: list[_PHTEntry | None] = [None] * entries
        self.tag_hits = 0
        self.tag_misses = 0

    @staticmethod
    def _tag(branch_address: int) -> int:
        return (branch_address >> 1) & ((1 << TAG_BITS) - 1)

    def predict(self, branch_address: int, history: PathHistory) -> bool | None:
        """Tagged prediction, or ``None`` on tag mismatch/empty slot."""
        slot = self._table[history.pht_index(self.entries)]
        if slot is None or slot.tag != self._tag(branch_address):
            self.tag_misses += 1
            return None
        self.tag_hits += 1
        return slot.counter >= WEAK_TAKEN

    def update(self, branch_address: int, history: PathHistory, taken: bool) -> None:
        """Train (and on tag mismatch, allocate) the indexed entry."""
        index = history.pht_index(self.entries)
        tag = self._tag(branch_address)
        slot = self._table[index]
        if slot is None or slot.tag != tag:
            self._table[index] = _PHTEntry(
                tag=tag, counter=WEAK_TAKEN if taken else WEAK_TAKEN - 1
            )
            return
        if taken:
            slot.counter = min(STRONG_TAKEN, slot.counter + 1)
        else:
            slot.counter = max(STRONG_NOT_TAKEN, slot.counter - 1)

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Sparse JSON-serializable snapshot: ``[index, tag, counter]``."""
        return {
            "table": [
                [index, slot.tag, slot.counter]
                for index, slot in enumerate(self._table)
                if slot is not None
            ],
            "tag_hits": self.tag_hits,
            "tag_misses": self.tag_misses,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self._table = [None] * self.entries
        for index, tag, counter in state["table"]:
            self._table[index] = _PHTEntry(tag=tag, counter=counter)
        self.tag_hits = state["tag_hits"]
        self.tag_misses = state["tag_misses"]
