"""Branch prediction structures: BTB levels and auxiliary predictors."""

from repro.btb.btb1 import BTB1, BTB1_ROWS, BTB1_WAYS
from repro.btb.btb2 import BTB2, BTB2_ROWS, BTB2_WAYS
from repro.btb.btbp import BTBP, BTBP_ROWS, BTBP_WAYS, WriteSource
from repro.btb.ctb import CTB, CTB_ENTRIES
from repro.btb.entry import (
    BTBEntry,
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
)
from repro.btb.fit import FIT, FIT_ENTRIES
from repro.btb.history import PathHistory
from repro.btb.pht import PHT, PHT_ENTRIES
from repro.btb.storage import BranchTargetBuffer
from repro.btb.surprise import SURPRISE_BHT_ENTRIES, SurpriseBHT

__all__ = [
    "BTB1",
    "BTB1_ROWS",
    "BTB1_WAYS",
    "BTB2",
    "BTB2_ROWS",
    "BTB2_WAYS",
    "BTBP",
    "BTBP_ROWS",
    "BTBP_WAYS",
    "BTBEntry",
    "BranchTargetBuffer",
    "CTB",
    "CTB_ENTRIES",
    "FIT",
    "FIT_ENTRIES",
    "PHT",
    "PHT_ENTRIES",
    "PathHistory",
    "STRONG_NOT_TAKEN",
    "STRONG_TAKEN",
    "SURPRISE_BHT_ENTRIES",
    "SurpriseBHT",
    "WEAK_NOT_TAKEN",
    "WEAK_TAKEN",
    "WriteSource",
]
