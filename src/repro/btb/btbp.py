"""BTBP — the branch target buffer preload table.

"The BTBP contains 768 branches and is organized as a 128 x 6-way cache ...
implemented as a register file with multiple write ports to support the many
sources of writes into the branch prediction hierarchy: surprise installs
from statically guessed branches, branch preload instructions, BTB2 hits,
and BTB1 victims." (paper, 3.1)

The BTBP is read in parallel with the BTB1 to make predictions; it "serves
as a filter for the BTB1": new content lands here first and is only promoted
into the BTB1 once it actually makes a prediction, which keeps speculative
bulk transfers from polluting the BTB1.  It also doubles as the BTB1 victim
buffer.

Per-source write counters are kept so experiments can report where first-
level content came from.
"""

from __future__ import annotations

import enum

from repro.btb.entry import BTBEntry
from repro.btb.storage import BranchTargetBuffer

BTBP_ROWS = 128
BTBP_WAYS = 6


class WriteSource(enum.Enum):
    """The four architected write sources of the BTBP."""

    SURPRISE = "surprise"
    PRELOAD_INSTRUCTION = "preload_instruction"
    BTB2_HIT = "btb2_hit"
    BTB1_VICTIM = "btb1_victim"


class BTBP(BranchTargetBuffer):
    """Preload table / BTB1 filter / victim buffer."""

    def __init__(self, rows: int = BTBP_ROWS, ways: int = BTBP_WAYS) -> None:
        super().__init__(rows=rows, ways=ways, name="BTBP")
        self.writes_by_source: dict[WriteSource, int] = {
            source: 0 for source in WriteSource
        }

    def write(self, entry: BTBEntry, source: WriteSource) -> BTBEntry | None:
        """Install ``entry`` attributed to ``source``; return any victim.

        BTBP victims simply age out — they are *not* written anywhere else
        (BTB2 hits were demoted to LRU in the BTB2 at transfer time and
        surprise installs were duplicated into the BTB2 at install time, so
        no information is lost beyond what the semi-exclusive design
        accepts).
        """
        self.writes_by_source[source] += 1
        return self.install(entry)

    def state_dict(self) -> dict:
        """Table state plus the per-source write counters (JSON-safe)."""
        state = super().state_dict()
        state["writes_by_source"] = {
            source.value: count for source, count in self.writes_by_source.items()
        }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore table state and counters captured by ``state_dict``."""
        super().load_state_dict(state)
        self.writes_by_source = {
            WriteSource(name): count
            for name, count in state["writes_by_source"].items()
        }
