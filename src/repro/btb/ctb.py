"""CTB — tagged changing target buffer for multi-target branches.

The CTB predicts targets of branches "exhibiting multiple ... targets"
(returns, indirect branches, changing-target conditionals).  It has 2,048
entries and "is indexed based on the instruction addresses of the 12
previous taken branches" and tagged with branch instruction address bits
(paper, 3.1).  Its prediction is used only when the BTB entry's ``use_ctb``
bit is set and the tag matches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btb.history import PathHistory

CTB_ENTRIES = 2048
#: Width of the branch-address tag stored per entry.
TAG_BITS = 10


@dataclass(slots=True)
class _CTBEntry:
    tag: int
    target: int


class CTB:
    """Direct-mapped, tagged, path-indexed target predictor."""

    def __init__(self, entries: int = CTB_ENTRIES) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._table: list[_CTBEntry | None] = [None] * entries
        self.tag_hits = 0
        self.tag_misses = 0

    @staticmethod
    def _tag(branch_address: int) -> int:
        return (branch_address >> 1) & ((1 << TAG_BITS) - 1)

    def predict(self, branch_address: int, history: PathHistory) -> int | None:
        """Tagged target prediction, or ``None`` on tag mismatch."""
        slot = self._table[history.ctb_index(self.entries)]
        if slot is None or slot.tag != self._tag(branch_address):
            self.tag_misses += 1
            return None
        self.tag_hits += 1
        return slot.target

    def peek(self, branch_address: int, history: PathHistory) -> int | None:
        """Prediction without touching the hit/miss statistics (training)."""
        slot = self._table[history.ctb_index(self.entries)]
        if slot is None or slot.tag != self._tag(branch_address):
            return None
        return slot.target

    def update(self, branch_address: int, history: PathHistory, target: int) -> None:
        """Record the resolved target for this path."""
        index = history.ctb_index(self.entries)
        self._table[index] = _CTBEntry(tag=self._tag(branch_address), target=target)

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Sparse JSON-serializable snapshot: ``[index, tag, target]``."""
        return {
            "table": [
                [index, slot.tag, slot.target]
                for index, slot in enumerate(self._table)
                if slot is not None
            ],
            "tag_hits": self.tag_hits,
            "tag_misses": self.tag_misses,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self._table = [None] * self.entries
        for index, tag, target in state["table"]:
            self._table[index] = _CTBEntry(tag=tag, target=target)
        self.tag_hits = state["tag_hits"]
        self.tag_misses = state["tag_misses"]
