"""BTB2 bulk transfer engine (sections 3.6-3.7 timing).

"Upon a BTB1 miss, the fastest the BTB2 search can be started is in the b10
cycle.  This is 7 cycles after the miss is detected in the b3 cycle of the
search process.  The BTB2 search itself takes 8 cycles.  Accesses are
pipelined such that one BTB2 row is searched each cycle once searching is
underway.  Therefore, a full 4 KB bulk transfer takes 128 + 8 = 136 cycles."

The engine owns a priority queue of pending row reads (priority bands
implement the cross-block steering arbitration of 3.7), issues at most one
row per cycle, completes each read ``SEARCH_PIPELINE_CYCLES`` later, and on
completion moves every tag-matching BTB2 entry into the BTBP.

Time is advanced lazily: the simulator calls :meth:`advance` with its
current clock before any structure probe, so transferred entries become
visible exactly at their completion cycles.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.btb.btb2 import BTB2
from repro.btb.entry import BTBEntry
from repro.core.config import ExclusivityMode
from repro.isa.address import ROW_BYTES
from repro.preload.tracker import SearchTracker

#: Delay from miss detection (b3) to the first BTB2 row read (b10).
MISS_TO_SEARCH_START = 7
#: Pipeline depth of one BTB2 row search.
SEARCH_PIPELINE_CYCLES = 8
#: Full 4 KB bulk transfer: 128 rows + pipeline depth.
FULL_BLOCK_TRANSFER_CYCLES = 128 + SEARCH_PIPELINE_CYCLES


@dataclass(order=True)
class _QueuedRead:
    priority: int
    sequence: int
    row_address: int
    eligible_cycle: int
    tracker: SearchTracker


class TransferEngine:
    """One-row-per-cycle pipelined BTB2 reader with priority arbitration."""

    def __init__(
        self,
        btb2: BTB2,
        install: Callable[[BTBEntry], None],
        exclusivity: ExclusivityMode = ExclusivityMode.SEMI_EXCLUSIVE,
        on_tracker_drained: Callable[[SearchTracker, int], None] | None = None,
    ) -> None:
        self.btb2 = btb2
        self.install = install
        self.exclusivity = exclusivity
        self.on_tracker_drained = on_tracker_drained
        self._queue: list[_QueuedRead] = []
        self._sequence = 0
        # In-flight reads: (completion_cycle, sequence, row_address, tracker).
        self._inflight: list[tuple[int, int, int, SearchTracker]] = []
        self._next_issue_cycle = 0
        self.clock = 0
        self.rows_read = 0
        self.entries_transferred = 0
        #: Optional :class:`repro.telemetry.Telemetry`; ``None`` = no tracing.
        self.telemetry = None
        #: Optional lockstep observer (:mod:`repro.oracle.differential`);
        #: ``None`` = no observation.
        self.probe = None

    # -- enqueue -------------------------------------------------------------

    def enqueue_sector(
        self,
        tracker: SearchTracker,
        sector_address: int,
        eligible_cycle: int,
        priority: int,
        rows: int = 4,
    ) -> int:
        """Queue ``rows`` sequential row reads starting at ``sector_address``.

        Rows already enqueued for this tracker activation are skipped (the
        partial-search rows are not re-read on upgrade to a full search).
        Returns the number of rows actually queued.
        """
        queued = 0
        for step in range(rows):
            row_address = sector_address + step * ROW_BYTES
            if row_address in tracker.enqueued_rows:
                continue
            tracker.enqueued_rows.add(row_address)
            tracker.outstanding_rows += 1
            self._sequence += 1
            heapq.heappush(
                self._queue,
                _QueuedRead(
                    priority=priority,
                    sequence=self._sequence,
                    row_address=row_address,
                    eligible_cycle=eligible_cycle,
                    tracker=tracker,
                ),
            )
            queued += 1
        return queued

    # -- time ----------------------------------------------------------------

    def advance(self, cycle: int) -> None:
        """Issue and complete row reads up to ``cycle`` (monotonic)."""
        self.clock = max(self.clock, cycle)
        self._issue_until(self.clock)
        self._complete_until(self.clock)

    def _issue_until(self, cycle: int) -> None:
        while self._queue:
            head = self._queue[0]
            issue = max(self._next_issue_cycle, head.eligible_cycle)
            if issue > cycle:
                break
            heapq.heappop(self._queue)
            self._next_issue_cycle = issue + 1
            self.rows_read += 1
            completion = issue + SEARCH_PIPELINE_CYCLES
            heapq.heappush(
                self._inflight,
                (completion, head.sequence, head.row_address, head.tracker),
            )

    def _complete_until(self, cycle: int) -> None:
        while self._inflight and self._inflight[0][0] <= cycle:
            completion, _, row_address, tracker = heapq.heappop(self._inflight)
            hits = self._deliver_row(row_address)
            tracker.transferred_entries += hits
            if self.telemetry is not None:
                self.telemetry.on_btb2_row(completion, row_address, hits)
            tracker.outstanding_rows -= 1
            if (
                tracker.outstanding_rows == 0
                and self.on_tracker_drained is not None
            ):
                self.on_tracker_drained(tracker, completion)

    def _deliver_row(self, row_address: int) -> int:
        """Read one BTB2 row and install every hit into the first level.

        Returns the number of entries installed.
        """
        hits = self.btb2.search_row(row_address)
        for entry in hits:
            if self.exclusivity is ExclusivityMode.INCLUSIVE:
                self.btb2.touch(entry)
            else:
                self.btb2.demote(entry)
            self.btb2.transfer_hits += 1
            self.entries_transferred += 1
            self.install(entry.clone())
        if self.probe is not None:
            self.probe.on_row_delivered(
                row_address, [entry.address for entry in hits]
            )
        return len(hits)

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self, slot_of: Callable[[SearchTracker], int]) -> dict:
        """Snapshot queue/in-flight state with trackers encoded by slot.

        Queued and in-flight reads hold live tracker references; ``slot_of``
        maps them to their stable :class:`~repro.preload.tracker.TrackerFile`
        slot indices so the snapshot is pure data.  Heap lists are stored in
        their internal order — pop order is total ((priority, sequence) /
        (completion, sequence)), so rebuilding the heaps from any order is
        behavior-identical.
        """
        return {
            "queue": [
                [item.priority, item.sequence, item.row_address,
                 item.eligible_cycle, slot_of(item.tracker)]
                for item in self._queue
            ],
            "inflight": [
                [completion, sequence, row_address, slot_of(tracker)]
                for completion, sequence, row_address, tracker in self._inflight
            ],
            "sequence": self._sequence,
            "next_issue_cycle": self._next_issue_cycle,
            "clock": self.clock,
            "rows_read": self.rows_read,
            "entries_transferred": self.entries_transferred,
        }

    def load_state_dict(
        self, state: dict, tracker_at: Callable[[int], SearchTracker]
    ) -> None:
        """Restore a snapshot taken by :meth:`state_dict`.

        ``tracker_at`` resolves slot indices back to live tracker objects.
        """
        self._queue = [
            _QueuedRead(
                priority=priority,
                sequence=sequence,
                row_address=row_address,
                eligible_cycle=eligible_cycle,
                tracker=tracker_at(slot),
            )
            for priority, sequence, row_address, eligible_cycle, slot
            in state["queue"]
        ]
        heapq.heapify(self._queue)
        self._inflight = [
            (completion, sequence, row_address, tracker_at(slot))
            for completion, sequence, row_address, slot in state["inflight"]
        ]
        heapq.heapify(self._inflight)
        self._sequence = state["sequence"]
        self._next_issue_cycle = state["next_issue_cycle"]
        self.clock = state["clock"]
        self.rows_read = state["rows_read"]
        self.entries_transferred = state["entries_transferred"]

    # -- introspection ---------------------------------------------------------

    @property
    def pending_rows(self) -> int:
        """Rows queued but not yet issued."""
        return len(self._queue)

    @property
    def inflight_rows(self) -> int:
        """Rows issued but not yet completed."""
        return len(self._inflight)

    def drain(self) -> None:
        """Run the clock forward until no reads are queued or in flight.

        End-of-simulation cleanup: advances in full-block-transfer steps,
        so every pending read issues, completes, and installs its hits,
        and every tracker sees its drained callback.
        """
        horizon = self.clock
        while self._queue or self._inflight:
            horizon += FULL_BLOCK_TRANSFER_CYCLES
            self.advance(horizon)
