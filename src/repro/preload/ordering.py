"""BTB2 search steering: the tagged ordering table (section 3.7).

"Given a 128 byte sector size, there are 32 sectors within a 4 KB block.
The 4 KB block is divided into four 1 KB quartiles.  Each quartile contains
eight 1-bit sector markings and three markings to denote a reference to the
other quartiles within the block. ... The table contains 512 entries and is
2-way set associative.  Each entry represents a 4 KB block; therefore the
table covers a 2 MB instruction footprint."

Runtime tracking (:class:`OrderingTracker`): as instructions complete, the
sector they fall in gets its bit set; entering a different quartile from
within the block sets the corresponding reference marking in the *demand*
quartile (the quartile through which the block was entered).  When control
leaves for a different block the accumulated entry is stored back into the
tagged array, merged with any previous knowledge of the block.

Steering (:func:`order_sectors`): on a BTB2 block search, a table hit orders
the 32 sectors as (1) active sectors in the demand quartile, (2) active
sectors in quartiles referenced from the demand quartile, (3) remaining
active sectors, then (4-6) the same priorities over inactive sectors.  A
table miss returns plain sequential order beginning with the demand
quartile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.address import (
    QUARTILES_PER_BLOCK,
    SECTORS_PER_BLOCK,
    block_address,
    quartile_in_block,
    sector_in_block,
    sector_quartile,
)

ORDERING_TABLE_ENTRIES = 512
ORDERING_TABLE_WAYS = 2


@dataclass
class OrderingEntry:
    """Per-4KB-block path knowledge: sector bits + quartile references."""

    block: int
    sector_bits: int = 0
    #: quartile_refs[q] is a 4-bit mask of quartiles referenced from q.
    quartile_refs: list[int] = field(default_factory=lambda: [0] * QUARTILES_PER_BLOCK)

    def mark_sector(self, sector: int) -> None:
        """Set the 1-bit marking for ``sector`` (0..31)."""
        self.sector_bits |= 1 << sector

    def sector_active(self, sector: int) -> bool:
        """True when ``sector`` has been seen to complete an instruction."""
        return bool(self.sector_bits & (1 << sector))

    def mark_reference(self, from_quartile: int, to_quartile: int) -> None:
        """Record that ``to_quartile`` was entered from ``from_quartile``."""
        if from_quartile != to_quartile:
            self.quartile_refs[from_quartile] |= 1 << to_quartile

    def referenced_from(self, quartile: int) -> set[int]:
        """Quartiles marked as referenced from ``quartile``."""
        mask = self.quartile_refs[quartile]
        return {q for q in range(QUARTILES_PER_BLOCK) if mask & (1 << q)}

    def merge(self, other: "OrderingEntry") -> None:
        """Fold another visit's knowledge into this entry (bitwise OR)."""
        self.sector_bits |= other.sector_bits
        for quartile in range(QUARTILES_PER_BLOCK):
            self.quartile_refs[quartile] |= other.quartile_refs[quartile]

    def copy(self) -> "OrderingEntry":
        """Independent copy of this entry."""
        return OrderingEntry(
            block=self.block,
            sector_bits=self.sector_bits,
            quartile_refs=list(self.quartile_refs),
        )

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of this entry."""
        return {
            "block": self.block,
            "sector_bits": self.sector_bits,
            "quartile_refs": list(self.quartile_refs),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "OrderingEntry":
        """Reconstruct an entry snapshotted by :meth:`state_dict`."""
        return cls(
            block=state["block"],
            sector_bits=state["sector_bits"],
            quartile_refs=list(state["quartile_refs"]),
        )


class OrderingTable:
    """512-entry, 2-way set associative, tagged by 4 KB block address."""

    def __init__(
        self,
        sets: int = ORDERING_TABLE_ENTRIES // ORDERING_TABLE_WAYS,
        ways: int = ORDERING_TABLE_WAYS,
    ) -> None:
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("sets must be a positive power of two")
        self.sets = sets
        self.ways = ways
        # Per set: list of entries, MRU first.
        self._sets: list[list[OrderingEntry]] = [[] for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        """Total block entries (512 architected: 2 MB of code)."""
        return self.sets * self.ways

    def _index(self, block: int) -> int:
        return (block >> 12) % self.sets

    def lookup(self, address: int) -> OrderingEntry | None:
        """Tagged lookup by any address inside the block; refreshes MRU."""
        block = block_address(address)
        ways = self._sets[self._index(block)]
        for entry in ways:
            if entry.block == block:
                if ways[0] is not entry:
                    ways.remove(entry)
                    ways.insert(0, entry)
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def store(self, entry: OrderingEntry) -> None:
        """Install or merge ``entry``; LRU replacement within the set."""
        ways = self._sets[self._index(entry.block)]
        for existing in ways:
            if existing.block == entry.block:
                existing.merge(entry)
                if ways[0] is not existing:
                    ways.remove(existing)
                    ways.insert(0, existing)
                return
        ways.insert(0, entry.copy())
        if len(ways) > self.ways:
            ways.pop()

    def state_dict(self) -> dict:
        """Sparse snapshot: occupied sets as ``[index, [entries MRU-first]]``."""
        return {
            "sets": [
                [index, [entry.state_dict() for entry in ways]]
                for index, ways in enumerate(self._sets)
                if ways
            ],
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        for ways in self._sets:
            ways.clear()
        for index, ways in state["sets"]:
            self._sets[index] = [
                OrderingEntry.from_state_dict(entry) for entry in ways
            ]
        self.hits = state["hits"]
        self.misses = state["misses"]


class OrderingTracker:
    """Runtime sector/quartile tracking as a function of completing instructions."""

    def __init__(self, table: OrderingTable) -> None:
        self.table = table
        self._block: int | None = None
        self._demand_quartile = 0
        self._current_quartile = 0
        self._pending: OrderingEntry | None = None

    def observe(self, address: int) -> None:
        """Fold one completing instruction's address into the tracking state."""
        block = block_address(address)
        quartile = quartile_in_block(address)
        if block != self._block:
            self._commit()
            self._block = block
            self._demand_quartile = quartile
            self._current_quartile = quartile
            self._pending = OrderingEntry(block=block)
        assert self._pending is not None
        self._pending.mark_sector(sector_in_block(address))
        if quartile != self._current_quartile:
            self._pending.mark_reference(self._demand_quartile, quartile)
            self._current_quartile = quartile

    def _commit(self) -> None:
        if self._pending is not None:
            self.table.store(self._pending)
            self._pending = None

    def flush(self) -> None:
        """Commit the in-flight block entry (end of simulation)."""
        self._commit()
        self._block = None

    def state_dict(self) -> dict:
        """Snapshot of the in-flight tracking state (table held separately)."""
        return {
            "block": self._block,
            "demand_quartile": self._demand_quartile,
            "current_quartile": self._current_quartile,
            "pending": (
                self._pending.state_dict() if self._pending is not None else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self._block = state["block"]
        self._demand_quartile = state["demand_quartile"]
        self._current_quartile = state["current_quartile"]
        self._pending = (
            OrderingEntry.from_state_dict(state["pending"])
            if state["pending"] is not None
            else None
        )


def classify_sectors(
    entry: OrderingEntry | None, demand_address: int
) -> list[tuple[int, int]]:
    """``(sector, priority_class)`` pairs in transfer order.

    Implements the 3-then-3 priority scheme of section 3.7: class 0 = active
    sectors in the demand quartile, 1 = active sectors in quartiles
    referenced from the demand quartile, 2 = remaining active sectors, and
    3-5 the same split over inactive sectors.  Within each class, sectors
    come in ascending order starting from the demand sector, wrapping around
    the block.  Without table knowledge (``entry is None``) every sector is
    class 0 and the order is plain sequential from the demand sector.
    """
    demand_sector = sector_in_block(demand_address)
    rotation = [
        (demand_sector + step) % SECTORS_PER_BLOCK
        for step in range(SECTORS_PER_BLOCK)
    ]
    if entry is None:
        return [(sector, 0) for sector in rotation]

    demand_quartile = sector_quartile(demand_sector)
    referenced = entry.referenced_from(demand_quartile)

    def priority_class(sector: int, active: bool) -> int:
        quartile = sector_quartile(sector)
        if quartile == demand_quartile:
            base = 0
        elif quartile in referenced:
            base = 1
        else:
            base = 2
        return base if active else base + 3

    classified = [
        (sector, priority_class(sector, entry.sector_active(sector)))
        for sector in rotation
    ]
    classified.sort(key=lambda pair: pair[1])
    return classified


def order_sectors(entry: OrderingEntry | None, demand_address: int) -> list[int]:
    """Transfer order of the 32 sectors of the block of ``demand_address``."""
    return [sector for sector, _ in classify_sectors(entry, demand_address)]
