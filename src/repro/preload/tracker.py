"""BTB2 search trackers (section 3.6).

"Three BTB2 search trackers are implemented to remember information about
BTB1 misses and instruction cache misses; and to initiate read accesses to
the BTB2 structure.  Each tracker represents one 4 KB block of address space
(instruction address bits 0:51)."

Tracker semantics (driven by :class:`repro.preload.engine.PreloadEngine`;
the exact search launched also depends on the configuration's
``filter_mode``):

* both valid bits set -> *fully active*: reads to all 128 rows of the block;
* BTB1-miss valid only -> partial search of the 4 rows (128 bytes) at the
  miss address; if the I-cache-miss bit is still invalid when the partial
  search completes, the tracker is invalidated;
* I-cache-miss valid only -> no BTB2 search (waits for a BTB1 miss).

Allocation never steals a tracker with a search in flight: when all
trackers are busy, new BTB1-miss reports are dropped on the floor and
counted (``dropped_miss_reports`` — the saturation the Figure 7 tracker
sweep measures).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TrackerState(enum.Enum):
    """Lifecycle of one search tracker."""

    FREE = "free"
    #: Holds an I-cache miss, waiting for a BTB1 miss (no search).
    ICACHE_ONLY = "icache_only"
    #: Holds a BTB1 miss only; a partial search is (or will be) in flight.
    PARTIAL = "partial"
    #: Fully active; the full-block search is in flight.
    FULL = "full"


@dataclass
class SearchTracker:
    """One 4 KB block tracker."""

    block: int = 0
    state: TrackerState = TrackerState.FREE
    btb1_miss_valid: bool = False
    icache_miss_valid: bool = False
    #: Full search address bits of the BTB1 miss (partial-search anchor and
    #: demand-quartile selector for steering).
    miss_address: int = 0
    #: Cycle the tracker (re)activated; used for oldest-first replacement.
    activated_cycle: int = 0
    #: BLOCK-mode wait expiry cycle, or ``None`` when no wait is armed.
    #: Kept *on the tracker* (not keyed by object id in the engine) so a
    #: recycled tracker can never inherit a stale deadline: :meth:`reset`
    #: disarms it atomically with the rest of the state.
    block_deadline: int | None = None
    #: Row reads issued and not yet completed.
    outstanding_rows: int = field(default=0, repr=False)
    #: Rows already enqueued for this activation (avoid duplicate reads on
    #: partial -> full upgrade).
    enqueued_rows: set[int] = field(default_factory=set, repr=False)
    #: First-level installs delivered by this activation's transfers
    #: (telemetry only; summarised in the ``transfer_batch`` trace event).
    transferred_entries: int = field(default=0, repr=False)

    @property
    def fully_active(self) -> bool:
        """True when both the BTB1-miss and I-cache-miss bits are valid."""
        return self.btb1_miss_valid and self.icache_miss_valid

    def reset(self) -> None:
        """Return the tracker to the FREE state."""
        self.block = 0
        self.state = TrackerState.FREE
        self.btb1_miss_valid = False
        self.icache_miss_valid = False
        self.miss_address = 0
        self.activated_cycle = 0
        self.block_deadline = None
        self.outstanding_rows = 0
        self.enqueued_rows = set()
        self.transferred_entries = 0

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of this tracker."""
        return {
            "block": self.block,
            "state": self.state.value,
            "btb1_miss_valid": self.btb1_miss_valid,
            "icache_miss_valid": self.icache_miss_valid,
            "miss_address": self.miss_address,
            "activated_cycle": self.activated_cycle,
            "block_deadline": self.block_deadline,
            "outstanding_rows": self.outstanding_rows,
            "enqueued_rows": sorted(self.enqueued_rows),
            "transferred_entries": self.transferred_entries,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self.block = state["block"]
        self.state = TrackerState(state["state"])
        self.btb1_miss_valid = state["btb1_miss_valid"]
        self.icache_miss_valid = state["icache_miss_valid"]
        self.miss_address = state["miss_address"]
        self.activated_cycle = state["activated_cycle"]
        self.block_deadline = state["block_deadline"]
        self.outstanding_rows = state["outstanding_rows"]
        self.enqueued_rows = set(state["enqueued_rows"])
        self.transferred_entries = state["transferred_entries"]


class TrackerFile:
    """The fixed pool of search trackers with allocation/matching policy."""

    def __init__(self, count: int = 3) -> None:
        self.count = count
        self.trackers = [SearchTracker() for _ in range(count)]
        self.allocations = 0
        self.dropped_miss_reports = 0
        self.dropped_icache_reports = 0

    def find(self, block: int) -> SearchTracker | None:
        """Tracker currently assigned to ``block``, if any."""
        for tracker in self.trackers:
            if tracker.state is not TrackerState.FREE and tracker.block == block:
                return tracker
        return None

    def allocate(
        self,
        block: int,
        cycle: int,
        state: TrackerState = TrackerState.PARTIAL,
    ) -> SearchTracker | None:
        """Claim a tracker for ``block``; ``None`` when none can be freed.

        The tracker is claimed in ``state`` immediately so a second
        allocation cannot hand out the same tracker.  Free trackers are used
        first; otherwise the oldest ICACHE_ONLY tracker is recycled (it has
        no search in flight).  Trackers with searches in flight are never
        stolen.
        """
        for tracker in self.trackers:
            if tracker.state is TrackerState.FREE:
                self._assign(tracker, block, cycle, state)
                return tracker
        candidates = [
            tracker
            for tracker in self.trackers
            if tracker.state is TrackerState.ICACHE_ONLY
        ]
        if candidates:
            tracker = min(candidates, key=lambda t: t.activated_cycle)
            tracker.reset()
            self._assign(tracker, block, cycle, state)
            return tracker
        return None

    def _assign(
        self, tracker: SearchTracker, block: int, cycle: int, state: TrackerState
    ) -> None:
        tracker.block = block
        tracker.activated_cycle = cycle
        tracker.state = state
        self.allocations += 1

    def state_dict(self) -> dict:
        """Snapshot of every tracker (by slot) plus file counters."""
        return {
            "trackers": [tracker.state_dict() for tracker in self.trackers],
            "allocations": self.allocations,
            "dropped_miss_reports": self.dropped_miss_reports,
            "dropped_icache_reports": self.dropped_icache_reports,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`.

        Tracker *objects* are reused (slot identity is the architected
        identity — the transfer engine's queued reads reference trackers by
        slot index across a checkpoint).
        """
        for tracker, tracker_state in zip(self.trackers, state["trackers"]):
            tracker.load_state_dict(tracker_state)
        self.allocations = state["allocations"]
        self.dropped_miss_reports = state["dropped_miss_reports"]
        self.dropped_icache_reports = state["dropped_icache_reports"]

    def slot(self, tracker: SearchTracker) -> int:
        """Index of ``tracker`` in the file (stable telemetry identity)."""
        return self.trackers.index(tracker)

    def busy(self) -> int:
        """Number of non-free trackers."""
        return sum(
            1 for tracker in self.trackers if tracker.state is not TrackerState.FREE
        )
