"""The BTB2 preload engine: miss filtering, trackers, steering, transfers.

This facade implements sections 3.5-3.7 end to end:

* perceived BTB1 misses (from :class:`repro.core.search.LookaheadSearch`)
  arrive via :meth:`report_btb1_miss`;
* demand I-cache misses arrive via :meth:`report_icache_miss`;
* trackers correlate the two per 4 KB block; fully active trackers launch a
  full 128-row search, BTB1-miss-only trackers launch a 4-row partial search
  (``FilterMode.PARTIAL``, the implemented design) and are invalidated if no
  I-cache miss shows up by the time the partial search completes;
* full searches are steered by the ordering table when enabled;
* the transfer engine moves tag-matching BTB2 content into the BTBP with
  the architected 7 + 8 + 1-row-per-cycle timing.
"""

from __future__ import annotations

from repro.btb.btb2 import BTB2
from repro.caches.icache import ICache
from repro.core.config import FilterMode, PredictorConfig
from repro.core.events import MissReport
from repro.core.hierarchy import FirstLevelPredictor
from repro.isa.address import (
    ROWS_PER_SECTOR,
    SECTOR_BYTES,
    block_address,
    sector_address,
)
from repro.preload.ordering import OrderingTable, OrderingTracker, classify_sectors
from repro.preload.tracker import SearchTracker, TrackerFile, TrackerState
from repro.preload.transfer import MISS_TO_SEARCH_START, TransferEngine

#: Cycles a BLOCK-mode (search-suppressed) tracker waits for an I-cache miss
#: before invalidating — matched to the partial search it replaces.
BLOCK_MODE_WAIT_CYCLES = MISS_TO_SEARCH_START + 4 + 8

#: Priority bands for the transfer queue (lower = served first).
PRIORITY_PARTIAL = 0
PRIORITY_DEMAND = 1
PRIORITY_REST_BASE = 2


class PreloadEngine:
    """Second-level access control and bulk preload orchestration."""

    def __init__(
        self,
        config: PredictorConfig,
        btb2: BTB2,
        hierarchy: FirstLevelPredictor,
        icache: ICache | None = None,
    ) -> None:
        self.config = config
        self.btb2 = btb2
        self.hierarchy = hierarchy
        self.icache = icache
        self.trackers = TrackerFile(count=config.tracker_count)
        self.ordering_table = OrderingTable(
            sets=config.ordering_table_sets, ways=config.ordering_table_ways
        )
        self.ordering_tracker = OrderingTracker(self.ordering_table)
        self.transfer = TransferEngine(
            btb2=btb2,
            install=self._install_transfer,
            exclusivity=config.exclusivity,
            on_tracker_drained=self._tracker_drained,
        )
        # Trackers that may have a BLOCK-mode wait armed.  The deadline
        # itself lives on the tracker (``SearchTracker.block_deadline``) so
        # ``reset()`` disarms it; this list only keeps ``advance`` from
        # scanning the tracker file when no wait can possibly be pending.
        self._block_waiters: list[SearchTracker] = []
        #: Optional :class:`repro.audit.Auditor`; ``None`` = no checking.
        self.audit = None
        #: Optional :class:`repro.telemetry.Telemetry`; ``None`` = no tracing.
        self.telemetry = None
        self.full_searches = 0
        self.partial_searches = 0
        self.partial_upgrades = 0
        self.partial_invalidations = 0
        self.filtered_misses = 0
        self.duplicate_miss_reports = 0
        self.decode_miss_reports = 0
        self.followed_blocks = 0

    # -- inputs ---------------------------------------------------------------

    def report_btb1_miss(self, report: MissReport) -> None:
        """Handle one perceived first-level miss (3.4 -> 3.5 -> 3.6)."""
        self._report_btb1_miss(report)
        if self.audit is not None:
            self.audit.on_tracker_event(self, "btb1_miss")

    def _report_btb1_miss(self, report: MissReport) -> None:
        block = block_address(report.search_address)
        tracker = self.trackers.find(block)
        if tracker is not None:
            if tracker.btb1_miss_valid:
                self.duplicate_miss_reports += 1
                return
            tracker.btb1_miss_valid = True
            tracker.miss_address = report.search_address
            self._activate(tracker, report.cycle)
            return
        tracker = self.trackers.allocate(block, report.cycle,
                                         state=TrackerState.PARTIAL)
        if tracker is None:
            self.trackers.dropped_miss_reports += 1
            return
        if self.telemetry is not None:
            self.telemetry.on_tracker_allocate(
                report.cycle, self.trackers.slot(tracker), block, "partial"
            )
        tracker.btb1_miss_valid = True
        tracker.miss_address = report.search_address
        if self.icache is not None and self.icache.recent_miss_in_block(
            report.search_address, report.cycle
        ):
            tracker.icache_miss_valid = True
        self._activate(tracker, report.cycle)

    def report_icache_miss(self, address: int, cycle: int) -> None:
        """Record a demand I-cache miss for tracker correlation."""
        self._report_icache_miss(address, cycle)
        if self.audit is not None:
            self.audit.on_tracker_event(self, "icache_miss")

    def _report_icache_miss(self, address: int, cycle: int) -> None:
        block = block_address(address)
        tracker = self.trackers.find(block)
        if tracker is None:
            tracker = self.trackers.allocate(block, cycle,
                                             state=TrackerState.ICACHE_ONLY)
            if tracker is None:
                self.trackers.dropped_icache_reports += 1
                return
            if self.telemetry is not None:
                self.telemetry.on_tracker_allocate(
                    cycle, self.trackers.slot(tracker), block, "icache_only"
                )
            tracker.icache_miss_valid = True
            return
        if tracker.icache_miss_valid:
            return
        tracker.icache_miss_valid = True
        if tracker.btb1_miss_valid and tracker.state is not TrackerState.FULL:
            # Partial (or BLOCK-mode waiting) tracker becomes fully active.
            self.partial_upgrades += 1
            tracker.block_deadline = None
            self._start_full_search(tracker, cycle)

    def report_decode_miss(self, address: int, cycle: int) -> None:
        """Alternative BTB1-miss definition (3.4 extension).

        Fired when a statically-guessed-taken surprise branch reaches
        decode: a later, less speculative miss indication used *in addition
        to* the search-based one when ``decode_miss_reporting`` is enabled.
        """
        self.decode_miss_reports += 1
        report = MissReport(search_address=address, cycle=cycle)
        if self.telemetry is not None:
            # Decode-synthesized reports bypass the searcher's flush, so the
            # perceived-miss trace event is emitted here instead.
            self.telemetry.on_miss_report(report)
        self.report_btb1_miss(report)

    def _install_transfer(self, entry) -> None:
        """Install one transferred entry, optionally chasing its target.

        With ``multi_block_transfer`` (section 6 future work), the first
        transferred branch whose target leaves the block pulls its target
        block into a full search too — bounded to one follow per delivery
        to respect the paper's bandwidth warning ("the number of blocks to
        transfer can exponentially exceed the available bandwidth").
        """
        self.hierarchy.preload_write(entry)
        if not self.config.multi_block_transfer:
            return
        source_block = block_address(entry.address)
        target_block = block_address(entry.target)
        if target_block == source_block:
            return
        if self.trackers.find(target_block) is not None:
            return
        tracker = self.trackers.allocate(target_block, self.transfer.clock)
        if tracker is None:
            return
        if self.telemetry is not None:
            self.telemetry.on_tracker_allocate(
                self.transfer.clock, self.trackers.slot(tracker),
                target_block, "followed",
            )
        tracker.btb1_miss_valid = True
        tracker.icache_miss_valid = True  # followed blocks bypass the filter
        tracker.miss_address = entry.target
        self.followed_blocks += 1
        self._start_full_search(tracker, self.transfer.clock)

    def observe_completion(self, address: int) -> None:
        """Feed one completing instruction to the ordering tracker (3.7)."""
        if self.config.steering_enabled:
            self.ordering_tracker.observe(address)

    def advance(self, cycle: int) -> None:
        """Advance transfer timing and expire BLOCK-mode waits."""
        self.transfer.advance(cycle)
        if self._block_waiters:
            still_waiting = []
            for tracker in self._block_waiters:
                deadline = tracker.block_deadline
                if deadline is None:
                    # Disarmed since arming: reset/recycled, or upgraded to
                    # a full search by an I-cache miss.  Drop silently.
                    continue
                if deadline > cycle:
                    still_waiting.append(tracker)
                    continue
                tracker.block_deadline = None
                if not tracker.fully_active:
                    self.partial_invalidations += 1
                    if self.telemetry is not None:
                        self.telemetry.on_tracker_expire(
                            cycle, self.trackers.slot(tracker),
                            tracker.block, "block_wait_expired",
                        )
                    tracker.reset()
            self._block_waiters = still_waiting
            if self.audit is not None:
                self.audit.on_tracker_event(self, "block_wait_expiry")

    # -- activation -------------------------------------------------------------

    def _activate(self, tracker: SearchTracker, cycle: int) -> None:
        if tracker.fully_active or self.config.filter_mode is FilterMode.OFF:
            self._start_full_search(tracker, cycle)
            return
        self.filtered_misses += 1
        if self.config.filter_mode is FilterMode.PARTIAL:
            self._start_partial_search(tracker, cycle)
        else:  # FilterMode.BLOCK: no search; wait for an I-cache miss.
            tracker.state = TrackerState.PARTIAL
            tracker.block_deadline = cycle + BLOCK_MODE_WAIT_CYCLES
            if tracker not in self._block_waiters:
                self._block_waiters.append(tracker)
            if self.telemetry is not None:
                self.telemetry.on_tracker_arm(
                    cycle, self.trackers.slot(tracker), tracker.block,
                    "block_wait", 0,
                )

    def _start_partial_search(self, tracker: SearchTracker, cycle: int) -> None:
        """4-row (128 B) search at the miss address (3.5/3.6)."""
        tracker.state = TrackerState.PARTIAL
        self.partial_searches += 1
        queued = self.transfer.enqueue_sector(
            tracker,
            sector_address(tracker.miss_address),
            eligible_cycle=cycle + MISS_TO_SEARCH_START,
            priority=PRIORITY_PARTIAL,
            rows=self.config.partial_search_rows,
        )
        if self.telemetry is not None:
            slot = self.trackers.slot(tracker)
            self.telemetry.on_tracker_arm(
                cycle, slot, tracker.block, "partial",
                self.config.partial_search_rows,
            )
            if queued:
                sector = (
                    sector_address(tracker.miss_address)
                    - block_address(tracker.miss_address)
                ) // SECTOR_BYTES
                self.telemetry.on_btb2_search_start(
                    cycle, slot, sector, queued, PRIORITY_PARTIAL
                )

    def _start_full_search(self, tracker: SearchTracker, cycle: int) -> None:
        """Steered full-block search: all 128 rows of the 4 KB block."""
        tracker.state = TrackerState.FULL
        self.full_searches += 1
        entry = (
            self.ordering_table.lookup(tracker.miss_address)
            if self.config.steering_enabled
            else None
        )
        eligible = cycle + MISS_TO_SEARCH_START
        block = block_address(tracker.miss_address)
        sectors = list(classify_sectors(entry, tracker.miss_address))
        if self.telemetry is not None:
            self.telemetry.on_tracker_arm(
                cycle, self.trackers.slot(tracker), tracker.block, "full",
                len(sectors) * ROWS_PER_SECTOR,
            )
        for sector, priority_class in sectors:
            priority = (
                PRIORITY_DEMAND
                if priority_class == 0
                else PRIORITY_REST_BASE + priority_class - 1
            )
            queued = self.transfer.enqueue_sector(
                tracker,
                block + sector * SECTOR_BYTES,
                eligible_cycle=eligible,
                priority=priority,
                rows=ROWS_PER_SECTOR,
            )
            if self.telemetry is not None and queued:
                self.telemetry.on_btb2_search_start(
                    cycle, self.trackers.slot(tracker), sector, queued,
                    priority,
                )

    # -- completion -----------------------------------------------------------

    def _tracker_drained(self, tracker: SearchTracker, cycle: int) -> None:
        """All in-flight rows of ``tracker`` completed."""
        if tracker.state is TrackerState.PARTIAL:
            if tracker.icache_miss_valid:
                # I-cache miss arrived exactly at completion: upgrade.
                self.partial_upgrades += 1
                self._start_full_search(tracker, cycle)
            else:
                self.partial_invalidations += 1
                self._note_batch_done(tracker, cycle, "partial_invalidated")
                tracker.reset()
        elif tracker.state is TrackerState.FULL:
            self._note_batch_done(tracker, cycle, "drained")
            tracker.reset()
        if self.audit is not None:
            self.audit.on_tracker_event(self, "tracker_drained")

    def _note_batch_done(self, tracker: SearchTracker, cycle: int,
                         reason: str) -> None:
        """Emit the end-of-activation transfer summary and expiry events."""
        if self.telemetry is not None:
            slot = self.trackers.slot(tracker)
            self.telemetry.on_transfer_batch(
                cycle, slot, tracker.block,
                len(tracker.enqueued_rows), tracker.transferred_entries,
            )
            self.telemetry.on_tracker_expire(
                cycle, slot, tracker.block, reason
            )

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of trackers, transfer machinery, steering and counters.

        The BTB2 itself is owned by the simulator and serialized there;
        tracker references inside the transfer engine are encoded as
        tracker-file slot indices (the stable architected identity).
        """
        return {
            "trackers": self.trackers.state_dict(),
            "ordering_table": self.ordering_table.state_dict(),
            "ordering_tracker": self.ordering_tracker.state_dict(),
            "transfer": self.transfer.state_dict(self.trackers.slot),
            "block_waiters": [
                self.trackers.slot(tracker) for tracker in self._block_waiters
            ],
            "counters": {
                "full_searches": self.full_searches,
                "partial_searches": self.partial_searches,
                "partial_upgrades": self.partial_upgrades,
                "partial_invalidations": self.partial_invalidations,
                "filtered_misses": self.filtered_misses,
                "duplicate_miss_reports": self.duplicate_miss_reports,
                "decode_miss_reports": self.decode_miss_reports,
                "followed_blocks": self.followed_blocks,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self.trackers.load_state_dict(state["trackers"])
        self.ordering_table.load_state_dict(state["ordering_table"])
        self.ordering_tracker.load_state_dict(state["ordering_tracker"])
        self.transfer.load_state_dict(
            state["transfer"], lambda slot: self.trackers.trackers[slot]
        )
        self._block_waiters = [
            self.trackers.trackers[slot] for slot in state["block_waiters"]
        ]
        counters = state["counters"]
        self.full_searches = counters["full_searches"]
        self.partial_searches = counters["partial_searches"]
        self.partial_upgrades = counters["partial_upgrades"]
        self.partial_invalidations = counters["partial_invalidations"]
        self.filtered_misses = counters["filtered_misses"]
        self.duplicate_miss_reports = counters["duplicate_miss_reports"]
        self.decode_miss_reports = counters["decode_miss_reports"]
        self.followed_blocks = counters["followed_blocks"]

    def flush(self) -> None:
        """Finish outstanding work (end of simulation).

        Commits the in-flight ordering-table entry, then drains every
        queued and in-flight BTB2 row read — transferred entries still
        install into the BTBP, so end-of-run structure statistics count
        the complete transfer stream, not just what the trace overlapped.
        """
        self.ordering_tracker.flush()
        self.transfer.drain()
