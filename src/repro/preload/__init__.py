"""Second-level preload machinery: trackers, steering, bulk transfers."""

from repro.preload.engine import (
    BLOCK_MODE_WAIT_CYCLES,
    PRIORITY_DEMAND,
    PRIORITY_PARTIAL,
    PRIORITY_REST_BASE,
    PreloadEngine,
)
from repro.preload.ordering import (
    ORDERING_TABLE_ENTRIES,
    ORDERING_TABLE_WAYS,
    OrderingEntry,
    OrderingTable,
    OrderingTracker,
    classify_sectors,
    order_sectors,
)
from repro.preload.tracker import SearchTracker, TrackerFile, TrackerState
from repro.preload.transfer import (
    FULL_BLOCK_TRANSFER_CYCLES,
    MISS_TO_SEARCH_START,
    SEARCH_PIPELINE_CYCLES,
    TransferEngine,
)

__all__ = [
    "BLOCK_MODE_WAIT_CYCLES",
    "FULL_BLOCK_TRANSFER_CYCLES",
    "MISS_TO_SEARCH_START",
    "ORDERING_TABLE_ENTRIES",
    "ORDERING_TABLE_WAYS",
    "OrderingEntry",
    "OrderingTable",
    "OrderingTracker",
    "PRIORITY_DEMAND",
    "PRIORITY_PARTIAL",
    "PRIORITY_REST_BASE",
    "PreloadEngine",
    "SEARCH_PIPELINE_CYCLES",
    "SearchTracker",
    "TrackerFile",
    "TrackerState",
    "TransferEngine",
    "classify_sectors",
    "order_sectors",
]
