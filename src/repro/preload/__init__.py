"""Second-level preload machinery: trackers, steering, bulk transfers.

The paper's contribution (sections 3.4-3.7), as four cooperating pieces:
:class:`TrackerFile` correlates perceived BTB1 misses with demand I-cache
misses per 4 KB block; :class:`OrderingTable`/:class:`OrderingTracker`
learn which 128-byte sectors each block actually executes and steer the
search order; :class:`TransferEngine` reads BTB2 rows at the architected
7 + 8 + 1-row/cycle timing and installs tag-matching entries into the
BTBP; and :class:`PreloadEngine` is the facade the simulator drives.
All timing is simulator-clock lazy: the engine only moves when
:meth:`PreloadEngine.advance` is called with the core's current cycle.
"""

from repro.preload.engine import (
    BLOCK_MODE_WAIT_CYCLES,
    PRIORITY_DEMAND,
    PRIORITY_PARTIAL,
    PRIORITY_REST_BASE,
    PreloadEngine,
)
from repro.preload.ordering import (
    ORDERING_TABLE_ENTRIES,
    ORDERING_TABLE_WAYS,
    OrderingEntry,
    OrderingTable,
    OrderingTracker,
    classify_sectors,
    order_sectors,
)
from repro.preload.tracker import SearchTracker, TrackerFile, TrackerState
from repro.preload.transfer import (
    FULL_BLOCK_TRANSFER_CYCLES,
    MISS_TO_SEARCH_START,
    SEARCH_PIPELINE_CYCLES,
    TransferEngine,
)

__all__ = [
    "BLOCK_MODE_WAIT_CYCLES",
    "FULL_BLOCK_TRANSFER_CYCLES",
    "MISS_TO_SEARCH_START",
    "ORDERING_TABLE_ENTRIES",
    "ORDERING_TABLE_WAYS",
    "OrderingEntry",
    "OrderingTable",
    "OrderingTracker",
    "PRIORITY_DEMAND",
    "PRIORITY_PARTIAL",
    "PRIORITY_REST_BASE",
    "PreloadEngine",
    "SEARCH_PIPELINE_CYCLES",
    "SearchTracker",
    "TrackerFile",
    "TrackerState",
    "TransferEngine",
    "classify_sectors",
    "order_sectors",
]
