"""Figure 7 — effect of varying the number of BTB2 search trackers.

The zEC12 implements three trackers (3.6).  Expected shape: benefit grows
with tracker count and saturates around the implemented three — with a
single tracker, overlapping misses in distinct 4 KB blocks drop on the
floor; beyond a few, the single-ported BTB2 transfer pipe is the limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.experiments.common import mean
from repro.experiments.pool import RunSpec, run_many
from repro.metrics.counters import cpi_improvement
from repro.workloads.catalog import TABLE4_WORKLOADS, WorkloadSpec

#: Swept tracker counts.
TRACKER_COUNTS: tuple[int, ...] = (1, 2, 3, 4, 8)
IMPLEMENTED_TRACKERS = 3


@dataclass(frozen=True)
class Figure7Point:
    """Average BTB2 benefit at one tracker count."""

    trackers: int
    mean_gain_percent: float
    implemented: bool


def run_figure7(
    workloads: tuple[WorkloadSpec, ...] = TABLE4_WORKLOADS,
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
    counts: tuple[int, ...] = TRACKER_COUNTS,
    jobs: int | None = None,
) -> list[Figure7Point]:
    """Average-of-all-traces BTB2 benefit per tracker count.

    One deduplicated batch covers the shared baselines and every
    (tracker-count, workload) variant; ``jobs`` controls worker fan-out.
    """
    configs = [
        ZEC12_CONFIG_2.with_(tracker_count=count, name=f"{count} trackers")
        for count in counts
    ]
    baselines = [RunSpec(spec, ZEC12_CONFIG_1, timing, scale)
                 for spec in workloads]
    variants = [RunSpec(spec, config, timing, scale)
                for config in configs for spec in workloads]
    results = run_many(baselines + variants, jobs=jobs)
    base_cpi = {run.workload: run.cpi for run in results[:len(workloads)]}
    points = []
    for index, count in enumerate(counts):
        offset = len(workloads) * (1 + index)
        gains = [
            cpi_improvement(base_cpi[run.workload], run.cpi)
            for run in results[offset:offset + len(workloads)]
        ]
        points.append(
            Figure7Point(
                trackers=count,
                mean_gain_percent=mean(gains),
                implemented=count == IMPLEMENTED_TRACKERS,
            )
        )
    return points


def render(points: list[Figure7Point]) -> str:
    """Paper-style text rendering of Figure 7."""
    lines = [
        "Figure 7: BTB2 tracker count sweep (mean CPI improvement, 13 traces)"
    ]
    for point in points:
        marker = "  <= zEC12" if point.implemented else ""
        lines.append(
            f"{point.trackers} tracker(s): {point.mean_gain_percent:6.2f}%{marker}"
        )
    return "\n".join(lines)
