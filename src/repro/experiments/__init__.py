"""Experiment runners regenerating every table and figure of the paper.

``python -m repro.experiments.run_all`` executes the whole evaluation and
writes the paper-vs-measured report (EXPERIMENTS.md).  All runners share
the concurrency-safe on-disk result cache of
:mod:`repro.experiments.common` and can fan cache misses out over worker
processes via :mod:`repro.experiments.pool` (``--jobs`` / ``REPRO_JOBS``).
"""

from repro.experiments.backends import (
    BACKENDS,
    Backend,
    ProcessBackend,
    SerialBackend,
    default_backend_name,
    resolve_backend,
)
from repro.experiments.common import (
    RunResult,
    geometric_mean,
    mean,
    run_all_workloads,
    run_workload,
)
from repro.experiments.pool import (
    ExecutionLog,
    RunSpec,
    effective_jobs,
    parallel_map,
    run_many,
)
from repro.experiments.figure2 import Figure2Row, run_figure2, summarize
from repro.experiments.figure3 import Figure3Row, run_figure3
from repro.experiments.figure4 import BAR_SEGMENTS, Figure4Column, run_figure4
from repro.experiments.figure5 import BTB2_SIZES, Figure5Point, run_figure5
from repro.experiments.figure6 import Figure6Point, MISS_LIMITS, run_figure6
from repro.experiments.figure7 import Figure7Point, TRACKER_COUNTS, run_figure7
from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

__all__ = [
    "BACKENDS",
    "BAR_SEGMENTS",
    "BTB2_SIZES",
    "Backend",
    "ExecutionLog",
    "Figure2Row",
    "Figure3Row",
    "Figure4Column",
    "Figure5Point",
    "Figure6Point",
    "Figure7Point",
    "MISS_LIMITS",
    "ProcessBackend",
    "RunResult",
    "RunSpec",
    "SerialBackend",
    "TRACKER_COUNTS",
    "default_backend_name",
    "effective_jobs",
    "resolve_backend",
    "geometric_mean",
    "mean",
    "parallel_map",
    "run_many",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "run_all_workloads",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_workload",
    "summarize",
]
