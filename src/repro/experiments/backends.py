"""Pluggable execution backends for batch dispatch.

One small seam — :class:`Backend` — behind which every fan-out in the repo
dispatches: the run-matrix pool (:mod:`repro.experiments.pool`) and the
checkpoint-parallel interval fan-out (:mod:`repro.sampling.parallel`).  Two
backends exist today:

* ``serial`` — in-process, deterministic ordering, zero setup cost.  The
  right choice for tiny batches, debugging, and environments without
  ``multiprocessing`` (or already inside a pool worker).
* ``thread`` — a ``concurrent.futures`` thread pool.  Shares the caller's
  memory, so tasks may carry live (unpicklable) objects; parallel speedup
  is bounded by the GIL, which suits I/O-ish work and the simulation
  service's session multiplexing (many small chunks, shared state).
* ``process`` — a ``multiprocessing`` pool (fork context where available).
  The default for real batches.

The registry keys are stable strings so a backend choice can travel
through :class:`~repro.experiments.pool.RunSpec` fields, CLI flags
(``--backend``), the ``REPRO_BACKEND`` environment variable, and result
cache fingerprints.  A future multi-host backend slots in by registering
a new name here; nothing else in the dispatch path changes.

This module deliberately imports nothing from the rest of ``repro`` so
both ``experiments`` and ``sampling`` can depend on it without cycles.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable supplying the default backend name.
BACKEND_ENV = "REPRO_BACKEND"


class Backend:
    """One way to execute a batch of independent picklable tasks.

    Implementations provide :meth:`map`: an order-preserving map of a
    module-level callable over a list of picklable items with at most
    ``jobs`` tasks in flight.  Results must come back in input order so
    callers can zip them against their request lists.
    """

    #: Stable registry name (also the CLI/env spelling).
    name: str = "?"

    def map(self, function: Callable[[T], R], items: Sequence[T],
            jobs: int = 1) -> list[R]:
        """Execute ``function`` over ``items``; results in input order."""
        raise NotImplementedError


class SerialBackend(Backend):
    """In-process, one item at a time.  ``jobs`` is accepted and ignored."""

    name = "serial"

    def map(self, function: Callable[[T], R], items: Sequence[T],
            jobs: int = 1) -> list[R]:
        """Apply ``function`` to each item in order, in this process."""
        return [function(item) for item in items]


class ThreadBackend(Backend):
    """A thread pool in this process.

    Tasks share the caller's address space, so — unlike ``process`` —
    items and results need not pickle, and mutations to shared objects
    are visible to the dispatcher.  Degrades to plain serial execution
    for trivial batches.
    """

    name = "thread"

    def map(self, function: Callable[[T], R], items: Sequence[T],
            jobs: int = 1) -> list[R]:
        """Map over a thread pool, preserving order; serial when trivial."""
        items = list(items)
        jobs = min(max(1, jobs), len(items)) if items else 1
        if jobs == 1 or len(items) <= 1:
            return [function(item) for item in items]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(function, items))


class ProcessBackend(Backend):
    """A ``multiprocessing`` pool (fork context where the platform has it).

    Degrades to serial execution when only one task (or one worker) is
    requested, and when already running inside a daemonized pool worker —
    daemonic processes cannot spawn children, and a nested fan-out gains
    nothing over running its slices inline.
    """

    name = "process"

    def map(self, function: Callable[[T], R], items: Sequence[T],
            jobs: int = 1) -> list[R]:
        """Map over a process pool, preserving order; serial when trivial."""
        items = list(items)
        jobs = min(max(1, jobs), len(items)) if items else 1
        if jobs == 1 or len(items) <= 1 \
                or multiprocessing.current_process().daemon:
            return [function(item) for item in items]
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        with context.Pool(processes=jobs) as pool:
            return pool.map(function, items)


#: Registry of available backends, by stable name.
BACKENDS: dict[str, Backend] = {
    backend.name: backend
    for backend in (SerialBackend(), ThreadBackend(), ProcessBackend())
}


def default_backend_name() -> str:
    """The backend used when none is requested (env override or process)."""
    name = os.environ.get(BACKEND_ENV, "").strip()
    return name if name else ProcessBackend.name


def resolve_backend(backend: "str | Backend | None" = None) -> Backend:
    """Resolve a backend argument to a concrete :class:`Backend`.

    Precedence: an explicit :class:`Backend` instance, then a registry
    name, then ``$REPRO_BACKEND``, then ``process``.  Unknown names raise
    ``ValueError`` listing the registry.
    """
    if isinstance(backend, Backend):
        return backend
    name = backend if backend else default_backend_name()
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
