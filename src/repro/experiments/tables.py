"""Regeneration of the paper's tables (1-5) as text.

Tables 1 and 2 are behavioural: their rows are produced by driving the
actual search pipeline implementation, not by quoting constants — the test
suite asserts the same timing the printed tables show.
"""

from __future__ import annotations

from repro.core.config import TABLE3_CONFIGS
from repro.core.search import (
    BROADCAST_LATENCY,
    MISS_DETECT_LATENCY,
    SEQUENTIAL_CYCLES_PER_ROW,
)
from repro.engine.params import ZEC12_CHIP_CONFIG
from repro.experiments.pool import parallel_map
from repro.trace.stats import TraceStats
from repro.workloads.catalog import TABLE4_WORKLOADS, WorkloadSpec


def render_table1() -> str:
    """Table 1 — first level branch prediction search pipeline."""
    rows = [
        ("b0", "Index arrays with search address x."),
        ("b1", "Access arrays."),
        ("b2", "Start hit detection; FIT re-index issues here (2-cycle rate)."),
        ("b3", "Finish hit detection; MRU-assumed re-index (3-cycle rate)."),
        ("b4", "Broadcast taken prediction from MRU column; non-MRU re-index "
               "(4-cycle rate)."),
        ("b5", "Broadcast 1st not-taken / non-MRU taken prediction."),
        ("b6", "Broadcast 2nd not-taken prediction (2 per row maximum)."),
    ]
    lines = ["Table 1: first level branch prediction search pipeline"]
    lines += [f"  {cycle}: {action}" for cycle, action in rows]
    lines.append(
        f"  (broadcast latency {BROADCAST_LATENCY} cycles; sequential rate "
        f"32 B per {SEQUENTIAL_CYCLES_PER_ROW} cycles = 16 B/cycle)"
    )
    return "\n".join(lines)


def render_table2(miss_limit: int = 3) -> str:
    """Table 2 — BTB1 miss detection timing (3-search example, as printed).

    The miss is reported at the b3 stage of the ``miss_limit``-th
    consecutive empty search, at the *starting* search address.
    """
    lines = [f"Table 2: BTB1 miss detection with a {miss_limit}-search limit"]
    for search in range(miss_limit):
        b0 = search  # searches launch back-to-back, one per cycle offset
        b3 = b0 + MISS_DETECT_LATENCY
        line = (
            f"  search+{search}: b0 at cycle {b0}, "
            f"empty search confirmed at b3 (cycle {b3})"
        )
        if search == miss_limit - 1:
            line += "  -> BTB1 miss reported at the starting search address"
        lines.append(line)
    return "\n".join(lines)


def render_table3() -> str:
    """Table 3 — simulated configurations."""
    lines = [
        "Table 3: simulated configurations",
        f"  {'name':32s} {'BTBP':>12s} {'BTB1':>14s} {'BTB2':>14s}",
    ]
    for config in TABLE3_CONFIGS:
        btbp = f"{config.btbp_rows * config.btbp_ways} ({config.btbp_rows}x{config.btbp_ways})"
        btb1 = f"{config.btb1_capacity} ({config.btb1_rows}x{config.btb1_ways})"
        btb2 = (
            f"{config.btb2_capacity} ({config.btb2_rows}x{config.btb2_ways})"
            if config.btb2_enabled
            else "0 (disabled)"
        )
        lines.append(f"  {config.name:32s} {btbp:>12s} {btb1:>14s} {btb2:>14s}")
    return "\n".join(lines)


def _stats_for(item: tuple[WorkloadSpec, float | None]) -> TraceStats:
    """Pool worker body for Table 4: one workload's trace statistics.

    Module-level so it pickles; trace generation goes through the on-disk
    trace cache, whose writes are atomic under concurrent workers.
    """
    spec, scale = item
    return spec.stats(scale)


def render_table4(
    workloads: tuple[WorkloadSpec, ...] = TABLE4_WORKLOADS,
    scale: float | None = None,
    measured: bool = True,
    jobs: int | None = None,
) -> str:
    """Table 4 — large footprint traces, paper vs measured synthetics.

    The measured columns require generating (or loading) every trace;
    ``jobs`` fans that across worker processes like the figure runners.
    """
    lines = [
        "Table 4: large footprint traces (paper counters vs measured synthetics)",
        f"  {'trace':34s} {'paper uniq':>10s} {'paper taken':>11s}"
        + (f" {'meas uniq':>10s} {'meas taken':>10s}" if measured else ""),
    ]
    measured_stats = (
        parallel_map(_stats_for, [(spec, scale) for spec in workloads], jobs=jobs)
        if measured
        else [None] * len(workloads)
    )
    for spec, stats in zip(workloads, measured_stats):
        row = (
            f"  {spec.name:34s} {spec.paper_unique_branches:10,d} "
            f"{spec.paper_unique_taken:11,d}"
        )
        if stats is not None:
            row += (
                f" {stats.unique_branch_addresses:10,d}"
                f" {stats.unique_taken_branch_addresses:10,d}"
            )
        lines.append(row)
    return "\n".join(lines)


def render_table5() -> str:
    """Table 5 — zEnterprise EC12 chip configuration."""
    lines = ["Table 5: zEnterprise EC12 chip configuration"]
    lines += [f"  {key:18s} {value}" for key, value in ZEC12_CHIP_CONFIG.items()]
    return "\n".join(lines)
