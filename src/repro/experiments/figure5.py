"""Figure 5 — effect of varying the BTB2 size (average of the 13 traces).

The paper sweeps the second-level capacity around the implemented 24k
(4k rows x 6 ways) point, "demonstrating the performance opportunity of a
larger BTB2".  Expected shape: monotone increasing benefit with diminishing
returns; the hardware point (24k) is marked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.experiments.common import mean
from repro.experiments.pool import RunSpec, run_many
from repro.metrics.counters import cpi_improvement
from repro.workloads.catalog import TABLE4_WORKLOADS, WorkloadSpec

#: Swept geometries: (rows, ways) -> capacity in branches.
BTB2_SIZES: tuple[tuple[int, int], ...] = (
    (1024, 6),   # 6k
    (2048, 6),   # 12k
    (4096, 6),   # 24k  <- implemented in zEC12
    (8192, 6),   # 48k
    (16384, 6),  # 96k
)
IMPLEMENTED_SIZE = (4096, 6)


@dataclass(frozen=True)
class Figure5Point:
    """Average BTB2 benefit at one second-level capacity."""

    rows: int
    ways: int
    capacity: int
    mean_gain_percent: float
    implemented: bool


def run_figure5(
    workloads: tuple[WorkloadSpec, ...] = TABLE4_WORKLOADS,
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
    sizes: tuple[tuple[int, int], ...] = BTB2_SIZES,
    jobs: int | None = None,
) -> list[Figure5Point]:
    """Average-of-all-traces BTB2 benefit per swept capacity.

    The whole sweep — the shared baselines plus every (capacity, workload)
    variant — is submitted as one deduplicated batch, so ``jobs`` workers
    can chew through all sweep points concurrently.
    """
    configs = [
        ZEC12_CONFIG_2.with_(
            btb2_rows=rows, btb2_ways=ways,
            name=f"BTB2 {rows * ways // 1024}k ({rows} x {ways})",
        )
        for rows, ways in sizes
    ]
    baselines = [RunSpec(spec, ZEC12_CONFIG_1, timing, scale)
                 for spec in workloads]
    variants = [RunSpec(spec, config, timing, scale)
                for config in configs for spec in workloads]
    results = run_many(baselines + variants, jobs=jobs)
    base_cpi = {run.workload: run.cpi for run in results[:len(workloads)]}
    points = []
    for index, (rows, ways) in enumerate(sizes):
        offset = len(workloads) * (1 + index)
        gains = [
            cpi_improvement(base_cpi[run.workload], run.cpi)
            for run in results[offset:offset + len(workloads)]
        ]
        points.append(
            Figure5Point(
                rows=rows,
                ways=ways,
                capacity=rows * ways,
                mean_gain_percent=mean(gains),
                implemented=(rows, ways) == IMPLEMENTED_SIZE,
            )
        )
    return points


def render(points: list[Figure5Point]) -> str:
    """Paper-style text rendering of Figure 5."""
    lines = ["Figure 5: BTB2 size sweep (mean CPI improvement over 13 traces)"]
    for point in points:
        marker = "  <= zEC12" if point.implemented else ""
        lines.append(
            f"BTB2 {point.capacity // 1024:3d}k ({point.rows:5d} x {point.ways}): "
            f"{point.mean_gain_percent:6.2f}%{marker}"
        )
    return "\n".join(lines)
