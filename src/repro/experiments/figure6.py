"""Figure 6 — effect of varying the definition of a BTB1 miss.

"Simulation shows that reporting a BTB1 miss after 4 searches without
predictions, up to 128 bytes, provides the best results on the studied
workloads (Figure 6)." (paper, 3.4)

Expected shape: a peak at 4 searches.  Fewer searches over-report (false
perceived misses start transfers that pollute the BTBP and burn BTB2
bandwidth); more searches detect real capacity gaps too late for the bulk
transfer to beat the demand stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.experiments.common import mean
from repro.experiments.pool import RunSpec, run_many
from repro.metrics.counters import cpi_improvement
from repro.workloads.catalog import TABLE4_WORKLOADS, WorkloadSpec

#: Swept miss definitions (searches without a prediction before reporting).
MISS_LIMITS: tuple[int, ...] = (2, 3, 4, 6, 8)
IMPLEMENTED_LIMIT = 4


@dataclass(frozen=True)
class Figure6Point:
    """Average BTB2 benefit at one miss-definition setting."""

    miss_limit: int
    search_bytes: int
    mean_gain_percent: float
    implemented: bool


def run_figure6(
    workloads: tuple[WorkloadSpec, ...] = TABLE4_WORKLOADS,
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
    limits: tuple[int, ...] = MISS_LIMITS,
    jobs: int | None = None,
) -> list[Figure6Point]:
    """Average-of-all-traces BTB2 benefit per miss definition.

    One deduplicated batch covers the shared baselines and every
    (miss-limit, workload) variant; ``jobs`` controls worker fan-out.
    """
    configs = [
        ZEC12_CONFIG_2.with_(
            miss_search_limit=limit,
            name=f"miss after {limit} searches",
        )
        for limit in limits
    ]
    baselines = [RunSpec(spec, ZEC12_CONFIG_1, timing, scale)
                 for spec in workloads]
    variants = [RunSpec(spec, config, timing, scale)
                for config in configs for spec in workloads]
    results = run_many(baselines + variants, jobs=jobs)
    base_cpi = {run.workload: run.cpi for run in results[:len(workloads)]}
    points = []
    for index, limit in enumerate(limits):
        offset = len(workloads) * (1 + index)
        gains = [
            cpi_improvement(base_cpi[run.workload], run.cpi)
            for run in results[offset:offset + len(workloads)]
        ]
        points.append(
            Figure6Point(
                miss_limit=limit,
                search_bytes=limit * 32,
                mean_gain_percent=mean(gains),
                implemented=limit == IMPLEMENTED_LIMIT,
            )
        )
    return points


def render(points: list[Figure6Point]) -> str:
    """Paper-style text rendering of Figure 6."""
    lines = [
        "Figure 6: BTB1-miss definition sweep (mean CPI improvement, 13 traces)"
    ]
    for point in points:
        marker = "  <= zEC12" if point.implemented else ""
        lines.append(
            f"{point.miss_limit} searches ({point.search_bytes:3d} B): "
            f"{point.mean_gain_percent:6.2f}%{marker}"
        )
    return "\n".join(lines)
