"""Figure 2 — CPI improvement of the BTB2 and of an unrealistically large
BTB1, per trace, plus BTB2 effectiveness.

Paper reference points (5.1): maximum BTB2 benefit 13.8 % on DayTrader
DBServ (vs 20.2 % for the large BTB1 on the same trace); BTB2 effectiveness
between 16.6 % and 83.4 % with an average of 52 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2, ZEC12_CONFIG_3
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.experiments.common import mean
from repro.experiments.pool import RunSpec, run_many
from repro.metrics.counters import btb2_effectiveness, cpi_improvement
from repro.workloads.catalog import TABLE4_WORKLOADS, WorkloadSpec

CONFIGS = (ZEC12_CONFIG_1, ZEC12_CONFIG_2, ZEC12_CONFIG_3)


@dataclass(frozen=True)
class Figure2Row:
    """One trace's bar pair: BTB2 gain, large-BTB1 gain, effectiveness."""

    workload: str
    baseline_cpi: float
    btb2_gain_percent: float
    large_btb1_gain_percent: float
    effectiveness_percent: float


def run_figure2(
    workloads: tuple[WorkloadSpec, ...] = TABLE4_WORKLOADS,
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[Figure2Row]:
    """Simulate the three Table 3 configurations on every workload.

    All 3 x len(workloads) runs are submitted as one cached batch;
    ``jobs`` controls the worker fan-out (default ``REPRO_JOBS``/serial).
    """
    specs = [
        RunSpec(spec, config, timing, scale)
        for spec in workloads
        for config in CONFIGS
    ]
    results = run_many(specs, jobs=jobs)
    rows = []
    for index, spec in enumerate(workloads):
        base, with_btb2, large = results[3 * index:3 * index + 3]
        btb2_gain = cpi_improvement(base.cpi, with_btb2.cpi)
        large_gain = cpi_improvement(base.cpi, large.cpi)
        rows.append(
            Figure2Row(
                workload=spec.name,
                baseline_cpi=base.cpi,
                btb2_gain_percent=btb2_gain,
                large_btb1_gain_percent=large_gain,
                effectiveness_percent=btb2_effectiveness(btb2_gain, large_gain),
            )
        )
    return rows


def summarize(rows: list[Figure2Row]) -> dict[str, float]:
    """Headline numbers matching the paper's Figure 2 commentary."""
    effectiveness = [r.effectiveness_percent for r in rows]
    return {
        "max_btb2_gain_percent": max(r.btb2_gain_percent for r in rows),
        "max_large_btb1_gain_percent": max(
            r.large_btb1_gain_percent for r in rows
        ),
        "min_effectiveness_percent": min(effectiveness),
        "max_effectiveness_percent": max(effectiveness),
        "mean_effectiveness_percent": mean(effectiveness),
    }


def render(rows: list[Figure2Row]) -> str:
    """Paper-style text rendering of Figure 2."""
    lines = [
        "Figure 2: CPI improvement vs configuration 1 (no BTB2)",
        f"{'trace':34s} {'base CPI':>8s} {'BTB2 %':>8s} {'24k BTB1 %':>10s} {'effect %':>9s}",
    ]
    for row in rows:
        lines.append(
            f"{row.workload:34s} {row.baseline_cpi:8.3f} "
            f"{row.btb2_gain_percent:8.2f} {row.large_btb1_gain_percent:10.2f} "
            f"{row.effectiveness_percent:9.1f}"
        )
    summary = summarize(rows)
    lines.append(
        f"{'':34s} max BTB2 {summary['max_btb2_gain_percent']:.2f}%  "
        f"effectiveness {summary['min_effectiveness_percent']:.1f}%"
        f"..{summary['max_effectiveness_percent']:.1f}%"
        f" (mean {summary['mean_effectiveness_percent']:.1f}%)"
    )
    return "\n".join(lines)
