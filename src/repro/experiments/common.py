"""Shared experiment infrastructure: runs, caching, aggregation.

Every figure of the paper is a set of (workload, configuration) simulation
runs post-processed into CPI improvements.  Runs are expensive, and the
figures share many of them (every figure needs the configuration-1 baseline
on all 13 traces), so results are cached on disk as JSON keyed by the full
(workload, config, timing, scale) fingerprint.  Delete ``.results_cache/``
(or set ``REPRO_RESULTS_CACHE=off``) to force re-simulation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import PredictorConfig
from repro.core.events import OutcomeKind
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import Simulator
from repro.workloads.catalog import TABLE4_WORKLOADS, WorkloadSpec, default_scale

RESULTS_CACHE_ENV = "REPRO_RESULTS_CACHE"


@dataclass(frozen=True)
class RunResult:
    """Cached essentials of one simulation run."""

    workload: str
    config: str
    cpi: float
    instructions: int
    branches: int
    outcome_fractions: dict[str, float]
    preload_stats: dict[str, int]

    @property
    def bad_fraction(self) -> float:
        """Fraction of branch outcomes that are bad."""
        return sum(
            fraction
            for name, fraction in self.outcome_fractions.items()
            if OutcomeKind(name).is_bad
        )

    def fraction(self, kind: OutcomeKind) -> float:
        """Outcome fraction for ``kind``."""
        return self.outcome_fractions.get(kind.value, 0.0)


def _fingerprint(spec: WorkloadSpec, config: PredictorConfig,
                 timing: TimingParams, scale: float) -> str:
    payload = repr((spec, _config_key(config), dataclasses.astuple(timing), scale))
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


def _config_key(config: PredictorConfig) -> tuple:
    values = dataclasses.asdict(config)
    values.pop("name", None)
    return tuple(sorted((k, str(v)) for k, v in values.items()))


def _cache_dir() -> Path | None:
    root = os.environ.get(RESULTS_CACHE_ENV, ".results_cache")
    if root in ("", "off", "none"):
        return None
    return Path(root)


def run_workload(
    spec: WorkloadSpec,
    config: PredictorConfig,
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
) -> RunResult:
    """Simulate ``spec`` under ``config``, using the on-disk result cache."""
    if scale is None:
        scale = default_scale()
    cache_dir = _cache_dir()
    key = _fingerprint(spec, config, timing, scale)
    cache_file = cache_dir / f"{key}.json" if cache_dir is not None else None
    if cache_file is not None and cache_file.exists():
        payload = json.loads(cache_file.read_text())
        if payload.get("instructions", 0) > 0:  # ignore corrupt entries
            return RunResult(**payload)

    trace = spec.trace(scale)
    if not trace:
        raise RuntimeError(f"empty trace for {spec.name} at scale {scale}")
    result = Simulator(config=config, timing=timing).run(trace)
    run = RunResult(
        workload=spec.name,
        config=config.name,
        cpi=result.cpi,
        instructions=result.counters.instructions,
        branches=result.counters.branches,
        outcome_fractions={
            kind.value: fraction
            for kind, fraction in result.counters.outcome_fractions().items()
        },
        preload_stats=dict(result.preload_stats),
    )
    if cache_file is not None:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        scratch = cache_file.with_suffix(f".tmp{os.getpid()}")
        scratch.write_text(json.dumps(dataclasses.asdict(run)))
        os.replace(scratch, cache_file)  # atomic vs concurrent readers
    return run


def run_all_workloads(
    config: PredictorConfig,
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
    workloads: tuple[WorkloadSpec, ...] = TABLE4_WORKLOADS,
) -> list[RunResult]:
    """One run per catalog workload under ``config``."""
    return [run_workload(spec, config, timing, scale) for spec in workloads]


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (0 when any value is non-positive)."""
    if not values or any(v <= 0 for v in values):
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def mean(values: list[float]) -> float:
    """Arithmetic mean (0 for empty input)."""
    return sum(values) / len(values) if values else 0.0
