"""Shared experiment infrastructure: runs, caching, aggregation.

Every figure of the paper is a set of (workload, configuration) simulation
runs post-processed into CPI improvements.  Runs are expensive, and the
figures share many of them (every figure needs the configuration-1 baseline
on all 13 traces), so results are cached on disk as JSON, one file per full
(workload, config, timing, scale) fingerprint.  Delete ``.results_cache/``
(or set ``REPRO_RESULTS_CACHE=off``) to force re-simulation.

The cache is safe under concurrent writers (see
:mod:`repro.experiments.pool`, which fans runs out over a process pool):
every write goes to a private temp file first and is published with an
atomic :func:`os.replace`, so readers never observe a half-written entry,
and the last writer of identical content wins harmlessly.  Reads are
tolerant — truncated, corrupt, or stale-schema entries are treated as cache
misses and re-simulated (then overwritten).

Each cached :class:`RunResult` also records run observability: the wall
time of the simulation, its instructions/second throughput, and which
worker process produced it.  These fields are excluded from equality so a
re-simulated run still compares equal to its cached twin.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.audit import Auditor, audit_from_env
from repro.core.config import PredictorConfig
from repro.core.events import OutcomeKind
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import Simulator
from repro.experiments.backends import resolve_backend
from repro.sampling import (
    CheckpointStore,
    ParallelPlan,
    SamplingPlan,
    TraceSource,
    run_parallel,
    run_sampled,
)
from repro.telemetry.distributed import TelemetryRelay
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.monitor import StatusBoard
from repro.workloads.catalog import TABLE4_WORKLOADS, WorkloadSpec, default_scale

#: Environment variable overriding the result-cache directory
#: (``off``/``none``/empty disables caching entirely).
RESULTS_CACHE_ENV = "REPRO_RESULTS_CACHE"

#: Per-process relay-session slice counter: each ``run_workload`` call
#: under an active relay gets its own (worker, slice) shard, and worker
#: names differ per process, so fork-inherited counter values cannot
#: collide across processes.
_RELAY_SLICES = itertools.count()


@dataclass(frozen=True)
class RunResult:
    """Cached essentials of one simulation run.

    The first block of fields is the scientific payload and defines
    equality; the observability block (``wall_seconds``, ``worker``) is
    carried along in the cache but compares equal across runs, so a cache
    hit and a fresh simulation of the same fingerprint are ``==``.
    """

    workload: str
    config: str
    cpi: float
    instructions: int
    branches: int
    outcome_fractions: dict[str, float]
    preload_stats: dict[str, int]
    #: Registry name of the predictor that produced the run.  Part of
    #: equality — a zoo run is a different scientific object from a paper
    #: run.  Defaults to the paper stack so pre-zoo cache entries (which
    #: lack the key) load as what they are.
    predictor: str = "paper"
    #: Sampled-run provenance (plan description, interval count, CI
    #: halfwidths, checkpoint traffic); ``None`` for full-detail runs.
    #: Part of equality: a sampled estimate is a different scientific
    #: object from a full measurement and must never compare equal to one.
    sampling: dict | None = None
    #: Checkpoint-parallel execution provenance (mode, slice count,
    #: backend, checkpoint traffic); ``None`` for serial runs.  Excluded
    #: from equality on purpose: an exact-mode parallel run is
    #: bit-identical to its serial twin, and the ``repro verify`` parallel
    #: gate asserts exactly that via ``==``.
    parallel: dict | None = field(default=None, compare=False)
    #: Wall-clock seconds the producing simulation took (0 when unknown).
    wall_seconds: float = field(default=0.0, compare=False)
    #: Name of the process that simulated this run (e.g. ``MainProcess`` or
    #: ``ForkPoolWorker-2``).
    worker: str = field(default="", compare=False)

    @property
    def bad_fraction(self) -> float:
        """Fraction of branch outcomes that are bad."""
        return sum(
            fraction
            for name, fraction in self.outcome_fractions.items()
            if OutcomeKind(name).is_bad
        )

    @property
    def instructions_per_second(self) -> float:
        """Simulation throughput of the producing run (0 when unknown)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.instructions / self.wall_seconds

    def fraction(self, kind: OutcomeKind) -> float:
        """Outcome fraction for ``kind``."""
        return self.outcome_fractions.get(kind.value, 0.0)


#: Fields a cache entry must carry to be usable; missing any -> treated as
#: a corrupt/stale entry and re-simulated.
_REQUIRED_FIELDS = frozenset(
    {"workload", "config", "cpi", "instructions", "branches",
     "outcome_fractions", "preload_stats"}
)
_KNOWN_FIELDS = frozenset(f.name for f in dataclasses.fields(RunResult))


def run_fingerprint(spec: WorkloadSpec, config: PredictorConfig,
                    timing: TimingParams, scale: float,
                    sampling: SamplingPlan | None = None,
                    engine_mode: str = "object",
                    parallel: ParallelPlan | None = None,
                    backend: str | None = None,
                    predictor: str = "paper") -> str:
    """Stable cache key of one (workload, config, timing, scale) run.

    Any change to the workload's generator parameters, the configuration's
    structural knobs (``name`` excluded), the timing model, or the scale
    yields a new fingerprint — which is also the cache invalidation rule:
    nothing is ever invalidated in place, changed inputs simply miss.

    A sampled run keys on the sampling plan as well: its estimates must
    never be served from (or to) a full-detail run's cache slot.  Full runs
    keep their historical fingerprints (``sampling=None`` adds nothing to
    the payload).

    ``engine_mode`` is fingerprinted the same way: only a non-default mode
    extends the payload, so object-engine results keep their historical
    keys while batched/auto results can never be served from (or poison) an
    object run's slot — even though the engines are verified bit-identical,
    the cache must not *assume* it.

    ``parallel`` follows the same append-only rule: a checkpoint-parallel
    run keys on its plan (K) *and* the resolved backend name, so a serial
    run's cache slot is never served for a parallel spec and vice versa —
    exact-mode parity between the two slots is something ``repro verify``
    proves, not something the cache presumes.  ``backend`` extends the
    payload only alongside ``parallel``: for serial runs it is pure
    execution plumbing with no bearing on the result.

    ``predictor`` is append-only too: the default paper stack adds nothing
    (historical keys survive), while every zoo predictor extends the
    payload with its registry name — a zoo run can never collide with a
    cached paper-stack slot, or with another zoo predictor's.
    """
    payload = repr((spec, _config_key(config), dataclasses.astuple(timing), scale))
    if sampling is not None:
        payload += repr(("sampled", sampling.cache_key()))
    if engine_mode != "object":
        payload += repr(("engine", engine_mode))
    if parallel is not None:
        payload += repr(("parallel", parallel.cache_key(),
                         resolve_backend(backend).name))
    if predictor != "paper":
        payload += repr(("predictor", predictor))
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


# Backwards-compatible private alias (older tests/scripts may import it).
_fingerprint = run_fingerprint


def _config_key(config: PredictorConfig) -> tuple:
    values = dataclasses.asdict(config)
    values.pop("name", None)
    return tuple(sorted((k, str(v)) for k, v in values.items()))


def _cache_dir() -> Path | None:
    root = os.environ.get(RESULTS_CACHE_ENV, ".results_cache")
    if root in ("", "off", "none"):
        return None
    return Path(root)


def cache_path(key: str) -> Path | None:
    """On-disk location of fingerprint ``key`` (``None`` = caching off)."""
    cache_dir = _cache_dir()
    if cache_dir is None:
        return None
    return cache_dir / f"{key}.json"


def load_cached_run(key: str) -> RunResult | None:
    """Load the cached result for fingerprint ``key``, tolerantly.

    Returns ``None`` (a cache miss) for anything unusable: missing file,
    truncated or non-JSON content, entries lacking required fields, or
    entries whose instruction count is implausible.  Unknown extra keys
    (from a newer schema) are dropped rather than rejected.
    """
    path = cache_path(key)
    if path is None:
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if not _REQUIRED_FIELDS.issubset(payload):
        return None
    if not payload.get("instructions", 0):
        return None
    known = {k: v for k, v in payload.items() if k in _KNOWN_FIELDS}
    try:
        return RunResult(**known)
    except TypeError:
        return None


def store_cached_run(key: str, run: RunResult) -> None:
    """Publish ``run`` under fingerprint ``key``, atomically.

    The payload is written to a writer-private temp file and moved into
    place with :func:`os.replace`, so concurrent readers see either the old
    entry or the new one, never a torn write.  Concurrent writers of the
    same fingerprint produce identical scientific payloads; whichever
    rename lands last wins.
    """
    path = cache_path(key)
    if path is None:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_suffix(f".tmp{os.getpid()}")
    scratch.write_text(json.dumps(dataclasses.asdict(run)))
    os.replace(scratch, path)  # atomic vs concurrent readers and writers


def trace_identity(spec: WorkloadSpec, scale: float) -> str:
    """Stable identity of one generated trace (checkpoint provenance)."""
    return hashlib.sha256(repr((spec, scale)).encode()).hexdigest()[:16]


def _sampled_info(sampled) -> dict:
    """The ``sampling`` provenance block of a sampled run's cache entry."""
    return {
        "plan": sampled.plan.describe(),
        "plan_key": list(sampled.plan.cache_key()),
        "intervals": len(sampled.measurements),
        "detailed_records": sampled.detailed_records,
        "cpi_ci": sampled.cpi_ci,
        "bad_outcome_ci": sampled.bad_outcome_ci,
        "checkpoints_loaded": sampled.checkpoints_loaded,
        "checkpoints_saved": sampled.checkpoints_saved,
    }


def _simulate(spec, config, timing, scale, auditor, sampling,
              checkpoint_dir, engine_mode, parallel, backend,
              relay, telemetry, label, predictor="paper"):
    """Dispatch one cache-missed run to its execution strategy.

    Returns ``(result, sampling_info, parallel_info)`` — the simulation
    result plus the provenance blocks the cache entry records.
    """
    sampling_info: dict | None = None
    parallel_info: dict | None = None
    if parallel is not None:
        store = (CheckpointStore(checkpoint_dir)
                 if checkpoint_dir is not None else None)
        stitched = run_parallel(
            TraceSource.for_workload(spec, scale),
            config=config, timing=timing, plan=parallel, sampling=sampling,
            checkpoint_store=store, trace_key=trace_identity(spec, scale),
            engine_mode=engine_mode, backend=backend,
            relay=relay, status_label=label,
        )
        result = stitched.result
        parallel_info = {
            "mode": stitched.mode,
            "plan_key": list(stitched.plan.cache_key()),
            "backend": stitched.backend,
            "slices": len(stitched.outcomes),
            "exact": stitched.exact,
            "warm_fallbacks": stitched.warm_fallbacks,
            "produced_records": stitched.produced_records,
            "checkpoints_loaded": stitched.checkpoints_loaded,
            "checkpoints_saved": stitched.checkpoints_saved,
        }
        if stitched.sampled is not None:
            sampling_info = _sampled_info(stitched.sampled)
        return result, sampling_info, parallel_info
    trace = spec.trace(scale)
    if not trace:
        raise RuntimeError(f"empty trace for {spec.name} at scale {scale}")
    if predictor != "paper":
        from repro.predictors.registry import create_predictor

        instance = create_predictor(
            predictor, config=config, timing=timing,
            audit=auditor is not None, telemetry=telemetry)
        return instance.run(trace), None, None
    if sampling is not None:
        store = (CheckpointStore(checkpoint_dir)
                 if checkpoint_dir is not None else None)
        sampled = run_sampled(
            trace, config=config, timing=timing, plan=sampling,
            audit=auditor, checkpoint_store=store,
            trace_key=trace_identity(spec, scale),
            engine_mode=engine_mode, telemetry=telemetry,
        )
        return sampled.result, _sampled_info(sampled), None
    result = Simulator(config=config, timing=timing, audit=auditor,
                       engine_mode=engine_mode,
                       telemetry=telemetry).run(trace)
    return result, None, None


def run_workload(
    spec: WorkloadSpec,
    config: PredictorConfig,
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
    audit: bool | None = None,
    sampling: SamplingPlan | None = None,
    checkpoint_dir: str | None = None,
    engine_mode: str = "object",
    parallel: ParallelPlan | None = None,
    backend: str | None = None,
    predictor: str = "paper",
) -> RunResult:
    """Simulate ``spec`` under ``config``, using the on-disk result cache.

    This is the serial single-run entry point; batches of runs should go
    through :func:`repro.experiments.pool.run_many`, which deduplicates,
    consults the same cache, and can dispatch misses to worker processes.

    ``audit`` runs the simulation under a strict
    :class:`repro.audit.Auditor` (``None`` defers to the ``REPRO_AUDIT``
    environment variable).  Audited runs bypass cache *reads* — a hit
    would skip the checks — but still publish their result, which is
    identical to an unaudited run's.

    ``sampling`` switches the run to interval sampling
    (:func:`repro.sampling.run_sampled`): the result carries extrapolated
    estimates plus a ``sampling`` provenance block, and caches under a
    distinct fingerprint.  ``checkpoint_dir`` (sampled runs only) names a
    :class:`repro.sampling.CheckpointStore` so warmed interval states are
    created once and reused.

    ``engine_mode`` selects the simulation engine
    (:data:`repro.engine.batched.ENGINE_MODES`); results are verified
    bit-identical across engines, but each mode caches under its own
    fingerprint.

    ``parallel`` switches execution to checkpoint-parallel interval
    simulation (:func:`repro.sampling.run_parallel`): the trace is cut
    into K slices fanned out over ``backend``, and the stitched result
    caches under its own fingerprint.  Combined with ``sampling`` the
    slices run the sampling plan's intervals (CI-bounded estimates);
    alone, the run is exact — bit-identical to the serial path.
    Parallel runs cannot be audited: per-record audit hooks do not cross
    worker process boundaries, and silently skipping them would defeat
    the point of ``audit``.

    ``predictor`` selects a registered zoo predictor instead of the paper
    stack (``repro.predictors``).  Zoo runs are serial full-detail only:
    sampling, checkpoint-parallel execution, and alternate engine modes
    are paper-stack machinery and are rejected rather than silently
    ignored.  ``audit`` enables the zoo's counter-conservation self-check.
    """
    if scale is None:
        scale = default_scale()
    if audit is None:
        audit = audit_from_env()
    if parallel is not None and audit:
        raise ValueError(
            "audited runs cannot be checkpoint-parallel: audit hooks are "
            "per-record and do not cross worker process boundaries; drop "
            "--parallel-intervals or the audit flag"
        )
    if predictor != "paper":
        from repro.predictors.registry import predictor_info

        predictor_info(predictor)  # fail fast on unknown names
        if sampling is not None or parallel is not None:
            raise ValueError(
                "sampled and checkpoint-parallel execution are implemented "
                "for the paper stack only; drop the sampling/parallel plan "
                "or use predictor='paper'"
            )
        if engine_mode != "object":
            raise ValueError(
                "alternate engine modes exist for the paper stack only; "
                "zoo predictors have a single engine"
            )
    key = run_fingerprint(spec, config, timing, scale, sampling,
                          engine_mode=engine_mode, parallel=parallel,
                          backend=backend, predictor=predictor)
    board = StatusBoard.from_env()
    label = f"{spec.name}/{config.name}"
    if not audit:
        cached = load_cached_run(key)
        if cached is not None:
            REGISTRY.counter(
                "repro_runs_total", "workload runs by result", ("result",),
            ).inc(result="cached")
            if board is not None:
                board.beat(label, "cached",
                           instructions=cached.instructions,
                           seconds=cached.wall_seconds)
            return cached

    # With a relay active ($REPRO_RELAY), serial and sampled runs stream
    # their telemetry into a per-(process, run) shard; parallel runs hand
    # the relay down so each slice gets its own worker shard instead.
    # Metrics for the run land in the session registry when one is open
    # (relayed home at close) and in the process-local REGISTRY otherwise
    # — exactly one of the two, so aggregation never double-counts.
    relay = TelemetryRelay.from_env()
    session = None
    telemetry = None
    if relay is not None and parallel is None:
        session = relay.worker_session(
            multiprocessing.current_process().name, next(_RELAY_SLICES))
        telemetry = session.telemetry
    if board is not None:
        board.beat(label, "measuring")

    started = time.perf_counter()
    auditor = Auditor() if audit else None
    try:
        result, sampling_info, parallel_info = _simulate(
            spec, config, timing, scale, auditor, sampling, checkpoint_dir,
            engine_mode, parallel, backend, relay, telemetry, label,
            predictor=predictor)
    except BaseException:
        if session is not None:
            session.close()
        if board is not None:
            board.beat(label, "failed")
        raise
    elapsed = time.perf_counter() - started
    run = RunResult(
        workload=spec.name,
        config=config.name,
        cpi=result.cpi,
        instructions=result.counters.instructions,
        branches=result.counters.branches,
        outcome_fractions={
            kind.value: fraction
            for kind, fraction in result.counters.outcome_fractions().items()
        },
        preload_stats=dict(result.preload_stats),
        predictor=predictor,
        sampling=sampling_info,
        parallel=parallel_info,
        wall_seconds=elapsed,
        worker=multiprocessing.current_process().name,
    )
    registry = session.registry if session is not None else REGISTRY
    registry.counter(
        "repro_runs_total", "workload runs by result", ("result",),
    ).inc(result="simulated")
    registry.counter(
        "repro_run_instructions_total", "instructions simulated by runs",
    ).inc(run.instructions)
    registry.counter(
        "repro_run_branches_total", "branches simulated by runs",
    ).inc(run.branches)
    registry.histogram(
        "repro_run_seconds", "wall seconds per simulated run",
    ).observe(elapsed)
    if session is not None:
        session.close()
    if board is not None:
        board.beat(label, "done", instructions=run.instructions,
                   seconds=elapsed)
    store_cached_run(key, run)
    return run


def run_all_workloads(
    config: PredictorConfig,
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
    workloads: tuple[WorkloadSpec, ...] = TABLE4_WORKLOADS,
) -> list[RunResult]:
    """One run per catalog workload under ``config`` (serial; cached)."""
    return [run_workload(spec, config, timing, scale) for spec in workloads]


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (0 when any value is non-positive)."""
    if not values or any(v <= 0 for v in values):
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def mean(values: list[float]) -> float:
    """Arithmetic mean (0 for empty input)."""
    return sum(values) / len(values) if values else 0.0
