"""Figure 4 — effect of the BTB2 on bad branch outcomes (DayTrader DBServ).

Paper reference points (5.1): without the BTB2, 25.9 % of all branch
outcomes are bad, of which 21.9 points are capacity bad surprises; with the
BTB2, capacity drops to 8.1 % and total bad outcomes to 14.3 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.core.events import OutcomeKind
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.experiments.common import RunResult
from repro.experiments.pool import RunSpec, run_many
from repro.workloads.catalog import DAYTRADER_DBSERV, WorkloadSpec

#: Display order of the Figure 4 bar segments.
BAR_SEGMENTS = (
    OutcomeKind.MISPREDICT_TAKEN_NOT_TAKEN,
    OutcomeKind.MISPREDICT_NOT_TAKEN_TAKEN,
    OutcomeKind.MISPREDICT_WRONG_TARGET,
    OutcomeKind.SURPRISE_COMPULSORY,
    OutcomeKind.SURPRISE_LATENCY,
    OutcomeKind.SURPRISE_CAPACITY,
)


@dataclass(frozen=True)
class Figure4Column:
    """One stacked bar: outcome fractions with/without the BTB2."""

    label: str
    fractions: dict[OutcomeKind, float]

    @property
    def total_bad(self) -> float:
        """Total bad-outcome fraction (the bar height)."""
        return sum(self.fractions[kind] for kind in BAR_SEGMENTS)


def run_figure4(
    spec: WorkloadSpec = DAYTRADER_DBSERV,
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
    jobs: int | None = None,
) -> tuple[Figure4Column, Figure4Column]:
    """The without/with BTB2 outcome columns of Figure 4 (cached batch)."""
    without, with_btb2 = run_many(
        [RunSpec(spec, ZEC12_CONFIG_1, timing, scale),
         RunSpec(spec, ZEC12_CONFIG_2, timing, scale)],
        jobs=jobs,
    )
    return (_column("No BTB2", without), _column("BTB2 enabled", with_btb2))


def _column(label: str, run: RunResult) -> Figure4Column:
    return Figure4Column(
        label=label,
        fractions={kind: run.fraction(kind) for kind in BAR_SEGMENTS},
    )


def render(columns: tuple[Figure4Column, Figure4Column]) -> str:
    """Paper-style text rendering of Figure 4."""
    without, with_btb2 = columns
    lines = [
        "Figure 4: bad branch outcomes on DayTrader DBServ (% of all outcomes)",
        f"{'category':34s} {'no BTB2':>9s} {'BTB2':>9s}",
    ]
    for kind in BAR_SEGMENTS:
        lines.append(
            f"{kind.value:34s} {100 * without.fractions[kind]:8.1f}% "
            f"{100 * with_btb2.fractions[kind]:8.1f}%"
        )
    lines.append(
        f"{'total bad outcomes':34s} {100 * without.total_bad:8.1f}% "
        f"{100 * with_btb2.total_bad:8.1f}%"
    )
    return "\n".join(lines)
