"""Cross-predictor ablation: the whole zoo over a shared workload slate.

The zoo exists to put the paper's two-level bulk-preload stack in context:
how much of its CPI story is the preload hierarchy, and how much would any
competent direction predictor recover?  This module runs every registered
predictor (:mod:`repro.predictors.registry`) over a fixed slate of
workloads — commercial synthetics *and* adversarial BTB probes — through
the ordinary cached batch pool, then renders one comparison table.

The default slate deliberately mixes regimes:

* two large-footprint commercial traces (where the paper stack's BTB2
  bulk preload is the differentiator),
* one moderate-footprint trace, and
* two adversarial probes (capacity and tracker thrash) engineered so the
  preload machinery is respectively saturated and defeated.

Entry points: :func:`ablation_results` (the measured grid),
:func:`render_ablation` (text table for the CLI), and
:func:`ablation_payload` (JSON-safe dict for the nightly CI artifact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import ZEC12_CONFIG_2, PredictorConfig
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.experiments.common import RunResult
from repro.experiments.pool import RunSpec, run_many
from repro.predictors.registry import predictor_info, predictor_names
from repro.workloads.catalog import workload_by_name

#: Default workload slate (resolved through :func:`workload_by_name`, so
#: adversarial families participate like any catalog entry).
ABLATION_WORKLOADS: tuple[str, ...] = (
    "TPF airline reservations",
    "Z/OS DayTrader DBServ",
    "zLinux Informix",
    "adversarial/btb-capacity",
    "adversarial/tracker-thrash",
)


@dataclass(frozen=True)
class AblationCell:
    """One (workload, predictor) measurement of the ablation grid."""

    workload: str
    predictor: str
    cpi: float
    bad_fraction: float
    instructions: int
    branches: int

    @property
    def accuracy(self) -> float:
        """Branch outcome accuracy (1 - bad outcome fraction)."""
        return 1.0 - self.bad_fraction


def _geomean(values: Sequence[float]) -> float:
    """Geometric mean (0.0 for an empty or non-positive sequence)."""
    positive = [value for value in values if value > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(value) for value in positive) / len(positive))


def ablation_results(
    workloads: Sequence[str] = ABLATION_WORKLOADS,
    predictors: Sequence[str] | None = None,
    config: PredictorConfig = ZEC12_CONFIG_2,
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[AblationCell]:
    """Measure the full (workload x predictor) grid, cache-first.

    Every cell is an ordinary :class:`~repro.experiments.pool.RunSpec`
    through :func:`~repro.experiments.pool.run_many`, so repeated ablation
    runs are free after the first and the grid parallelizes like any batch.
    Returns cells in (workload-major, predictor-minor) order.
    """
    if predictors is None:
        predictors = predictor_names()
    for name in predictors:
        predictor_info(name)  # fail fast on typos before any simulation
    specs = [
        RunSpec(workload=workload_by_name(workload), config=config,
                timing=timing, scale=scale, predictor=predictor)
        for workload in workloads
        for predictor in predictors
    ]
    runs = run_many(specs, jobs=jobs)
    return [
        AblationCell(
            workload=spec.workload.name,
            predictor=spec.predictor,
            cpi=run.cpi,
            bad_fraction=run.bad_fraction,
            instructions=run.instructions,
            branches=run.branches,
        )
        for spec, run in zip(specs, runs)
    ]


def _grid(cells: Sequence[AblationCell]) -> tuple[
        list[str], list[str], dict[tuple[str, str], AblationCell]]:
    """Unique workloads / predictors (first-seen order) plus a cell index."""
    workloads: list[str] = []
    predictors: list[str] = []
    index: dict[tuple[str, str], AblationCell] = {}
    for cell in cells:
        if cell.workload not in workloads:
            workloads.append(cell.workload)
        if cell.predictor not in predictors:
            predictors.append(cell.predictor)
        index[(cell.workload, cell.predictor)] = cell
    return workloads, predictors, index


def render_ablation(cells: Sequence[AblationCell]) -> str:
    """Markdown-style comparison table: CPI (accuracy) per grid cell.

    One row per workload, one column per predictor, plus a geometric-mean
    footer over CPI (the standard cross-workload summary statistic).
    """
    workloads, predictors, index = _grid(cells)
    header = "| workload | " + " | ".join(predictors) + " |"
    rule = "|---" * (len(predictors) + 1) + "|"
    lines = ["Ablation: CPI (accuracy) by predictor", "", header, rule]
    for workload in workloads:
        row = [workload]
        for predictor in predictors:
            cell = index.get((workload, predictor))
            row.append(
                f"{cell.cpi:.4f} ({cell.accuracy:.4f})"
                if cell is not None else "-")
        lines.append("| " + " | ".join(row) + " |")
    footer = ["geomean CPI"]
    for predictor in predictors:
        column = [index[(w, predictor)].cpi for w in workloads
                  if (w, predictor) in index]
        footer.append(f"{_geomean(column):.4f}" if column else "-")
    lines.append("| " + " | ".join(footer) + " |")
    return "\n".join(lines)


def ablation_payload(cells: Sequence[AblationCell]) -> dict:
    """JSON-safe artifact for CI: the grid plus per-predictor summaries."""
    workloads, predictors, index = _grid(cells)
    return {
        "schema": 1,
        "workloads": workloads,
        "predictors": predictors,
        "cells": [
            {
                "workload": cell.workload,
                "predictor": cell.predictor,
                "cpi": cell.cpi,
                "accuracy": cell.accuracy,
                "bad_outcome_fraction": cell.bad_fraction,
                "instructions": cell.instructions,
                "branches": cell.branches,
            }
            for cell in cells
        ],
        "geomean_cpi": {
            predictor: _geomean([
                index[(w, predictor)].cpi for w in workloads
                if (w, predictor) in index
            ])
            for predictor in predictors
        },
    }
