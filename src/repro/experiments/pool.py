"""Parallel experiment execution: batch run dispatch over a process pool.

Trace-driven predictor evaluation is embarrassingly parallel: every
(workload, config, timing, scale) run is independent, and the result cache
of :mod:`repro.experiments.common` is safe under concurrent writers
(atomic temp-file-then-rename publication, one file per fingerprint,
tolerant reads).  This module exploits that:

* :class:`RunSpec` names one run by its full cache-key inputs;
* :func:`run_many` takes a batch of specs, deduplicates them by cache
  fingerprint, serves what it can from the cache, and simulates only the
  misses — dispatched through a pluggable execution
  :class:`~repro.experiments.backends.Backend` (``serial``, ``process``);
* :func:`parallel_map` is the generic sibling for non-``RunResult`` work
  (e.g. trace statistics for Table 4);
* a session :class:`ExecutionLog` records per-run wall time, throughput
  and worker attribution so ``run_all`` can summarize how the batch
  actually executed.

Specs carrying a checkpoint-parallel plan (``RunSpec.parallel``) are
executed in the orchestrating process, not shipped to a pool worker: such
a run performs its *own* fan-out (:func:`repro.sampling.run_parallel`),
and a daemonized pool worker cannot spawn the children it needs.

Worker count resolution (everywhere a ``jobs`` argument appears):
an explicit positive integer wins; ``None`` defers to the ``REPRO_JOBS``
environment variable; absent both, runs are serial.  ``0`` or a negative
value means "one worker per CPU".

Workers re-check the cache before simulating, so two processes racing on
the same fingerprint at worst duplicate one simulation — they never
corrupt the cache or return different scientific payloads.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from repro.audit import audit_from_env
from repro.core.config import PredictorConfig
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.experiments.backends import Backend, resolve_backend
from repro.experiments.common import (
    RunResult,
    load_cached_run,
    run_fingerprint,
    run_workload,
)
from repro.sampling import ParallelPlan, SamplingPlan
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.monitor import StatusBoard, shutdown_sweep
from repro.workloads.catalog import WorkloadSpec, default_scale

#: Environment variable supplying the default worker count for batch runs.
JOBS_ENV = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class RunSpec:
    """One requested simulation run, by its full cache-key inputs."""

    workload: WorkloadSpec
    config: PredictorConfig
    timing: TimingParams = DEFAULT_TIMING
    scale: float | None = None
    #: Run under a strict :class:`repro.audit.Auditor` (``None`` defers to
    #: the ``REPRO_AUDIT`` environment variable).  Not part of the cache
    #: fingerprint: audited results are identical to unaudited ones, but
    #: audited runs skip cache *reads* so the checks actually execute.
    audit: bool | None = None
    #: Interval-sampling plan; ``None`` runs full detail.  Part of the
    #: fingerprint — sampled estimates cache separately from full runs.
    sampling: SamplingPlan | None = None
    #: Checkpoint-store directory for sampled runs (not fingerprinted:
    #: checkpoints change wall time, never results).
    checkpoint_dir: str | None = None
    #: Simulation engine (:data:`repro.engine.batched.ENGINE_MODES`).
    #: Part of the fingerprint when non-default, so cached results never
    #: mix across engines.
    engine_mode: str = "object"
    #: Checkpoint-parallel plan; ``None`` runs serially.  Part of the
    #: fingerprint (with the resolved backend name): a parallel run's
    #: cache slot is distinct from its serial twin's, even though exact
    #: mode is verified bit-identical.
    parallel: ParallelPlan | None = None
    #: Execution backend name for the parallel fan-out (``None`` defers to
    #: ``REPRO_BACKEND``/``process``).  Fingerprinted only alongside
    #: ``parallel``.
    backend: str | None = None
    #: Predictor registry name (:mod:`repro.predictors.registry`).  Part of
    #: the fingerprint when not the paper stack — each zoo member gets its
    #: own cache slot.
    predictor: str = "paper"

    def resolved_scale(self) -> float:
        """The concrete scale (``None`` defers to ``REPRO_SCALE``/1.0)."""
        return self.scale if self.scale is not None else default_scale()

    def resolved_audit(self) -> bool:
        """The concrete audit switch (``None`` defers to ``REPRO_AUDIT``)."""
        return self.audit if self.audit is not None else audit_from_env()

    def fingerprint(self) -> str:
        """Result-cache fingerprint of this run."""
        return run_fingerprint(
            self.workload, self.config, self.timing, self.resolved_scale(),
            self.sampling, engine_mode=self.engine_mode,
            parallel=self.parallel, backend=self.backend,
            predictor=self.predictor,
        )


def effective_jobs(jobs: int | None = None) -> int:
    """Resolve a ``jobs`` argument to a concrete worker count (>= 1).

    Precedence: explicit argument, then ``REPRO_JOBS``, then 1 (serial).
    Zero or negative (from either source) means one worker per CPU.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"${JOBS_ENV} must be an integer worker count, got {raw!r}"
            ) from None
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass
class ExecutionLog:
    """Accumulated observability for every batch executed this session."""

    cache_hits: int = 0
    simulated: int = 0
    #: Runs that skipped the cache *read* because they were audited — they
    #: count under ``simulated`` too, but the cache-hit rate must not treat
    #: them as misses (they never asked).
    audit_bypassed: int = 0
    simulated_instructions: int = 0
    simulated_seconds: float = 0.0
    batch_seconds: float = 0.0
    batches: int = 0
    max_workers: int = 1
    #: worker name -> (runs, simulated seconds).
    workers: dict[str, tuple[int, float]] = field(default_factory=dict)
    #: Host-side report phase -> wall seconds (``record_phase``).
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def record_batch(self, results: Sequence[RunResult], hits: int,
                     elapsed: float, jobs: int, bypassed: int = 0) -> None:
        """Fold one :func:`run_many` batch into the session totals."""
        self.batches += 1
        self.cache_hits += hits
        self.audit_bypassed += bypassed
        self.batch_seconds += elapsed
        self.max_workers = max(self.max_workers, jobs)
        for run in results:
            self.simulated += 1
            self.simulated_instructions += run.instructions
            self.simulated_seconds += run.wall_seconds
            runs, seconds = self.workers.get(run.worker or "unknown", (0, 0.0))
            self.workers[run.worker or "unknown"] = (
                runs + 1, seconds + run.wall_seconds
            )

    @property
    def requested(self) -> int:
        """Unique runs requested across all batches (hits + simulations)."""
        return self.cache_hits + self.simulated

    @property
    def cache_eligible(self) -> int:
        """Runs that actually consulted the cache (audited ones did not)."""
        return self.requested - self.audit_bypassed

    def record_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of host wall time under phase ``name``."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    @property
    def throughput(self) -> float:
        """Aggregate simulated instructions per simulated second."""
        if self.simulated_seconds <= 0:
            return 0.0
        return self.simulated_instructions / self.simulated_seconds

    def reset(self) -> None:
        """Zero the log (start of a fresh report run)."""
        self.__dict__.update(ExecutionLog().__dict__)


#: Session-wide log; ``run_all`` resets it at the start of a report and
#: renders it at the end (:func:`repro.metrics.report.render_run_summary`).
session_log = ExecutionLog()


def _simulate_spec(item: tuple[WorkloadSpec, PredictorConfig, TimingParams,
                               float, bool, SamplingPlan | None,
                               str | None, str, ParallelPlan | None,
                               str | None, str]) -> RunResult:
    """Pool worker body: one cached simulation run.

    Must stay a module-level function so it pickles under every
    ``multiprocessing`` start method.  ``run_workload`` re-checks the cache
    first (audited runs excepted), so a run another worker already
    published is not repeated.
    """
    (spec, config, timing, scale, audit, sampling, checkpoint_dir, engine,
     parallel, backend, predictor) = item
    return run_workload(spec, config, timing, scale, audit=audit,
                        sampling=sampling, checkpoint_dir=checkpoint_dir,
                        engine_mode=engine, parallel=parallel,
                        backend=backend, predictor=predictor)


def _spec_item(spec: RunSpec) -> tuple:
    """The picklable ``_simulate_spec`` argument for one spec."""
    return (spec.workload, spec.config, spec.timing, spec.resolved_scale(),
            spec.resolved_audit(), spec.sampling, spec.checkpoint_dir,
            spec.engine_mode, spec.parallel, spec.backend, spec.predictor)


@dataclass
class _TimedRun:
    """One dispatched run plus its queue-wait and execute timings.

    ``queue_seconds`` is measured against the orchestrator's enqueue
    timestamp with ``time.time()`` on both sides — the only clock that is
    meaningful across a process boundary (``perf_counter`` epochs are
    per-process).
    """

    run: RunResult
    queue_seconds: float
    execute_seconds: float


def _timed_simulate(item: tuple[float, tuple]) -> _TimedRun:
    """Pool worker body wrapping :func:`_simulate_spec` with timings."""
    enqueued, spec_item = item
    begun = time.time()
    started = time.perf_counter()
    run = _simulate_spec(spec_item)
    return _TimedRun(run, max(0.0, begun - enqueued),
                     time.perf_counter() - started)


def _record_dispatch(backend_name: str, timed: Sequence[_TimedRun],
                     jobs: int, elapsed: float) -> None:
    """Fold one batch's dispatch timings into the session registry.

    Feeds the ``run_many`` session summary: queue wait vs execute time per
    backend, and the busy/capacity second counters utilization is computed
    from (busy = worker execute seconds, capacity = workers x batch wall).
    """
    if not timed:
        return
    queue = REGISTRY.histogram(
        "repro_dispatch_queue_seconds",
        "seconds a run waited between enqueue and worker pickup",
        ("backend",),
    )
    execute = REGISTRY.histogram(
        "repro_dispatch_execute_seconds",
        "seconds a worker spent executing one run",
        ("backend",),
    )
    busy = REGISTRY.counter(
        "repro_pool_busy_seconds_total",
        "worker seconds spent executing runs",
        ("backend",),
    )
    for entry in timed:
        queue.observe(entry.queue_seconds, backend=backend_name)
        execute.observe(entry.execute_seconds, backend=backend_name)
        busy.inc(entry.execute_seconds, backend=backend_name)
    REGISTRY.counter(
        "repro_pool_capacity_seconds_total",
        "worker-seconds of pool capacity over batch wall time",
        ("backend",),
    ).inc(jobs * elapsed, backend=backend_name)


def run_many(
    specs: Iterable[RunSpec],
    jobs: int | None = None,
    log: ExecutionLog | None = None,
    backend: "str | Backend | None" = None,
) -> list[RunResult]:
    """Execute a batch of runs, deduplicated and cache-first.

    Returns one :class:`RunResult` per input spec, in input order
    (duplicate specs share the single result object).  Cache hits are
    served without simulation; misses dispatch through ``backend``
    (default: ``$REPRO_BACKEND``/``process``) with at most ``jobs`` in
    flight — except specs carrying a :class:`ParallelPlan`, which run in
    this process because their own interval fan-out needs to spawn
    workers, and a daemonized pool child cannot.  Every batch is folded
    into ``log`` (default: the module :data:`session_log`).
    """
    ordered = list(specs)
    jobs = effective_jobs(jobs)
    log = session_log if log is None else log
    chosen = resolve_backend(backend)
    started = time.perf_counter()

    # Deduplicate by fingerprint, preserving first-seen order.
    keys = [spec.fingerprint() for spec in ordered]
    unique: dict[str, RunSpec] = {}
    for key, spec in zip(keys, ordered):
        unique.setdefault(key, spec)

    # Cache-first: only misses are dispatched.  Audited specs never read
    # the cache (a hit would silently skip every invariant check).
    board = StatusBoard.from_env()
    results: dict[str, RunResult] = {}
    for key, spec in unique.items():
        if spec.resolved_audit():
            continue
        cached = load_cached_run(key)
        if cached is not None:
            results[key] = cached
            REGISTRY.counter(
                "repro_runs_total", "workload runs by result", ("result",),
            ).inc(result="cached")
            if board is not None:
                board.beat(f"{spec.workload.name}/{spec.config.name}",
                           "cached", instructions=cached.instructions,
                           seconds=cached.wall_seconds)
    misses = [(key, spec) for key, spec in unique.items() if key not in results]
    hits = len(results)
    bypassed = sum(1 for spec in unique.values() if spec.resolved_audit())

    pooled = [(key, spec) for key, spec in misses if spec.parallel is None]
    local = [(key, spec) for key, spec in misses if spec.parallel is not None]
    if board is not None:
        for _, spec in misses:
            board.beat(f"{spec.workload.name}/{spec.config.name}", "queued")

    items = [(time.time(), _spec_item(spec)) for _, spec in pooled]
    in_process = len(items) <= 1 or jobs == 1
    miss_labels = [f"{spec.workload.name}/{spec.config.name}"
                   for _, spec in misses]
    with shutdown_sweep(board, miss_labels):
        if in_process:
            timed = [_timed_simulate(item) for item in items]
        else:
            timed = chosen.map(_timed_simulate, items, min(jobs, len(items)))
        for (key, _), entry in zip(pooled, timed):
            results[key] = entry.run
        locally = []
        for key, spec in local:
            entry = _timed_simulate((time.time(), _spec_item(spec)))
            locally.append(entry)
            results[key] = entry.run

    simulated = [entry.run for entry in timed + locally]
    elapsed = time.perf_counter() - started
    _record_dispatch("local" if in_process else chosen.name,
                     timed, jobs, elapsed)
    # Parallel-plan specs execute in this process (their own fan-out needs
    # to spawn workers), whatever backend the batch chose.
    _record_dispatch("local", locally, 1, elapsed)
    log.record_batch(simulated, hits, elapsed, jobs, bypassed=bypassed)
    return [results[key] for key in keys]


def parallel_map(
    function: Callable[[T], R],
    items: Sequence[T],
    jobs: int | None = None,
    backend: "str | Backend | None" = None,
) -> list[R]:
    """Order-preserving map through an execution backend.

    ``function`` must be a picklable module-level callable and ``items``
    picklable values.  Used for embarrassingly parallel non-simulation
    work, e.g. per-workload trace statistics in Table 4.  ``backend``
    resolves like everywhere else (``$REPRO_BACKEND``/``process``); the
    process backend degrades to in-process execution when ``jobs`` is 1
    or a single item is passed.
    """
    items = list(items)
    jobs = min(effective_jobs(jobs), max(1, len(items)))
    return resolve_backend(backend).map(function, items, jobs)
