"""Figure 3 — benefit of the BTB2 on (proxied) zEC12 hardware.

Paper reference points: WASDB+CBW2 on one core gains 5.3 % system
performance on hardware vs 8.5 % in the model; Web CICS/DB2 on four cores
gains 3.4 %.  The proxy (see :mod:`repro.engine.multicore`) reproduces the
structure: hardware-proxy gain < model gain, and the 4-core run showing a
smaller (but positive) gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ZEC12_CONFIG_1, ZEC12_CONFIG_2
from repro.engine.multicore import run_multicore, system_performance_gain
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.experiments.pool import RunSpec, run_many
from repro.metrics.counters import cpi_improvement
from repro.workloads.catalog import WASDB_CBW2, WEB_CICS_DB2, WorkloadSpec


@dataclass(frozen=True)
class Figure3Row:
    """One workload's hardware-proxy result."""

    workload: str
    cores: int
    hardware_gain_percent: float
    model_gain_percent: float | None


def run_figure3(
    timing: TimingParams = DEFAULT_TIMING,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[Figure3Row]:
    """The two hardware measurements of Figure 3.

    The single-core model runs go through the shared result cache (and the
    ``jobs`` worker pool); the multi-core hardware proxy is simulated
    directly — its contended-cache coupling makes the runs non-cacheable
    per (workload, config) fingerprint.
    """
    rows = []
    # WASDB+CBW2, single core: hardware proxy vs the (infinite-L2) model.
    rows.append(_one(WASDB_CBW2, cores=1, timing=timing, scale=scale,
                     include_model=True, jobs=jobs))
    # Web CICS/DB2, four cores.
    rows.append(_one(WEB_CICS_DB2, cores=4, timing=timing, scale=scale,
                     include_model=False, jobs=jobs))
    return rows


def _one(
    spec: WorkloadSpec,
    cores: int,
    timing: TimingParams,
    scale: float | None,
    include_model: bool,
    jobs: int | None = None,
) -> Figure3Row:
    records = spec.trace(scale)
    base = run_multicore(records, ZEC12_CONFIG_1, cores=cores, timing=timing)
    with_btb2 = run_multicore(records, ZEC12_CONFIG_2, cores=cores, timing=timing)
    model_gain = None
    if include_model:
        model_base, model_btb2 = run_many(
            [RunSpec(spec, ZEC12_CONFIG_1, timing, scale),
             RunSpec(spec, ZEC12_CONFIG_2, timing, scale)],
            jobs=jobs,
        )
        model_gain = cpi_improvement(model_base.cpi, model_btb2.cpi)
    return Figure3Row(
        workload=spec.name,
        cores=cores,
        hardware_gain_percent=system_performance_gain(base, with_btb2),
        model_gain_percent=model_gain,
    )


def render(rows: list[Figure3Row]) -> str:
    """Paper-style text rendering of Figure 3."""
    lines = ["Figure 3: benefit of BTB2 on zEC12 hardware (proxy)"]
    for row in rows:
        model = (
            f"  (model: {row.model_gain_percent:.2f}%)"
            if row.model_gain_percent is not None
            else ""
        )
        lines.append(
            f"{row.workload:34s} {row.cores} core(s): "
            f"{row.hardware_gain_percent:6.2f}%{model}"
        )
    return "\n".join(lines)
