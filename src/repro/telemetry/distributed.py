"""Cross-process telemetry: per-worker relay shards and the aggregator.

PR 3's telemetry pillars are strictly per-process, so worker-side spans
and metrics vanished the moment simulation fanned out over
:class:`~repro.experiments.backends.ProcessBackend` or
:func:`~repro.sampling.parallel.run_parallel`.  This module carries them
home:

* A :class:`TelemetryRelay` names a shared directory where each worker
  writes its telemetry as it happens: one JSONL **event shard** per
  (run, worker, slice) — the same schema-valid line format
  :meth:`~repro.telemetry.tracer.Tracer.write_jsonl` produces, streamed so
  a crashed worker still leaves a readable prefix — plus one JSON
  **metrics snapshot** (:mod:`repro.telemetry.metrics`) written at session
  close.  Workers open a session via :meth:`TelemetryRelay.worker_session`
  (explicitly, or from the ``REPRO_RELAY`` environment variable that
  pool workers inherit).
* :func:`aggregate` merges every shard in the directory into one
  coherent picture: a Chrome ``trace_event`` timeline with one **pid lane
  per worker** (orchestrator on pid 0, workers on pid 1..N, tracker tids
  preserved within each lane), a merged JSONL stream annotated with the
  producing worker, and one merged :class:`MetricsRegistry` whose totals
  equal the serial run's.  Reading is tolerant, mirroring
  ``CheckpointStore.skipped``: a truncated or corrupt shard line (a
  crashed worker mid-write) is skipped and reported on the
  :attr:`AggregateResult.skipped` ledger, never raised.

Timestamps inside a lane are stable-sorted before export: BTB2 row events
carry scheduled *future* cycles (the hub's ``now`` watermark is a max for
that reason), so raw emission order is not globally monotone.  The sort is
stable and metadata-first, which keeps every ``B``/``E`` span pair balanced
— span events are stamped with the monotone decode clock.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from repro.telemetry.events import validate_event
from repro.telemetry.hub import Telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer

#: Environment variable naming the relay directory.  Set by the
#: orchestrator before fanning out; pool workers inherit it and open
#: their sessions from :meth:`TelemetryRelay.from_env`.
RELAY_ENV = "REPRO_RELAY"

#: Version of the relay directory layout (manifest + shard naming).
RELAY_SCHEMA = 1

#: The orchestrator's own lane name (always pid 0 in the merged trace).
ORCHESTRATOR = "orchestrator"

_UNSAFE = re.compile(r"[^A-Za-z0-9_.]+")


def _safe(name: str) -> str:
    """A filesystem- and parse-safe token for worker/run names."""
    return _UNSAFE.sub("_", name) or "anon"


@dataclass(frozen=True)
class ShardInfo:
    """One relay shard as the aggregator placed it in the merged trace."""

    file: str
    worker: str
    slice: int
    #: Merged-trace process lane (0 = orchestrator).
    pid: int
    #: Schema-valid events read from the shard.
    events: int


class WorkerSession:
    """One worker's open relay session: a streamed tracer plus metrics.

    ``telemetry`` is a hub whose tracer streams every event to the shard
    file as it is emitted (buffer disabled — a worker must not hold a
    million events in memory); ``registry`` collects this worker's
    metrics and is written as a JSON snapshot at :meth:`close`.
    """

    def __init__(self, relay: "TelemetryRelay", worker: str,
                 slice_index: int) -> None:
        self.relay = relay
        self.worker = _safe(worker)
        self.slice_index = slice_index
        self._path = relay.shard_path(worker, slice_index)
        self._stream: IO[str] | None = self._path.open("w", buffering=1)
        #: Buffer disabled (limit=0): the stream receives every event.
        self.telemetry = Telemetry(tracer=Tracer(stream=self._stream,
                                                 limit=0))
        self.registry = MetricsRegistry()

    def close(self) -> None:
        """Flush and close the shard; publish the metrics snapshot."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        if self.registry.names():
            target = self.relay.metrics_path(self.worker, self.slice_index)
            scratch = target.with_suffix(f".tmp{os.getpid()}")
            scratch.write_text(
                json.dumps(self.registry.snapshot()) + "\n")
            os.replace(scratch, target)

    def __enter__(self) -> "WorkerSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TelemetryRelay:
    """A shared directory where distributed-run telemetry accumulates."""

    def __init__(self, directory, run_id: str = "run") -> None:
        self.directory = Path(directory)
        self.run_id = _safe(run_id)
        self.directory.mkdir(parents=True, exist_ok=True)

    @classmethod
    def from_env(cls) -> "TelemetryRelay | None":
        """The relay named by ``$REPRO_RELAY``, or ``None`` when unset.

        The run id comes from the directory's manifest when the
        orchestrator wrote one; otherwise the default.
        """
        directory = os.environ.get(RELAY_ENV, "").strip()
        if not directory:
            return None
        manifest = read_manifest(Path(directory))
        run_id = manifest.get("run", "run") if manifest else "run"
        return cls(directory, run_id=run_id)

    def activate(self) -> None:
        """Export this relay's directory as ``$REPRO_RELAY``.

        Subsequently spawned worker processes (which inherit the
        environment) open their sessions against it automatically.
        """
        os.environ[RELAY_ENV] = str(self.directory)

    def shard_path(self, worker: str, slice_index: int) -> Path:
        """The event-shard file for one (run, worker, slice)."""
        return self.directory / (
            f"shard-{self.run_id}-{_safe(worker)}-s{slice_index:04d}.jsonl"
        )

    def metrics_path(self, worker: str, slice_index: int) -> Path:
        """The metrics-snapshot file for one (run, worker, slice)."""
        return self.directory / (
            f"metrics-{self.run_id}-{_safe(worker)}-s{slice_index:04d}.json"
        )

    def worker_session(self, worker: str, slice_index: int) -> WorkerSession:
        """Open this worker's streamed telemetry session."""
        return WorkerSession(self, worker, slice_index)

    def write_manifest(self, shards: list[str]) -> Path:
        """Record the shard files a complete run is expected to leave.

        The aggregator reports any listed-but-absent shard under
        ``missing`` so a silently dead worker cannot pass for a complete
        merge.  Written atomically (last writer wins).
        """
        payload = {"relay_schema": RELAY_SCHEMA, "run": self.run_id,
                   "expected": sorted(shards)}
        target = self.directory / "manifest.json"
        scratch = target.with_suffix(f".tmp{os.getpid()}")
        scratch.write_text(json.dumps(payload, indent=1) + "\n")
        os.replace(scratch, target)
        return target


def read_manifest(directory: Path) -> dict | None:
    """The relay manifest, or ``None`` when absent/unreadable."""
    try:
        payload = json.loads((Path(directory) / "manifest.json").read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def read_shard(path: Path) -> tuple[list[dict], list[tuple[Path, str]]]:
    """Events of one shard file, tolerantly.

    Returns ``(events, skipped)``: schema-valid events in emission order,
    plus a ``(path, reason)`` ledger entry per unreadable or invalid line
    — the same skip-and-report contract as ``CheckpointStore.skipped``.
    A truncated final line (crashed worker mid-write) degrades to a
    ledger entry, never an error.
    """
    skipped: list[tuple[Path, str]] = []
    try:
        text = path.read_text()
    except OSError as error:
        return [], [(path, f"unreadable: {error}")]
    events: list[dict] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except ValueError:
            skipped.append((path, f"line {number}: truncated/invalid JSON"))
            continue
        problems = validate_event(event)
        if problems:
            skipped.append((path, f"line {number}: {problems[0]}"))
            continue
        events.append(event)
    return events, skipped


def _parse_shard_name(name: str, run_id: str | None) -> tuple[str, int]:
    """``(worker, slice)`` parsed from one ``shard-*.jsonl`` filename."""
    stem = name[len("shard-"):-len(".jsonl")]
    if run_id and stem.startswith(f"{_safe(run_id)}-"):
        stem = stem[len(_safe(run_id)) + 1:]
    body, _, index = stem.rpartition("-s")
    try:
        return body or stem, int(index)
    except ValueError:
        return stem, 0


@dataclass
class AggregateResult:
    """Everything one :func:`aggregate` pass merged from a relay."""

    run_id: str | None
    shards: list[ShardInfo]
    #: Merged JSONL events, each annotated with its producing ``worker``.
    events: list[dict]
    #: Merged Chrome ``trace_event`` object (one pid lane per worker,
    #: top-level ``metadata`` accounting for every shard).
    trace: dict
    #: Merged metrics across every worker snapshot.
    registry: MetricsRegistry
    #: Skip-and-report ledger: (path, reason) per tolerated problem.
    skipped: list[tuple[Path, str]] = field(default_factory=list)
    #: Manifest-expected shard files that never appeared.
    missing: list[str] = field(default_factory=list)

    @property
    def workers(self) -> list[str]:
        """Distinct worker lane names, orchestrator first."""
        names: list[str] = []
        for shard in self.shards:
            if shard.worker not in names:
                names.append(shard.worker)
        return names

    def write_jsonl(self, path) -> int:
        """Write the merged, worker-annotated JSONL; returns the count."""
        path = Path(path)
        with path.open("w") as stream:
            for event in self.events:
                stream.write(json.dumps(event) + "\n")
        return len(self.events)

    def write_chrome(self, path) -> int:
        """Write the merged Chrome trace; returns the trace-event count."""
        Path(path).write_text(json.dumps(self.trace))
        return len(self.trace["traceEvents"])

    def describe(self) -> str:
        """One-line human description of the merge."""
        return (f"merged {len(self.shards)} shard(s) from "
                f"{len(self.workers)} worker lane(s): "
                f"{len(self.events):,} events, "
                f"{len(self.registry.names())} metric(s), "
                f"{len(self.skipped)} skipped, {len(self.missing)} missing")


def _lane_order(found: list[tuple[str, str, int]]) -> list[tuple[str, str, int]]:
    """Shard files ordered into lanes: orchestrator first, then by slice."""
    orchestrator = [f for f in found if f[1] == ORCHESTRATOR]
    workers = sorted((f for f in found if f[1] != ORCHESTRATOR),
                     key=lambda f: (f[2], f[1], f[0]))
    return orchestrator + workers


def aggregate(directory, run_id: str | None = None) -> AggregateResult:
    """Merge every shard under ``directory`` into one coherent picture.

    Lane assignment: the orchestrator shard (worker name
    :data:`ORCHESTRATOR`) keeps pid 0; worker shards get pid 1..N in
    slice order, each carrying its own core/tracker tid structure.  Events
    within each (pid, tid) lane are stable-sorted by timestamp
    (metadata first) so per-lane time is monotone — see the module
    docstring for why emission order is not.

    Reading is tolerant end to end: unreadable shards, truncated lines,
    schema-invalid events, and corrupt metrics snapshots all degrade to
    :attr:`AggregateResult.skipped` entries.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    if run_id is None and manifest:
        run_id = manifest.get("run")

    found = sorted(directory.glob("shard-*.jsonl"))
    parsed = []
    for path in found:
        worker, slice_index = _parse_shard_name(path.name, run_id)
        parsed.append((path.name, worker, slice_index))

    missing: list[str] = []
    if manifest and isinstance(manifest.get("expected"), list):
        present = {name for name, _, _ in parsed}
        missing = [name for name in manifest["expected"]
                   if isinstance(name, str) and name not in present]

    skipped: list[tuple[Path, str]] = []
    shards: list[ShardInfo] = []
    merged_events: list[dict] = []
    trace_events: list[dict] = []
    for pid, (name, worker, slice_index) in enumerate(_lane_order(parsed)):
        events, bad = read_shard(directory / name)
        skipped.extend(bad)
        lane = worker if worker == ORCHESTRATOR else f"{worker} (slice {slice_index})"
        tracer = Tracer()
        tracer.events = events
        chrome = tracer.to_chrome_trace(process_name=lane)
        for event in chrome["traceEvents"]:
            event["pid"] = pid
            trace_events.append(event)
        for event in events:
            merged_events.append({**event, "worker": worker})
        shards.append(ShardInfo(file=name, worker=worker,
                                slice=slice_index, pid=pid,
                                events=len(events)))

    # Stable per-lane time sort: metadata first, then ascending ts;
    # equal-ts events keep emission order so B/E pairs stay balanced.
    trace_events.sort(
        key=lambda e: (e.get("pid", 0), e.get("tid", 0),
                       0 if e.get("ph") == "M" else 1,
                       float(e.get("ts", 0.0)))
    )

    registry = MetricsRegistry()
    for path in sorted(directory.glob("metrics-*.json")):
        try:
            payload = json.loads(path.read_text())
            registry.merge_snapshot(payload)
        except (OSError, ValueError) as error:
            skipped.append((path, f"{type(error).__name__}: {error}"))

    trace: dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {
            "relay_schema": RELAY_SCHEMA,
            "run": run_id,
            "workers": [s.worker for s in shards],
            "shards": [
                {"file": s.file, "worker": s.worker, "slice": s.slice,
                 "pid": s.pid, "events": s.events}
                for s in shards
            ],
            "missing": missing,
            "skipped": [[str(path), reason] for path, reason in skipped],
        },
    }
    return AggregateResult(run_id=run_id, shards=shards,
                           events=merged_events, trace=trace,
                           registry=registry, skipped=skipped,
                           missing=missing)
