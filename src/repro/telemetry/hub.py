"""The :class:`Telemetry` hub: one object the instrumented components call.

Mirrors the :class:`repro.audit.Auditor` wiring exactly: every
instrumented component (:class:`~repro.engine.simulator.Simulator`,
:class:`~repro.core.search.LookaheadSearch`,
:class:`~repro.btb.storage.BranchTargetBuffer`,
:class:`~repro.preload.engine.PreloadEngine`,
:class:`~repro.preload.transfer.TransferEngine`) carries a ``telemetry``
attribute defaulting to ``None``, and every hook site is a single
attribute test — zero per-event cost, zero closure allocations, when
telemetry is off.  Passing a :class:`Telemetry` to the simulator wires it
into the whole tree (:meth:`attach`).

The hub multiplexes three independent pillars, each optional:

* :class:`~repro.telemetry.tracer.Tracer` — typed lifecycle events;
* :class:`~repro.telemetry.sampler.Sampler` — fixed-interval snapshots;
* :class:`~repro.telemetry.profiler.BranchProfiler` — per-static-branch
  outcome/penalty attribution.

BTB structures have no clock of their own, so install/evict events are
stamped with the hub's decode-cycle watermark (``now``), refreshed each
step and at every transfer completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.events import EventKind
from repro.telemetry.profiler import BranchProfiler
from repro.telemetry.sampler import Sampler
from repro.telemetry.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import MissReport, OutcomeKind, Prediction
    from repro.engine.simulator import Simulator
    from repro.trace.record import TraceRecord


class Telemetry:
    """Tracing, sampling and profiling for one simulator, behind one hub."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        sampler: Sampler | None = None,
        profiler: BranchProfiler | None = None,
    ) -> None:
        self.tracer = tracer
        self.sampler = sampler
        self.profiler = profiler
        #: Decode-clock watermark: the timestamp for clock-less components.
        self.now = 0.0

    @classmethod
    def full(cls, sample_interval: int = 1024) -> "Telemetry":
        """A hub with all three pillars enabled."""
        return cls(tracer=Tracer(), sampler=Sampler(sample_interval),
                   profiler=BranchProfiler())

    # -- wiring ------------------------------------------------------------

    def attach(self, simulator: "Simulator") -> None:
        """Wire this hub into ``simulator`` and its components."""
        simulator.search.telemetry = self
        simulator.hierarchy.btb1.telemetry = self
        if simulator.hierarchy.btbp is not None:
            simulator.hierarchy.btbp.telemetry = self
        if simulator.btb2 is not None:
            simulator.btb2.telemetry = self
        if simulator.preload is not None:
            simulator.preload.telemetry = self
            simulator.preload.transfer.telemetry = self
        if self.sampler is not None:
            # Cycle-0 baseline sample, before the first instruction.
            self.sampler.sample(simulator)

    # -- hooks: simulator --------------------------------------------------

    def after_step(self, simulator: "Simulator",
                   record: "TraceRecord") -> None:
        """Per-instruction tick: clock watermark + periodic sampling."""
        self.now = simulator._cycle
        if self.sampler is not None:
            self.sampler.maybe_sample(simulator)

    def after_finish(self, simulator: "Simulator") -> None:
        """End of run: one final sample so the series covers the tail."""
        self.now = simulator._cycle
        if self.sampler is not None:
            self.sampler.sample(simulator)

    def on_fetch(self, cycle: float, address: int, result: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.FETCH.value,
                             address=address, result=result)

    def on_outcome(self, cycle: float, record: "TraceRecord",
                   kind: "OutcomeKind", penalty: float) -> None:
        """A dynamic branch resolved and was classified (Figure 4)."""
        if self.profiler is not None:
            self.profiler.record(record.address, kind, penalty, record.taken)
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.OUTCOME.value,
                             address=record.address, outcome=kind.value,
                             penalty=penalty)

    def on_surprise(self, cycle: float, address: int, classified: str,
                    guess_taken: bool) -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.SURPRISE.value, address=address,
                             **{"class": classified,
                                "guess_taken": guess_taken})

    def on_resteer(self, cycle: float, address: int, cause: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.RESTEER.value,
                             address=address, cause=cause)

    def on_context_switch(self, cycle: float, address: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.CONTEXT_SWITCH.value,
                             address=address)

    def on_interval(self, cycle: float, index: int, record: int,
                    phase: str) -> None:
        """Sampled-simulation interval boundary.

        ``phase`` is ``warming``/``warmup``/``measure``/``end`` from the
        sampled runner, plus ``produce`` from the checkpoint-parallel
        producer pass (one event per boundary state snapshotted).
        """
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.INTERVAL.value,
                             index=index, record=record, phase=phase)

    # -- hooks: search pipeline --------------------------------------------

    def on_prediction(self, cycle: float, prediction: "Prediction") -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.LOOKUP.value,
                             address=prediction.branch_address,
                             level=prediction.level.value,
                             taken=prediction.taken,
                             used_pht=prediction.used_pht,
                             used_ctb=prediction.used_ctb)

    def on_miss_report(self, report: "MissReport") -> None:
        if self.tracer is not None:
            self.tracer.emit(report.cycle, EventKind.MISS_PERCEIVED.value,
                             address=report.search_address)

    # -- hooks: preload engine ---------------------------------------------

    def on_tracker_allocate(self, cycle: float, slot: int, block: int,
                            state: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.TRACKER_ALLOCATE.value,
                             tracker=slot, block=block, state=state)

    def on_tracker_arm(self, cycle: float, slot: int, block: int,
                       mode: str, rows: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.TRACKER_ARM.value,
                             tracker=slot, block=block, mode=mode, rows=rows)

    def on_tracker_expire(self, cycle: float, slot: int, block: int,
                          reason: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.TRACKER_EXPIRE.value,
                             tracker=slot, block=block, reason=reason)

    def on_btb2_search_start(self, cycle: float, slot: int, sector: int,
                             rows: int, priority: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.BTB2_SEARCH_START.value,
                             tracker=slot, sector=sector, rows=rows,
                             priority=priority)

    def on_transfer_batch(self, cycle: float, slot: int, block: int,
                          rows: int, entries: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.TRANSFER_BATCH.value,
                             tracker=slot, block=block, rows=rows,
                             entries=entries)

    # -- hooks: transfer engine --------------------------------------------

    def on_btb2_row(self, cycle: float, row: int, hits: int) -> None:
        self.now = max(self.now, cycle)
        if self.tracer is not None:
            self.tracer.emit(cycle, EventKind.BTB2_ROW.value,
                             row=row, hits=hits)

    # -- hooks: BTB storage ------------------------------------------------

    def on_install(self, btb_name: str, address: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.now, EventKind.INSTALL.value,
                             btb=btb_name, address=address)

    def on_evict(self, btb_name: str, address: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.now, EventKind.EVICT.value,
                             btb=btb_name, address=address)
