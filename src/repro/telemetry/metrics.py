"""Typed, mergeable metrics: counters, gauges, fixed-bucket histograms.

The missing half of the telemetry layer: :mod:`repro.telemetry.tracer`
answers "what happened, and when?", this module answers "how much, how
often, how long?" — in a form that survives process boundaries.  Every
metric is mergeable: two workers each hold a private
:class:`MetricsRegistry`, serialize it as a JSON snapshot
(:meth:`MetricsRegistry.snapshot`), and the orchestrator folds the shards
into one registry (:meth:`MetricsRegistry.merge_snapshot`) whose totals
equal a single-process run's.  Merge semantics per type:

* **counter** — monotone float; merge is addition (associative and
  commutative, pinned by property tests);
* **gauge** — last-known value; merge takes the max (the only associative
  and commutative choice that needs no timestamps);
* **histogram** — fixed bucket bounds, per-bucket counts plus ``sum`` and
  ``count``; merge is bucketwise addition and requires identical bounds.

Two export formats:

* **JSON snapshot** (:meth:`MetricsRegistry.snapshot` /
  :func:`validate_snapshot`) — the relay shard format, versioned with
  ``metrics_schema``;
* **Prometheus text exposition** (:meth:`MetricsRegistry.to_prometheus` /
  :func:`parse_prometheus`) — ``# HELP``/``# TYPE`` comments,
  ``name{label="value"} value`` samples, histogram ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` series with a ``+Inf`` bucket, scrapeable by any
  Prometheus-compatible collector (ROADMAP item 5's dashboards).

The module deliberately imports nothing from the rest of ``repro`` so any
layer (engine counters, checkpoint store, experiment pool) can record into
the process-wide :data:`REGISTRY` without import cycles.
"""

from __future__ import annotations

import json
import math
import re
from typing import Iterable

#: Version of the JSON snapshot layout.  Bump on incompatible changes;
#: :func:`validate_snapshot` rejects snapshots from other versions.
METRICS_SCHEMA = 1

#: Default histogram bounds: latency-shaped (seconds), from sub-millisecond
#: dispatch overheads to multi-minute report phases.  Callers measuring
#: counts (records, rows) pass their own bounds.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0, 10.0, 50.0, 100.0, 500.0)

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """A Prometheus-compatible number: integral floats print as integers."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(labelnames: tuple[str, ...],
                   labelvalues: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    """The ``{a="x",b="y"}`` suffix of one sample (empty when unlabeled)."""
    pairs = list(zip(labelnames, labelvalues)) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label(str(value))}"'
                    for name, value in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared identity of one named metric family."""

    type: str = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = ()) -> None:
        if not _NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        """The series key for one ``**labels`` call, order-normalized."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Metric):
    """A monotonically increasing value (events, hits, bytes)."""

    type = "counter"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._series: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one series (0 when never incremented)."""
        return self._series.get(self._key(labels), 0.0)


class Gauge(_Metric):
    """A value that goes up and down (occupancy, utilization, workers)."""

    type = "gauge"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._series: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the series selected by ``labels`` to ``value``."""
        self._series[self._key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        """Current value of one series (0 when never set)."""
        return self._series.get(self._key(labels), 0.0)


class Histogram(_Metric):
    """A fixed-bucket distribution with ``sum`` and ``count``.

    Bucket counts are *non-cumulative* internally (merging is a plain
    element-wise sum); the Prometheus exporter emits the cumulative
    ``le``-bucket form the exposition format requires.
    """

    type = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing bounds"
            )
        self.buckets = bounds
        #: series key -> (per-bucket counts [len(bounds)+1], sum, count).
        self._series: dict[tuple[str, ...], list] = {}

    def _slot(self, key: tuple[str, ...]) -> list:
        state = self._series.get(key)
        if state is None:
            state = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._series[key] = state
        return state

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the series selected by ``labels``."""
        state = self._slot(self._key(labels))
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        state[0][index] += 1
        state[1] += float(value)
        state[2] += 1

    def totals(self, **labels: object) -> tuple[float, int]:
        """``(sum, count)`` of one series (zeros when never observed)."""
        state = self._series.get(self._key(labels))
        if state is None:
            return 0.0, 0
        return state[1], state[2]

    def mean(self, **labels: object) -> float:
        """Mean observation of one series (0 when empty)."""
        total, count = self.totals(**labels)
        return total / count if count else 0.0


class MetricsRegistry:
    """A named collection of metrics with get-or-create access.

    ``counter``/``gauge``/``histogram`` return the existing metric when the
    name is already registered (checking that type, label names, and
    histogram bounds agree), so call sites scattered across modules share
    series without threading objects around.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: tuple[str, ...], **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.type}, not {cls.type}"
                )
            if existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, not {tuple(labelnames)}"
                )
            bounds = kwargs.get("buckets")
            if bounds is not None and tuple(
                    float(b) for b in bounds) != existing.buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with "
                    f"different bounds"
                )
            return existing
        metric = cls(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram` with ``buckets`` bounds."""
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=tuple(buckets))

    def get(self, name: str) -> _Metric | None:
        """The registered metric named ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every registered metric (start of a fresh session)."""
        self._metrics.clear()

    # -- JSON snapshot -----------------------------------------------------

    def snapshot(self) -> dict:
        """The registry as a versioned, JSON-serializable snapshot."""
        metrics = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry: dict = {
                "name": name,
                "type": metric.type,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["series"] = [
                    {"labels": list(key), "counts": list(state[0]),
                     "sum": state[1], "count": state[2]}
                    for key, state in sorted(metric._series.items())
                ]
            else:
                entry["series"] = [
                    {"labels": list(key), "value": value}
                    for key, value in sorted(metric._series.items())
                ]
            metrics.append(entry)
        return {"metrics_schema": METRICS_SCHEMA, "metrics": metrics}

    def write_snapshot(self, path) -> None:
        """Write :meth:`snapshot` as JSON to ``path``."""
        from pathlib import Path

        Path(path).write_text(json.dumps(self.snapshot(), indent=1) + "\n")

    @classmethod
    def from_snapshot(cls, payload: dict) -> "MetricsRegistry":
        """A fresh registry holding exactly ``payload``'s series."""
        registry = cls()
        registry.merge_snapshot(payload)
        return registry

    def merge_snapshot(self, payload: dict) -> None:
        """Fold one snapshot into this registry.

        Counters add, gauges take the max, histograms add bucketwise
        (identical bounds required).  Raises ``ValueError`` on a snapshot
        that fails :func:`validate_snapshot` or conflicts with an already
        registered metric.
        """
        problems = validate_snapshot(payload)
        if problems:
            raise ValueError(f"invalid metrics snapshot: {problems[0]}")
        for entry in payload["metrics"]:
            name = entry["name"]
            labelnames = tuple(entry["labelnames"])
            kind = entry["type"]
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""), labelnames)
                for series in entry["series"]:
                    key = tuple(series["labels"])
                    metric._series[key] = (metric._series.get(key, 0.0)
                                           + float(series["value"]))
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""), labelnames)
                for series in entry["series"]:
                    key = tuple(series["labels"])
                    value = float(series["value"])
                    metric._series[key] = max(
                        metric._series.get(key, value), value)
            else:
                metric = self.histogram(name, entry.get("help", ""),
                                        labelnames,
                                        buckets=tuple(entry["buckets"]))
                for series in entry["series"]:
                    key = tuple(series["labels"])
                    counts = list(series["counts"])
                    if len(counts) != len(metric.buckets) + 1:
                        raise ValueError(
                            f"histogram {name!r} snapshot has "
                            f"{len(counts)} bucket counts for "
                            f"{len(metric.buckets)} bounds"
                        )
                    state = metric._slot(key)
                    state[0] = [a + b for a, b in zip(state[0], counts)]
                    state[1] += float(series["sum"])
                    state[2] += int(series["count"])

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one.

        Same algebra as :meth:`merge_snapshot` (counters add, gauges max,
        histograms add bucketwise) — used by the simulation service to
        aggregate per-session registries into the server-wide scrape
        without touching either source registry.
        """
        self.merge_snapshot(other.snapshot())

    # -- Prometheus text exposition ----------------------------------------

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.type}")
            if isinstance(metric, Histogram):
                for key, state in sorted(metric._series.items()):
                    counts, total, count = state
                    cumulative = 0
                    for bound, bucket in zip(
                            list(metric.buckets) + [math.inf],
                            counts):
                        cumulative += bucket
                        suffix = _render_labels(
                            metric.labelnames, key,
                            (("le", _format_value(bound)),))
                        lines.append(
                            f"{name}_bucket{suffix} {cumulative}")
                    plain = _render_labels(metric.labelnames, key)
                    lines.append(f"{name}_sum{plain} {_format_value(total)}")
                    lines.append(f"{name}_count{plain} {count}")
            else:
                for key, value in sorted(metric._series.items()):
                    suffix = _render_labels(metric.labelnames, key)
                    lines.append(f"{name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


#: Process-wide default registry.  Worker processes hold their own copy
#: (fork or fresh import); the relay carries worker snapshots back to the
#: orchestrator for merging.
REGISTRY = MetricsRegistry()


def validate_snapshot(payload: object) -> list[str]:
    """Structural problems of one JSON snapshot (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["snapshot is not an object"]
    if payload.get("metrics_schema") != METRICS_SCHEMA:
        problems.append(
            f"metrics_schema is {payload.get('metrics_schema')!r}, "
            f"expected {METRICS_SCHEMA}"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, list):
        problems.append("'metrics' is not a list")
        return problems
    seen: set[str] = set()
    for index, entry in enumerate(metrics):
        where = f"metrics[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not _NAME.match(name):
            problems.append(f"{where}: invalid name {name!r}")
            continue
        if name in seen:
            problems.append(f"{where}: duplicate metric {name!r}")
        seen.add(name)
        kind = entry.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            problems.append(f"{where} ({name}): unknown type {kind!r}")
            continue
        labelnames = entry.get("labelnames")
        if (not isinstance(labelnames, list)
                or any(not isinstance(l, str) or not _LABEL.match(l)
                       for l in labelnames)):
            problems.append(f"{where} ({name}): invalid labelnames")
            continue
        series = entry.get("series")
        if not isinstance(series, list):
            problems.append(f"{where} ({name}): 'series' is not a list")
            continue
        bounds = None
        if kind == "histogram":
            bounds = entry.get("buckets")
            if (not isinstance(bounds, list) or not bounds
                    or any(not isinstance(b, (int, float)) for b in bounds)
                    or [float(b) for b in bounds]
                    != sorted({float(b) for b in bounds})):
                problems.append(f"{where} ({name}): invalid bucket bounds")
                continue
        for sindex, sample in enumerate(series):
            swhere = f"{where} ({name}) series[{sindex}]"
            if not isinstance(sample, dict):
                problems.append(f"{swhere}: not an object")
                continue
            labels = sample.get("labels")
            if (not isinstance(labels, list)
                    or len(labels) != len(labelnames)
                    or any(not isinstance(v, str) for v in labels)):
                problems.append(f"{swhere}: labels do not match labelnames")
            if kind == "histogram":
                counts = sample.get("counts")
                if (not isinstance(counts, list)
                        or len(counts) != len(bounds) + 1
                        or any(not isinstance(c, int) or c < 0
                               for c in counts)):
                    problems.append(f"{swhere}: invalid bucket counts")
                if not isinstance(sample.get("sum"), (int, float)):
                    problems.append(f"{swhere}: missing numeric 'sum'")
                count = sample.get("count")
                if not isinstance(count, int) or count < 0:
                    problems.append(f"{swhere}: missing 'count'")
                elif isinstance(counts, list) and all(
                        isinstance(c, int) for c in counts) and (
                        sum(counts) != count):
                    problems.append(
                        f"{swhere}: bucket counts sum to {sum(counts)}, "
                        f"'count' says {count}"
                    )
            else:
                if not isinstance(sample.get("value"), (int, float)):
                    problems.append(f"{swhere}: missing numeric 'value'")
    return problems


#: One sample line: ``name{labels} value`` (labels optional).
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse text exposition back into ``{family: {type, samples}}``.

    ``samples`` maps ``(sample_name, sorted_label_items)`` to the numeric
    value; histogram ``_bucket``/``_sum``/``_count`` samples file under
    their family name.  Used by the round-trip tests and as a minimal
    scrape-side reference; raises ``ValueError`` on lines that are neither
    comments nor well-formed samples.
    """
    families: dict[str, dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"type": kind.strip(), "samples": {}})
            families[name]["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {raw!r}")
        sample_name = match.group("name")
        family = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and base in families:
                family = base
                break
        labels = []
        if match.group("labels"):
            labels = [
                (name, value.replace('\\"', '"').replace("\\n", "\n")
                 .replace("\\\\", "\\"))
                for name, value in _LABEL_PAIR.findall(match.group("labels"))
            ]
        raw_value = match.group("value")
        value = math.inf if raw_value == "+Inf" else float(raw_value)
        entry = families.setdefault(family, {"type": "untyped",
                                             "samples": {}})
        entry["samples"][(sample_name, tuple(sorted(labels)))] = value
    return families
