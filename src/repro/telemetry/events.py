"""Telemetry event taxonomy and schema validation.

One telemetry event is a flat JSON object: a simulated-cycle timestamp
(``cycle``), an event kind (``kind``, one of :class:`EventKind`), and the
kind-specific payload fields of :data:`EVENT_SCHEMA`.  The taxonomy covers
the full prediction/preload lifecycle the paper's mechanism moves through:
instruction fetch, first-level lookups, surprise classification, perceived
misses, tracker lifecycle, BTB2 search and transfer, structure writes, and
pipeline resteers.

The schema here is the contract for every consumer: the JSONL stream the
:class:`~repro.telemetry.tracer.Tracer` writes, the Chrome ``trace_event``
export, and the CI smoke checker (``scripts/check_trace.py``).  Validation
is dependency-free on purpose (no ``jsonschema`` in the image): field
presence plus exact-type checks, tolerant of *extra* fields so the schema
can grow without invalidating old traces.
"""

from __future__ import annotations

import enum
import json
from typing import Any, Iterable


class EventKind(enum.Enum):
    """Every event type the tracer can emit."""

    #: A new 256-byte fetch line demanded by decode (``result`` says how
    #: it resolved: hit / hidden / partial / miss).
    FETCH = "fetch"
    #: The lookahead search found a first-level entry and broadcast a
    #: prediction (the BTB1/BTBP lookup, with PHT/CTB usage flags).
    LOOKUP = "lookup"
    #: A branch reached decode unpredicted and was classified
    #: (compulsory / latency / capacity, or a good surprise).
    SURPRISE = "surprise"
    #: A dynamic branch resolved; ``penalty`` is the stall it charged.
    OUTCOME = "outcome"
    #: The search pipeline perceived a BTB1 miss (Table 2 report).
    MISS_PERCEIVED = "miss_perceived"
    #: A search tracker claimed a 4 KB block.
    TRACKER_ALLOCATE = "tracker_allocate"
    #: A tracker armed a search (``mode``: partial / full / block_wait).
    TRACKER_ARM = "tracker_arm"
    #: A tracker returned to FREE (``reason`` says why).
    TRACKER_EXPIRE = "tracker_expire"
    #: A sector's row reads were queued against the BTB2.
    BTB2_SEARCH_START = "btb2_search_start"
    #: One pipelined BTB2 row read completed (``hits`` entries matched).
    BTB2_ROW = "btb2_row"
    #: A tracker's whole transfer drained: the bulk-preload burst summary.
    TRANSFER_BATCH = "transfer_batch"
    #: An entry was written into a BTB structure.
    INSTALL = "install"
    #: An entry was evicted from a BTB structure.
    EVICT = "evict"
    #: The pipeline redirected fetch/search (mispredict or bad surprise).
    RESTEER = "resteer"
    #: Trace discontinuity: time-slice switch or interrupt.
    CONTEXT_SWITCH = "context_switch"
    #: Sampled-simulation interval boundary (``phase``: warming /
    #: warmup / measure / end; ``index`` is the measured-interval number,
    #: ``record`` the trace position).
    INTERVAL = "interval"


#: ``kind`` -> required payload fields and their exact python types.
#: ``bool`` is checked before ``int`` (bool subclasses int); ``float``
#: accepts ints (JSON round-trips 4.0 as 4).
EVENT_SCHEMA: dict[str, dict[str, type]] = {
    EventKind.FETCH.value: {"address": int, "result": str},
    EventKind.LOOKUP.value: {
        "address": int, "level": str, "taken": bool,
        "used_pht": bool, "used_ctb": bool,
    },
    EventKind.SURPRISE.value: {
        "address": int, "class": str, "guess_taken": bool,
    },
    EventKind.OUTCOME.value: {
        "address": int, "outcome": str, "penalty": float,
    },
    EventKind.MISS_PERCEIVED.value: {"address": int},
    EventKind.TRACKER_ALLOCATE.value: {
        "tracker": int, "block": int, "state": str,
    },
    EventKind.TRACKER_ARM.value: {
        "tracker": int, "block": int, "mode": str, "rows": int,
    },
    EventKind.TRACKER_EXPIRE.value: {
        "tracker": int, "block": int, "reason": str,
    },
    EventKind.BTB2_SEARCH_START.value: {
        "tracker": int, "sector": int, "rows": int, "priority": int,
    },
    EventKind.BTB2_ROW.value: {"row": int, "hits": int},
    EventKind.TRANSFER_BATCH.value: {
        "tracker": int, "block": int, "rows": int, "entries": int,
    },
    EventKind.INSTALL.value: {"btb": str, "address": int},
    EventKind.EVICT.value: {"btb": str, "address": int},
    EventKind.RESTEER.value: {"address": int, "cause": str},
    EventKind.CONTEXT_SWITCH.value: {"address": int},
    EventKind.INTERVAL.value: {"index": int, "record": int, "phase": str},
}

#: Fields every event must carry regardless of kind.
COMMON_FIELDS: dict[str, type] = {"cycle": float, "kind": str}


def _type_ok(value: Any, expected: type) -> bool:
    if expected is bool:
        return isinstance(value, bool)
    if expected is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


def validate_event(event: Any) -> list[str]:
    """Schema problems of one event object (empty list = valid)."""
    if not isinstance(event, dict):
        return [f"event is not an object: {event!r}"]
    problems = []
    for name, expected in COMMON_FIELDS.items():
        if name not in event:
            problems.append(f"missing common field '{name}'")
        elif not _type_ok(event[name], expected):
            problems.append(
                f"field '{name}' has type {type(event[name]).__name__}, "
                f"expected {expected.__name__}"
            )
    kind = event.get("kind")
    if not isinstance(kind, str):
        return problems
    fields = EVENT_SCHEMA.get(kind)
    if fields is None:
        problems.append(f"unknown event kind '{kind}'")
        return problems
    for name, expected in fields.items():
        if name not in event:
            problems.append(f"{kind}: missing field '{name}'")
        elif not _type_ok(event[name], expected):
            problems.append(
                f"{kind}: field '{name}' has type "
                f"{type(event[name]).__name__}, expected {expected.__name__}"
            )
    return problems


def validate_events(events: Iterable[Any]) -> list[str]:
    """Schema problems across ``events``, prefixed with their index."""
    problems = []
    for index, event in enumerate(events):
        for problem in validate_event(event):
            problems.append(f"event {index}: {problem}")
    return problems


def validate_jsonl(lines: Iterable[str]) -> list[str]:
    """Schema problems of a JSONL event stream (one event per line)."""
    problems = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except ValueError as error:
            problems.append(f"line {number}: not JSON ({error})")
            continue
        for problem in validate_event(event):
            problems.append(f"line {number}: {problem}")
    return problems
