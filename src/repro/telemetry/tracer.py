"""Structured event tracing: buffered events, JSONL stream, Chrome export.

The :class:`Tracer` is deliberately dumb: :meth:`emit` builds one flat
dict per event, appends it to an in-memory buffer, and (when a stream is
attached) writes it as one JSONL line immediately — so a crashed run still
leaves a readable prefix on disk.  All *selection* logic lives at the hook
sites in :class:`repro.telemetry.hub.Telemetry`; all *interpretation*
lives in the exporters below.

Two export formats:

* **JSONL** (:meth:`write_jsonl`) — one schema-valid event object per
  line (:mod:`repro.telemetry.events`), greppable and streamable;
* **Chrome ``trace_event``** (:meth:`write_chrome_trace`) — the JSON
  format Perfetto / ``chrome://tracing`` load.  Simulated cycles map to
  microseconds (1 cycle = 1 µs).  Tracker lifecycles become nested
  duration spans on per-tracker rows — a bulk-preload burst renders as
  ``preload`` enclosing its ``search`` phase — and everything else
  becomes instant events on the core row, so the "perceived miss →
  transfer complete" latency the paper's 136-cycle budget promises can be
  read straight off the timeline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any

from repro.telemetry.events import EventKind

#: Chrome trace rows: the core pipeline and one row per search tracker.
CORE_TID = 0
TRACKER_TID_BASE = 1

#: Event kinds that render as instants on the core row (everything that
#: is not part of a tracker span).
_CORE_INSTANTS = {
    EventKind.FETCH.value,
    EventKind.LOOKUP.value,
    EventKind.SURPRISE.value,
    EventKind.OUTCOME.value,
    EventKind.MISS_PERCEIVED.value,
    EventKind.INSTALL.value,
    EventKind.EVICT.value,
    EventKind.RESTEER.value,
    EventKind.CONTEXT_SWITCH.value,
    EventKind.BTB2_ROW.value,
}


class Tracer:
    """Typed lifecycle event collector with optional live JSONL streaming."""

    def __init__(self, stream: IO[str] | None = None,
                 limit: int | None = None) -> None:
        #: Buffered events, in emission order.
        self.events: list[dict[str, Any]] = []
        #: Events dropped because the buffer ``limit`` was reached (the
        #: JSONL stream, when attached, still receives every event).
        self.dropped = 0
        self._stream = stream
        self._limit = limit

    def emit(self, cycle: float, kind: str, **fields: Any) -> None:
        """Record one event at simulated ``cycle``."""
        event: dict[str, Any] = {"cycle": cycle, "kind": kind, **fields}
        if self._stream is not None:
            self._stream.write(json.dumps(event) + "\n")
        if self._limit is not None and len(self.events) >= self._limit:
            self.dropped += 1
            return
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind | str) -> list[dict[str, Any]]:
        """All buffered events of one kind, in order."""
        value = kind.value if isinstance(kind, EventKind) else kind
        return [event for event in self.events if event["kind"] == value]

    # -- JSONL ----------------------------------------------------------------

    def write_jsonl(self, path: str | Path) -> int:
        """Write the buffered events as JSONL; returns the event count."""
        path = Path(path)
        with path.open("w") as stream:
            for event in self.events:
                stream.write(json.dumps(event) + "\n")
        return len(self.events)

    # -- Chrome trace_event ---------------------------------------------------

    def to_chrome_trace(self, process_name: str = "repro") -> dict[str, Any]:
        """The buffered events as a Chrome ``trace_event`` JSON object.

        Uses the JSON-object format (``{"traceEvents": [...]}``) with
        ``B``/``E`` duration pairs for tracker activations, a nested
        ``search`` span from arm to batch completion, and ``i`` instants
        for point events.  Spans still open at the end of the buffer are
        closed at the last seen timestamp so the file always loads.
        """
        trace: list[dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": CORE_TID,
             "args": {"name": process_name}},
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": CORE_TID,
             "args": {"name": "core pipeline"}},
        ]
        named_trackers: set[int] = set()
        #: tracker slot -> list of open span names (for balanced closing).
        open_spans: dict[int, list[str]] = {}
        last_ts = 0.0

        def tid_of(slot: int) -> int:
            tid = TRACKER_TID_BASE + slot
            if slot not in named_trackers:
                named_trackers.add(slot)
                trace.append(
                    {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                     "args": {"name": f"tracker {slot}"}}
                )
            return tid

        def begin(slot: int, name: str, ts: float, args: dict) -> None:
            trace.append({"name": name, "ph": "B", "ts": ts, "pid": 0,
                          "tid": tid_of(slot), "cat": "preload",
                          "args": args})
            open_spans.setdefault(slot, []).append(name)

        def end_all(slot: int, ts: float, down_to: int = 0) -> None:
            stack = open_spans.get(slot, [])
            while len(stack) > down_to:
                name = stack.pop()
                trace.append({"name": name, "ph": "E", "ts": ts, "pid": 0,
                              "tid": tid_of(slot), "cat": "preload"})

        for event in self.events:
            ts = float(event["cycle"])
            last_ts = max(last_ts, ts)
            kind = event["kind"]
            if kind == EventKind.TRACKER_ALLOCATE.value:
                slot = event["tracker"]
                end_all(slot, ts)  # a steal closes the previous burst
                begin(slot, "preload", ts,
                      {"block": hex(event["block"]),
                       "state": event["state"]})
            elif kind == EventKind.TRACKER_ARM.value:
                slot = event["tracker"]
                if not open_spans.get(slot):
                    begin(slot, "preload", ts,
                          {"block": hex(event["block"])})
                end_all(slot, ts, down_to=1)  # close a previous search arm
                begin(slot, f"search:{event['mode']}", ts,
                      {"rows": event["rows"]})
            elif kind == EventKind.TRANSFER_BATCH.value:
                slot = event["tracker"]
                end_all(slot, ts, down_to=1)
                trace.append(
                    {"name": "batch", "ph": "i", "ts": ts, "pid": 0,
                     "tid": tid_of(slot), "s": "t", "cat": "preload",
                     "args": {"rows": event["rows"],
                              "entries": event["entries"]}}
                )
            elif kind == EventKind.TRACKER_EXPIRE.value:
                slot = event["tracker"]
                end_all(slot, ts)
                trace.append(
                    {"name": f"expire:{event['reason']}", "ph": "i",
                     "ts": ts, "pid": 0, "tid": tid_of(slot), "s": "t",
                     "cat": "preload"}
                )
            elif kind == EventKind.BTB2_SEARCH_START.value:
                trace.append(
                    {"name": "btb2_search_start", "ph": "i", "ts": ts,
                     "pid": 0, "tid": tid_of(event["tracker"]), "s": "t",
                     "cat": "preload",
                     "args": {"sector": hex(event["sector"]),
                              "rows": event["rows"],
                              "priority": event["priority"]}}
                )
            elif kind in _CORE_INSTANTS:
                args = {key: value for key, value in event.items()
                        if key not in ("cycle", "kind")}
                if "address" in args:
                    args["address"] = hex(args["address"])
                trace.append(
                    {"name": kind, "ph": "i", "ts": ts, "pid": 0,
                     "tid": CORE_TID, "s": "t", "cat": "pipeline",
                     "args": args}
                )
        for slot in list(open_spans):
            end_all(slot, last_ts)
        return {"traceEvents": trace, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path,
                           process_name: str = "repro") -> int:
        """Write the Chrome trace JSON; returns the trace-event count."""
        payload = self.to_chrome_trace(process_name)
        Path(path).write_text(json.dumps(payload))
        return len(payload["traceEvents"])
