"""Host-side wall-time phase timers.

The simulated-cycle tracer answers "where did the *model's* time go"; the
phase timers answer the same question for the *host*: how long each phase
of a report run (tables, each figure, rendering) actually took.  They are
dependency-free so anything may use them; the experiment pool's
:class:`~repro.experiments.pool.ExecutionLog` carries the accumulated
phases into the session summary (``record_phase``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator


class PhaseTimers:
    """Named wall-time accumulators with a context-manager interface."""

    def __init__(self) -> None:
        #: phase name -> accumulated wall seconds.
        self.phases: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (re-entrant: accumulates)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def merge_into(self, record: Callable[[str, float], None]) -> None:
        """Replay every accumulated phase into ``record(name, seconds)``."""
        for name, seconds in self.phases.items():
            record(name, seconds)


@contextmanager
def phase_timer(name: str,
                record: Callable[[str, float], None]) -> Iterator[None]:
    """Time one block and report it straight to ``record(name, seconds)``.

    The one-shot sibling of :class:`PhaseTimers` for callers that already
    own an accumulator (e.g. ``session_log.record_phase``).
    """
    started = time.perf_counter()
    try:
        yield
    finally:
        record(name, time.perf_counter() - started)
