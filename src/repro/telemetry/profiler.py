"""Per-static-branch outcome and penalty attribution.

Run-end aggregates say *how many* capacity misses a run suffered; they do
not say *which* branches pay for them.  The :class:`BranchProfiler` keeps
one :class:`BranchProfile` per static branch address, fed by the
simulator's outcome hook with the exact penalty cycles each dynamic
execution charged, and renders a top-K "worst offenders" report
(``repro profile``) ranked by attributed penalty — the capacity-miss tail
the BTB2 attacks, made visible branch by branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import OutcomeKind


@dataclass
class BranchProfile:
    """Accumulated attribution for one static branch address."""

    address: int
    executions: int = 0
    taken: int = 0
    penalty_cycles: float = 0.0
    outcomes: dict[OutcomeKind, int] = field(default_factory=dict)

    @property
    def bad(self) -> int:
        """Dynamic executions that incurred a penalty."""
        return sum(
            count for kind, count in self.outcomes.items() if kind.is_bad
        )

    @property
    def bad_fraction(self) -> float:
        """Fraction of this branch's executions that went bad."""
        return self.bad / self.executions if self.executions else 0.0

    @property
    def dominant_outcome(self) -> OutcomeKind | None:
        """The most frequent *bad* outcome kind (``None`` if never bad)."""
        bad = [(count, kind.value, kind) for kind, count in
               self.outcomes.items() if kind.is_bad and count]
        if not bad:
            return None
        return max(bad)[2]


class BranchProfiler:
    """Per-branch aggregation of the simulator's resolved outcomes."""

    def __init__(self) -> None:
        self.profiles: dict[int, BranchProfile] = {}

    def record(self, address: int, kind: OutcomeKind, penalty: float,
               taken: bool) -> None:
        """Fold one resolved dynamic branch into its static profile."""
        profile = self.profiles.get(address)
        if profile is None:
            profile = self.profiles[address] = BranchProfile(address)
        profile.executions += 1
        if taken:
            profile.taken += 1
        profile.penalty_cycles += penalty
        profile.outcomes[kind] = profile.outcomes.get(kind, 0) + 1

    # -- derived --------------------------------------------------------------

    @property
    def total_executions(self) -> int:
        """Dynamic branches recorded (equals ``SimCounters.branches``)."""
        return sum(profile.executions for profile in self.profiles.values())

    @property
    def total_penalty_cycles(self) -> float:
        """Penalty cycles attributed across all branches."""
        return sum(
            profile.penalty_cycles for profile in self.profiles.values()
        )

    def top(self, k: int = 10) -> list[BranchProfile]:
        """The ``k`` branches with the largest attributed penalty."""
        ranked = sorted(
            self.profiles.values(),
            key=lambda profile: (-profile.penalty_cycles, profile.address),
        )
        return ranked[:max(0, k)]

    def render(self, k: int = 10, title: str | None = None) -> str:
        """Human-readable worst-offenders table."""
        total = self.total_penalty_cycles
        lines = [title or "per-branch penalty profile"]
        lines.append(
            f"  {len(self.profiles):,} static branches, "
            f"{self.total_executions:,} dynamic executions, "
            f"{total:,.0f} penalty cycles attributed"
        )
        lines.append(
            f"  {'address':>14s} {'execs':>9s} {'taken%':>7s} {'bad%':>6s} "
            f"{'penalty':>12s} {'share':>6s}  dominant outcome"
        )
        for profile in self.top(k):
            share = profile.penalty_cycles / total if total else 0.0
            dominant = profile.dominant_outcome
            lines.append(
                f"  {profile.address:#14x} {profile.executions:9,d} "
                f"{100 * profile.taken / max(1, profile.executions):6.1f}% "
                f"{100 * profile.bad_fraction:5.1f}% "
                f"{profile.penalty_cycles:12,.0f} "
                f"{100 * share:5.1f}%  "
                f"{dominant.value if dominant else '-'}"
            )
        return "\n".join(lines)
