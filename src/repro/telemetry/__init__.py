"""Telemetry: structured tracing, time-series sampling, branch profiles.

``repro.telemetry`` is the observability counterpart to ``repro.audit``:
where the auditor answers "is the model's state *legal*?", telemetry
answers "what is the model *doing*, and when?".  The run-end aggregates of
:class:`repro.metrics.counters.SimCounters` reproduce the paper's
evaluation, but they cannot show when BTB1 occupancy saturated, how long a
bulk-preload burst took from perceived miss to last transfer, or which
static branches account for the capacity-miss tail the BTB2 attacks —
per-event timing and per-branch attribution carry that insight (cf. the
timing-information and hard-to-predict-branch characterization lines of
work in PAPERS.md).

Three pillars, each independently optional, multiplexed by one
:class:`Telemetry` hub:

* **Tracing** (:class:`Tracer`) — typed lifecycle events with
  simulated-cycle timestamps (fetch, lookups, surprise classification,
  perceived misses, tracker lifecycle, BTB2 search/transfer, installs,
  resteers), streamed/written as JSONL and exportable as a Chrome
  ``trace_event`` file so a preload burst renders as nested spans in
  Perfetto.  The event schema lives in :mod:`repro.telemetry.events`.
* **Sampling** (:class:`Sampler`) — every N cycles, a columnar snapshot
  of occupancy, rolling hit/accuracy rates, tracker-file pressure and
  transfer-bus utilization; CSV export plus the ``repro timeline`` ASCII
  chart.
* **Profiling** (:class:`BranchProfiler`) — per-static-branch outcome and
  penalty attribution, rendered as the ``repro profile`` top-K
  worst-offenders report.

Wiring follows the auditor pattern byte for byte: instrumented components
hold a ``telemetry`` attribute that defaults to ``None`` and every hook
site is a single attribute test, so the subsystem is zero-cost when off —
results are identical with telemetry on or off (pinned by
``tests/telemetry/test_offpath.py``).

Usage::

    from repro.telemetry import Telemetry
    from repro.engine.simulator import Simulator

    telemetry = Telemetry.full(sample_interval=2048)
    Simulator(config, telemetry=telemetry).run(trace)
    telemetry.tracer.write_jsonl("events.jsonl")
    telemetry.tracer.write_chrome_trace("trace.json")
    telemetry.sampler.write_csv("timeline.csv")
    print(telemetry.profiler.render(k=10))

Host-side wall-time phase timers (:mod:`repro.telemetry.timers`) are the
fourth, simulation-independent piece: ``run_all`` times each report phase
and folds the result into the experiment pool's session summary.

Three distributed pieces extend the pillars across process boundaries
(docs/OBSERVABILITY.md):

* **Relay** (:class:`TelemetryRelay` / :func:`aggregate`,
  :mod:`repro.telemetry.distributed`) — workers stream their events into
  per-worker JSONL shards; the orchestrator merges them into one Chrome
  trace with a pid lane per worker.
* **Metrics** (:class:`MetricsRegistry` / :data:`REGISTRY`,
  :mod:`repro.telemetry.metrics`) — typed counters/gauges/histograms,
  mergeable across workers, exported as Prometheus text or JSON
  snapshots.
* **Monitor** (:class:`StatusBoard`, :mod:`repro.telemetry.monitor`) —
  a shared heartbeat file behind ``repro top`` and ``run_all
  --progress``.
"""

from repro.telemetry.distributed import (
    RELAY_ENV,
    AggregateResult,
    TelemetryRelay,
    WorkerSession,
    aggregate,
)
from repro.telemetry.events import (
    EVENT_SCHEMA,
    EventKind,
    validate_event,
    validate_events,
    validate_jsonl,
)
from repro.telemetry.hub import Telemetry
from repro.telemetry.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    validate_snapshot,
)
from repro.telemetry.monitor import (
    STATUS_ENV,
    BoardState,
    StatusBoard,
    read_board,
    render_status,
    render_summary,
)
from repro.telemetry.profiler import BranchProfile, BranchProfiler
from repro.telemetry.sampler import COLUMNS, Sampler, render_timeline, sparkline
from repro.telemetry.timers import PhaseTimers, phase_timer
from repro.telemetry.tracer import Tracer

__all__ = [
    "COLUMNS",
    "EVENT_SCHEMA",
    "REGISTRY",
    "RELAY_ENV",
    "STATUS_ENV",
    "AggregateResult",
    "BoardState",
    "BranchProfile",
    "BranchProfiler",
    "Counter",
    "EventKind",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimers",
    "Sampler",
    "StatusBoard",
    "Telemetry",
    "TelemetryRelay",
    "Tracer",
    "WorkerSession",
    "aggregate",
    "parse_prometheus",
    "phase_timer",
    "read_board",
    "render_status",
    "render_summary",
    "render_timeline",
    "sparkline",
    "validate_event",
    "validate_events",
    "validate_jsonl",
    "validate_snapshot",
]
