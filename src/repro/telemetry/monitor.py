"""Live run monitoring: a shared heartbeat file and the ``repro top`` view.

Long batch sessions (``run_many`` over a process backend, checkpoint-
parallel fan-outs) were previously silent until the final summary.  This
module gives them a pulse:

* A :class:`StatusBoard` is an append-only JSONL file every participant
  heartbeats into — one small ``O_APPEND``-atomic line per state change
  (``queued``/``warming``/``measuring``/``stitching``/``cached``/
  ``done``/``failed``), cheap enough to write from workers and safe under
  concurrent writers without locks.  Orchestrators create one and export
  its path as ``$REPRO_STATUS``; pool workers inherit the variable and
  beat through :meth:`StatusBoard.from_env` (``None`` when unset — the
  zero-cost-off contract, same shape as telemetry and the relay).
* :func:`read_board` folds the file into a :class:`BoardState` — latest
  state per spec, per-worker activity, session throughput — tolerating a
  truncated final line from a crashing writer.
* :func:`render_status` draws the per-spec table ``repro top`` shows
  (records/sec, ETA, cache-hit rate, worker utilization);
  :func:`render_summary` is the one-paragraph degradation for dumb
  terminals and session-end reporting.
* :func:`top` is the tail loop behind ``repro top``: on a TTY it
  redraws in place; on anything else it degrades to printing the final
  summary once the board goes quiet.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable naming the status-board file.
STATUS_ENV = "REPRO_STATUS"

#: Heartbeat states, in lifecycle order.  ``cached``/``done``/``failed``/
#: ``cancelled`` are terminal (``cancelled`` marks in-flight work swept by
#: an orchestrator shutting down on a signal or a worker crash).
STATES = ("queued", "warming", "measuring", "stitching",
          "cached", "done", "failed", "cancelled")

_TERMINAL = {"cached", "done", "failed", "cancelled"}


class StatusBoard:
    """Append-only heartbeat file shared by every process of a session."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    @classmethod
    def from_env(cls) -> "StatusBoard | None":
        """The board named by ``$REPRO_STATUS``, or ``None`` when unset."""
        path = os.environ.get(STATUS_ENV, "").strip()
        if not path:
            return None
        return cls(path)

    def activate(self) -> None:
        """Export this board's path as ``$REPRO_STATUS`` for workers."""
        os.environ[STATUS_ENV] = str(self.path)

    def beat(self, spec: str, state: str, worker: str | None = None,
             done: int = 0, total: int = 0, **extra) -> None:
        """Append one heartbeat line (atomic for lines under PIPE_BUF).

        ``spec`` names the unit of work (e.g. ``TPF/zEC12-2``), ``state``
        one of :data:`STATES`, ``done``/``total`` its record progress.
        A board must never take a run down with it: filesystem errors
        are swallowed.
        """
        record = {
            "t": time.time(),
            "spec": spec,
            "state": state,
            "worker": worker or multiprocessing.current_process().name,
            "done": done,
            "total": total,
        }
        record.update(extra)
        try:
            with open(self.path, "a") as stream:
                stream.write(json.dumps(record) + "\n")
        except OSError:
            pass


@dataclass
class SpecStatus:
    """Latest known state of one spec on the board."""

    spec: str
    state: str
    worker: str
    done: int = 0
    total: int = 0
    #: Timestamp of the latest beat.
    t: float = 0.0
    #: Timestamp of the first beat ever seen for this spec.
    first_t: float = 0.0
    #: Optional extras carried by terminal beats.
    instructions: int = 0
    seconds: float = 0.0
    #: Why the spec reached ``failed``/``cancelled`` (shutdown sweeps).
    reason: str = ""

    @property
    def terminal(self) -> bool:
        """True once the spec reached a final state."""
        return self.state in _TERMINAL


@dataclass
class BoardState:
    """One tolerant fold of a status file."""

    specs: dict[str, SpecStatus] = field(default_factory=dict)
    #: worker -> beat count (activity attribution).
    workers: dict[str, int] = field(default_factory=dict)
    #: worker -> simulated seconds reported by its terminal beats.
    worker_seconds: dict[str, float] = field(default_factory=dict)
    started: float = 0.0
    updated: float = 0.0
    beats: int = 0
    #: Unparseable lines skipped (typically one truncated tail line).
    skipped: int = 0

    @property
    def elapsed(self) -> float:
        """Seconds between the first and latest beat."""
        return max(0.0, self.updated - self.started)

    @property
    def finished(self) -> int:
        """Specs in a terminal state."""
        return sum(1 for s in self.specs.values() if s.terminal)

    @property
    def cached(self) -> int:
        """Specs served from the result cache."""
        return sum(1 for s in self.specs.values() if s.state == "cached")

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over terminal specs (0 when none finished)."""
        finished = self.finished
        return self.cached / finished if finished else 0.0

    @property
    def records_per_second(self) -> float:
        """Aggregate simulated records/sec over terminal beats."""
        seconds = sum(s.seconds for s in self.specs.values() if s.terminal)
        records = sum(s.instructions for s in self.specs.values()
                      if s.terminal)
        return records / seconds if seconds > 0 else 0.0

    @property
    def eta_seconds(self) -> float | None:
        """Naive session ETA from the finished-spec rate (None when cold).

        Guarded against every degenerate board: no specs at all (an empty
        or still-cold board has no ETA, not "done"), zero completed runs,
        and an all-cached session whose beats share one timestamp
        (``elapsed`` 0) — none of these may divide by zero.
        """
        if not self.specs:
            return None
        remaining = len(self.specs) - self.finished
        if remaining <= 0:
            return 0.0
        if not self.finished or self.elapsed <= 0:
            return None
        return remaining * (self.elapsed / self.finished)

    def utilization(self, workers: int | None = None) -> float:
        """Busy fraction: simulated seconds over workers x wall time."""
        lanes = workers if workers else max(1, len(self.worker_seconds))
        if self.elapsed <= 0:
            return 0.0
        busy = sum(self.worker_seconds.values())
        return min(1.0, busy / (lanes * self.elapsed))

    @property
    def all_done(self) -> bool:
        """True when every known spec reached a terminal state."""
        return bool(self.specs) and self.finished == len(self.specs)


def read_board(path) -> BoardState | None:
    """Fold a status file into a :class:`BoardState`, tolerantly.

    ``None`` when the file does not exist yet.  A truncated or corrupt
    line (a writer crashed mid-append, or the reader raced the tail)
    increments ``skipped`` and is otherwise ignored.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError:
        return None
    state = BoardState()
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            state.skipped += 1
            continue
        if not isinstance(record, dict) or "spec" not in record:
            state.skipped += 1
            continue
        t = float(record.get("t", 0.0))
        spec = str(record["spec"])
        worker = str(record.get("worker", "?"))
        state.beats += 1
        state.started = t if state.started == 0.0 else min(state.started, t)
        state.updated = max(state.updated, t)
        state.workers[worker] = state.workers.get(worker, 0) + 1
        previous = state.specs.get(spec)
        status = SpecStatus(
            spec=spec,
            state=str(record.get("state", "?")),
            worker=worker,
            done=int(record.get("done", 0) or 0),
            total=int(record.get("total", 0) or 0),
            t=t,
            first_t=previous.first_t if previous else t,
            instructions=int(record.get("instructions", 0) or 0),
            seconds=float(record.get("seconds", 0.0) or 0.0),
            reason=str(record.get("reason", "") or ""),
        )
        if previous is not None:
            status.total = status.total or previous.total
            status.instructions = status.instructions or previous.instructions
            status.seconds = status.seconds or previous.seconds
        state.specs[spec] = status
        if status.terminal and status.seconds:
            state.worker_seconds[worker] = (
                state.worker_seconds.get(worker, 0.0) + status.seconds)
    return state


def sweep_incomplete(board: StatusBoard, labels, state: str = "cancelled",
                     reason: str | None = None) -> int:
    """Drive every non-terminal ``label`` on ``board`` to a final state.

    The orchestrator-side half of graceful shutdown: when a batch aborts
    (SIGINT/SIGTERM, a crashed worker) the board would otherwise keep
    stale ``queued``/``measuring`` entries forever — ``repro top`` shows a
    session that never ends.  This folds the board once and appends one
    terminal beat (default ``cancelled``) for each known label that has
    not already finished.  Returns the number of beats written.  Labels
    that never appeared on the board are swept too: their work was
    requested and will not happen.
    """
    folded = read_board(board.path)
    swept = 0
    for label in labels:
        status = folded.specs.get(label) if folded is not None else None
        if status is not None and status.terminal:
            continue
        extra = {"reason": reason} if reason else {}
        board.beat(label, state, **extra)
        swept += 1
    return swept


@contextlib.contextmanager
def shutdown_sweep(board: StatusBoard | None, labels):
    """Guarantee every ``label`` reaches a terminal state on ``board``.

    Wrap a fan-out's dispatch in this: on SIGTERM/SIGINT the in-flight
    labels are swept to ``cancelled`` (then the usual
    ``SystemExit``/``KeyboardInterrupt`` propagates); on any other
    exception — a crashed worker surfacing through the backend — they are
    swept to ``failed`` with the reason.  A clean exit writes nothing:
    the work beats its own terminal states.  Sweeping is idempotent
    (already-terminal labels are skipped) so nested guards and
    handler-plus-except double fires are safe.

    Signal handlers only install from the main thread (Python's rule) and
    only for this block — the previous handlers are restored on exit.
    With ``board`` ``None`` (no ``$REPRO_STATUS``) the block runs bare.
    """
    if board is None:
        yield
        return
    labels = list(labels)
    previous: dict[int, object] = {}

    def _on_signal(signum: int, _frame) -> None:
        sweep_incomplete(board, labels, "cancelled",
                         reason=f"signal {signal.Signals(signum).name}")
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + signum)

    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _on_signal)
            except (ValueError, OSError):  # pragma: no cover - exotic host
                break
    try:
        yield
    except (KeyboardInterrupt, SystemExit):
        sweep_incomplete(board, labels, "cancelled", reason="interrupted")
        raise
    except BaseException as problem:
        sweep_incomplete(board, labels, "failed",
                         reason=f"{type(problem).__name__}: {problem}")
        raise
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _bar(fraction: float, width: int = 16) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _eta_text(state: BoardState) -> str:
    eta = state.eta_seconds
    if eta is None:
        return "eta --"
    if eta <= 0:
        return "eta done"
    if eta < 90:
        return f"eta {eta:.0f}s"
    return f"eta {eta / 60:.1f}m"


def render_status(state: BoardState, width: int = 80,
                  max_specs: int = 24) -> str:
    """The live multi-line ``repro top`` panel for one board fold."""
    head = (
        f"specs {state.finished}/{len(state.specs)} done "
        f"({state.cached} cached, "
        f"{100 * state.cache_hit_rate:.0f}% hit rate)  "
        f"{state.records_per_second:,.0f} rec/s  "
        f"{_eta_text(state)}  "
        f"elapsed {state.elapsed:.1f}s"
    )
    lines = [head[:width], "-" * min(width, len(head))]
    active = sorted(state.specs.values(),
                    key=lambda s: (s.terminal, -s.t))
    for status in active[:max_specs]:
        fraction = (status.done / status.total) if status.total else (
            1.0 if status.terminal else 0.0)
        progress = (f"{status.done:,}/{status.total:,}"
                    if status.total else "")
        lines.append(
            f"{status.spec[:32]:32s} {status.state:9s} "
            f"[{_bar(fraction)}] {progress:>17s}  {status.worker[:18]}"
        )
    if len(active) > max_specs:
        lines.append(f"... {len(active) - max_specs} more spec(s)")
    busy = ", ".join(
        f"{name}: {count}" for name, count in sorted(state.workers.items())
    )
    lines.append(
        f"workers [{busy}]  utilization {100 * state.utilization():.0f}%"
    )
    if state.skipped:
        lines.append(f"({state.skipped} unreadable heartbeat line(s) skipped)")
    return "\n".join(line[:width] for line in lines)


def render_summary(state: BoardState) -> str:
    """One-line final summary (dumb-terminal degradation)."""
    return (
        f"session: {state.finished}/{len(state.specs)} specs done, "
        f"{state.cached} cached "
        f"({100 * state.cache_hit_rate:.0f}% hit rate), "
        f"{state.records_per_second:,.0f} rec/s over "
        f"{len(state.workers)} worker(s), "
        f"utilization {100 * state.utilization():.0f}%, "
        f"elapsed {state.elapsed:.1f}s"
    )


def top(path, interval: float = 1.0, once: bool = False,
        stream=None, width: int = 80, idle_limit: float = 30.0) -> int:
    """Tail a status board and render it until the session completes.

    On a TTY the panel redraws in place each ``interval``; on a dumb
    terminal (pipes, CI logs) only state-count changes print, ending with
    the final summary.  Exits 0 once every spec is terminal (after one
    final render), or when the board has been idle for ``idle_limit``
    seconds; exits 1 when the file never appears.  ``once`` renders a
    single fold and returns immediately.
    """
    stream = stream if stream is not None else sys.stdout
    is_tty = bool(getattr(stream, "isatty", lambda: False)())
    last_signature = None
    last_change = time.monotonic()
    while True:
        state = read_board(path)
        if state is None:
            if once:
                print(f"no status board at {path}", file=stream)
                return 1
            if time.monotonic() - last_change > idle_limit:
                print(f"no status board at {path}", file=stream)
                return 1
            time.sleep(interval)
            continue
        signature = (state.beats, state.finished)
        if is_tty and not once:
            stream.write("\x1b[H\x1b[2J" + render_status(state, width)
                         + "\n")
            stream.flush()
        elif signature != last_signature:
            if once:
                print(render_status(state, width), file=stream)
            else:
                print(
                    f"[{state.finished}/{len(state.specs)} done] "
                    + render_summary(state),
                    file=stream,
                )
        if signature != last_signature:
            last_change = time.monotonic()
        last_signature = signature
        if once:
            return 0
        if state.all_done or (time.monotonic() - last_change > idle_limit):
            if not is_tty:
                print(render_summary(state), file=stream)
            else:
                stream.write(render_summary(state) + "\n")
            return 0
        time.sleep(interval)
