"""Time-series sampling: periodic snapshots of the hierarchy's pressure.

The run-end aggregates of :class:`repro.metrics.counters.SimCounters`
cannot say *when* BTB1 occupancy saturated or how transfer-bus utilization
tracked the miss bursts.  The :class:`Sampler` answers that: every
``interval`` simulated cycles it snapshots occupancy, rolling (since the
previous sample, not cumulative) outcome rates, tracker-file pressure and
transfer utilization into a compact columnar record — one python list per
column, no per-sample objects — exportable as CSV and renderable as the
``repro timeline`` ASCII chart.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.simulator import Simulator

#: Sampled columns, in CSV order.  "Rolling" columns are rates over the
#: window since the previous sample; occupancy/pressure columns are
#: point-in-time snapshots.
COLUMNS = (
    "cycle",
    "instructions",
    "btb1_occupancy",
    "btbp_occupancy",
    "btb2_occupancy",
    "good_rate",            # good outcomes / branches, rolling window
    "bad_rate",             # bad outcomes / branches, rolling window
    "icache_miss_rate",     # demand misses / cycle, rolling window
    "trackers_busy",
    "transfer_pending",     # rows queued, not yet issued
    "transfer_inflight",    # rows issued, not yet completed
    "transfer_utilization", # rows read / cycle, rolling window
)

#: Sparkline glyphs, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


class Sampler:
    """Fixed-interval columnar snapshotter of one simulator's state."""

    def __init__(self, interval: int = 1024) -> None:
        if interval < 1:
            raise ValueError("interval must be at least 1")
        self.interval = interval
        self.columns: dict[str, list[float]] = {name: [] for name in COLUMNS}
        self._next_cycle = 0.0
        # Previous-sample counter snapshot for the rolling-window rates.
        self._last_branches = 0
        self._last_good = 0
        self._last_icache_misses = 0
        self._last_rows_read = 0
        self._last_cycle = 0.0

    def __len__(self) -> int:
        return len(self.columns["cycle"])

    def maybe_sample(self, simulator: "Simulator") -> None:
        """Take a sample if ``interval`` cycles elapsed since the last."""
        if simulator._cycle >= self._next_cycle:
            self.sample(simulator)

    def sample(self, simulator: "Simulator") -> None:
        """Append one snapshot of ``simulator`` unconditionally."""
        counters = simulator.counters
        cycle = simulator._cycle
        branches = counters.branches
        good = branches - counters.bad_outcomes
        instructions = counters.instructions
        icache_misses = counters.icache_demand_misses
        window_branches = branches - self._last_branches
        window_good = good - self._last_good
        window_misses = icache_misses - self._last_icache_misses
        window_cycles = cycle - self._last_cycle
        hierarchy = simulator.hierarchy
        preload = simulator.preload
        rows_read = preload.transfer.rows_read if preload is not None else 0
        window_rows = rows_read - self._last_rows_read

        values = {
            "cycle": cycle,
            "instructions": float(instructions),
            "btb1_occupancy": hierarchy.btb1.occupancy(),
            "btbp_occupancy": (
                hierarchy.btbp.occupancy() if hierarchy.btbp is not None else 0.0
            ),
            "btb2_occupancy": (
                simulator.btb2.occupancy() if simulator.btb2 is not None else 0.0
            ),
            "good_rate": (
                window_good / window_branches if window_branches else 0.0
            ),
            "bad_rate": (
                (window_branches - window_good) / window_branches
                if window_branches else 0.0
            ),
            "icache_miss_rate": (
                window_misses / window_cycles if window_cycles > 0 else 0.0
            ),
            "trackers_busy": (
                float(preload.trackers.busy()) if preload is not None else 0.0
            ),
            "transfer_pending": (
                float(preload.transfer.pending_rows) if preload is not None else 0.0
            ),
            "transfer_inflight": (
                float(preload.transfer.inflight_rows) if preload is not None else 0.0
            ),
            "transfer_utilization": (
                window_rows / window_cycles if window_cycles > 0 else 0.0
            ),
        }
        for name, value in values.items():
            self.columns[name].append(value)
        self._last_branches = branches
        self._last_good = good
        self._last_icache_misses = icache_misses
        self._last_rows_read = rows_read
        self._last_cycle = cycle
        self._next_cycle = cycle + self.interval

    # -- export ---------------------------------------------------------------

    def rows(self) -> list[tuple[float, ...]]:
        """The samples as row tuples in :data:`COLUMNS` order."""
        return list(zip(*(self.columns[name] for name in COLUMNS)))

    def write_csv(self, path: str | Path) -> int:
        """Write the samples as CSV; returns the sample count."""
        with Path(path).open("w", newline="") as stream:
            writer = csv.writer(stream)
            writer.writerow(COLUMNS)
            writer.writerows(self.rows())
        return len(self)


def _downsample(values: Sequence[float], width: int) -> list[float]:
    """Reduce ``values`` to at most ``width`` points (bucket means)."""
    if len(values) <= width:
        return list(values)
    out = []
    for bucket in range(width):
        start = bucket * len(values) // width
        stop = max(start + 1, (bucket + 1) * len(values) // width)
        chunk = values[start:stop]
        out.append(sum(chunk) / len(chunk))
    return out


def sparkline(values: Sequence[float], width: int = 64) -> str:
    """Unicode sparkline of ``values``, downsampled to ``width`` chars."""
    points = _downsample(values, width)
    if not points:
        return ""
    low, high = min(points), max(points)
    if high <= low:
        return _SPARK[0] * len(points)
    scale = (len(_SPARK) - 1) / (high - low)
    return "".join(_SPARK[int((point - low) * scale)] for point in points)


def render_timeline(sampler: Sampler, title: str = "",
                    width: int = 64) -> str:
    """Multi-line ASCII timeline of every sampled column.

    One sparkline row per column with its min/max annotated — enough to
    spot occupancy saturation points and preload bursts from a terminal
    without loading the CSV into a plotting tool.
    """
    lines = []
    if title:
        lines.append(title)
    count = len(sampler)
    if not count:
        return "\n".join(lines + ["(no samples)"])
    cycles = sampler.columns["cycle"]
    lines.append(
        f"{count} samples, every {sampler.interval} cycles, "
        f"cycle {cycles[0]:,.0f} .. {cycles[-1]:,.0f}"
    )
    for name in COLUMNS:
        if name == "cycle":
            continue
        values = sampler.columns[name]
        lines.append(
            f"  {name:22s} [{min(values):10.3f} .. {max(values):10.3f}] "
            f"{sparkline(values, width)}"
        )
    return "\n".join(lines)
