"""Human-readable run reports.

``format_result`` renders one :class:`~repro.engine.simulator.SimulationResult`
the way the paper's result sections discuss runs: CPI, the bad-outcome
breakdown, and the second-level activity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.events import OutcomeKind

if TYPE_CHECKING:  # avoid a metrics <-> engine import cycle at runtime
    from repro.engine.simulator import SimulationResult


def format_result(result: "SimulationResult", title: str | None = None) -> str:
    """Multi-line report of one simulation run."""
    counters = result.counters
    lines = [title or result.config_name]
    lines.append(
        f"  instructions {counters.instructions:,}  branches "
        f"{counters.branches:,}  CPI {counters.cpi:.3f}"
    )
    lines.append(
        f"  bad branch outcomes: {100 * counters.bad_outcome_fraction:.1f}% "
        f"(mispredicts {counters.mispredict_outcomes:,}, "
        f"bad surprises {counters.surprise_outcomes:,})"
    )
    for kind in OutcomeKind:
        count = counters.outcomes[kind]
        if count:
            lines.append(
                f"    {kind.value:36s} {count:9,d}  "
                f"{100 * counters.outcome_fraction(kind):5.2f}%"
            )
    if counters.penalty_cycles:
        lines.append("  penalty cycles by cause:")
        for cause, cycles in sorted(
            counters.penalty_cycles.items(), key=lambda item: -item[1]
        ):
            lines.append(f"    {cause:24s} {cycles:14,.0f}")
    if result.preload_stats:
        lines.append(f"  preload engine: {result.preload_stats}")
    if result.btbp_stats:
        lines.append(f"  BTBP writes by source: {result.btbp_stats}")
    if result.icache_stats:
        lines.append(
            f"  L1I: miss rate {100 * result.icache_stats.get('miss_rate', 0.0):.2f}%"
        )
    return "\n".join(lines)


def format_comparison(
    baseline: SimulationResult, improved: SimulationResult
) -> str:
    """Two-run CPI comparison with the improvement headline."""
    gain = (baseline.cpi - improved.cpi) / baseline.cpi * 100.0
    return "\n".join(
        [
            f"{baseline.config_name}: CPI {baseline.cpi:.3f}",
            f"{improved.config_name}: CPI {improved.cpi:.3f}",
            f"CPI improvement: {gain:.2f}%",
        ]
    )
