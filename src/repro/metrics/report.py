"""Human-readable run reports.

``format_result`` renders one :class:`~repro.engine.simulator.SimulationResult`
the way the paper's result sections discuss runs: CPI, the bad-outcome
breakdown, and the second-level activity.  ``render_run_summary`` renders
the batch-execution observability collected by
:data:`repro.experiments.pool.session_log` — cache hit rate, simulated
throughput, and per-worker attribution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.events import OutcomeKind

if TYPE_CHECKING:  # avoid a metrics <-> engine/experiments import cycle
    from repro.engine.simulator import SimulationResult
    from repro.experiments.pool import ExecutionLog
    from repro.telemetry.metrics import MetricsRegistry

#: Outcome-name column width: the longest taxonomy value, so adding an
#: OutcomeKind can never misalign the report.
_OUTCOME_WIDTH = max(len(kind.value) for kind in OutcomeKind)


def format_result(result: "SimulationResult", title: str | None = None) -> str:
    """Multi-line report of one simulation run."""
    counters = result.counters
    lines = [title or result.config_name]
    lines.append(
        f"  instructions {counters.instructions:,}  branches "
        f"{counters.branches:,}  CPI {counters.cpi:.3f}"
    )
    lines.append(
        f"  bad branch outcomes: {100 * counters.bad_outcome_fraction:.1f}% "
        f"(mispredicts {counters.mispredict_outcomes:,}, "
        f"bad surprises {counters.surprise_outcomes:,})"
    )
    for kind in OutcomeKind:
        count = counters.outcomes[kind]
        if count:
            lines.append(
                f"    {kind.value:{_OUTCOME_WIDTH}s} {count:9,d}  "
                f"{100 * counters.outcome_fraction(kind):5.2f}%"
            )
    if counters.penalty_cycles:
        lines.append("  penalty cycles by cause:")
        for cause, cycles in sorted(
            counters.penalty_cycles.items(), key=lambda item: -item[1]
        ):
            lines.append(f"    {cause:24s} {cycles:14,.0f}")
    if result.preload_stats:
        lines.append(f"  preload engine: {result.preload_stats}")
    if result.btbp_stats:
        lines.append(f"  BTBP writes by source: {result.btbp_stats}")
    if result.icache_stats:
        lines.append(
            f"  L1I: miss rate {100 * result.icache_stats.get('miss_rate', 0.0):.2f}%"
        )
    return "\n".join(lines)


def format_throughput(instructions: int, seconds: float) -> str:
    """``N instr in S s (R/s)`` — one run's simulation throughput."""
    if seconds <= 0:
        return f"{instructions:,} instr (throughput unknown)"
    return (
        f"{instructions:,} instr in {seconds:.1f} s "
        f"({instructions / seconds:,.0f}/s)"
    )


def _dispatch_lines(registry: "MetricsRegistry") -> list[str]:
    """Per-backend dispatch lines from the session metrics registry.

    For every backend that dispatched runs this session: worker
    utilization (busy seconds over capacity seconds) and mean queue wait
    vs execute time per run, all sourced from the histograms/counters
    :func:`repro.experiments.pool.run_many` records.
    """
    names = set(registry.names())
    needed = {"repro_dispatch_queue_seconds", "repro_dispatch_execute_seconds",
              "repro_pool_busy_seconds_total",
              "repro_pool_capacity_seconds_total"}
    if not needed.issubset(names):
        return []
    queue = registry.get("repro_dispatch_queue_seconds")
    execute = registry.get("repro_dispatch_execute_seconds")
    busy = registry.get("repro_pool_busy_seconds_total")
    capacity = registry.get("repro_pool_capacity_seconds_total")
    lines = []
    for backend in sorted(b for (b,) in execute._series):
        run_seconds, runs = execute.totals(backend=backend)
        wait_seconds, waits = queue.totals(backend=backend)
        cap = capacity.value(backend=backend)
        use = busy.value(backend=backend) / cap if cap > 0 else 0.0
        lines.append(
            f"_  backend {backend}: {int(runs)} dispatched, "
            f"utilization {100 * min(1.0, use):.0f}%; per run "
            f"queue wait {wait_seconds / max(1, waits):.3f} s, "
            f"execute {run_seconds / max(1, runs):.3f} s._"
        )
    return lines


def render_run_summary(log: "ExecutionLog",
                       registry: "MetricsRegistry | None" = None) -> list[str]:
    """Run-observability lines for one experiment session.

    Every line is a *timing line* (italicized in the markdown report):
    reports regenerated from a warm vs cold cache, or with different
    worker counts, are expected to differ only here.  With a ``registry``
    (typically :data:`repro.telemetry.metrics.REGISTRY`), per-backend
    dispatch accounting — worker utilization, queue wait vs execute time —
    is appended from the pool's recorded histograms.
    """
    if not log.requested:
        return ["_runs: none requested._"]
    lines = [
        f"_runs: {log.requested} unique requested across {log.batches} "
        f"batches; {log.cache_hits} served from cache, "
        f"{log.simulated} simulated (workers <= {log.max_workers})._"
    ]
    if log.audit_bypassed:
        lines.append(
            f"_  {log.audit_bypassed} audited runs bypassed the cache; "
            f"hit rate over the {log.cache_eligible} eligible: "
            f"{100 * log.cache_hits / max(1, log.cache_eligible):.0f}%._"
        )
    if log.simulated:
        lines.append(
            "_simulated "
            + format_throughput(log.simulated_instructions, log.simulated_seconds)
            + f"; batch wall time {log.batch_seconds:.1f} s._"
        )
        for name in sorted(log.workers):
            runs, seconds = log.workers[name]
            lines.append(f"_  worker {name}: {runs} runs, {seconds:.1f} s._")
    if registry is not None:
        lines.extend(_dispatch_lines(registry))
    if log.phase_seconds:
        lines.append("_report phases (host wall time):_")
        for name, seconds in sorted(
            log.phase_seconds.items(), key=lambda item: -item[1]
        ):
            lines.append(f"_  {name}: {seconds:.1f} s._")
    return lines


def format_comparison(
    baseline: SimulationResult, improved: SimulationResult
) -> str:
    """Two-run CPI comparison with the improvement headline."""
    gain = (baseline.cpi - improved.cpi) / baseline.cpi * 100.0
    return "\n".join(
        [
            f"{baseline.config_name}: CPI {baseline.cpi:.3f}",
            f"{improved.config_name}: CPI {improved.cpi:.3f}",
            f"CPI improvement: {gain:.2f}%",
        ]
    )
