"""Simulation counters and derived metrics.

:class:`SimCounters` accumulates everything a run observes; derived values
(CPI, the Figure 4 outcome fractions, penalty attribution) are computed on
demand.  The classification taxonomy follows section 5.1:

  "Bad branch outcomes are those that incur a performance penalty.
  Specifically they consist of dynamically mispredicted branches and
  surprise branches which are guessed or resolved taken.  These bad surprise
  branches are classified as compulsory (first time that branch is seen),
  latency (surprise because a prediction wasn't available in time ...), or
  capacity (branch was seen before, and not categorized as missed due to
  latency)."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import OutcomeKind


@dataclass
class SimCounters:
    """Raw event counts accumulated by one simulation run."""

    instructions: int = 0
    branches: int = 0
    taken_branches: int = 0
    cycles: float = 0.0
    outcomes: dict[OutcomeKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in OutcomeKind}
    )
    penalty_cycles: dict[str, float] = field(default_factory=dict)
    icache_demand_misses: int = 0
    icache_hidden_misses: int = 0
    icache_partially_hidden_misses: int = 0
    #: Trace discontinuities (time-slice switches, interrupts): the
    #: lookahead searcher is redirected like any other pipeline restart.
    context_switches: int = 0

    def record_outcome(self, kind: OutcomeKind) -> None:
        """Count one classified dynamic branch outcome."""
        self.outcomes[kind] += 1

    def attribute_penalty(self, cause: str, cycles: float) -> None:
        """Attribute ``cycles`` of stall to ``cause``.

        Attribution only — the simulator owns the clock and folds penalty
        cycles into it; ``cycles`` (the total) is set from that clock.
        """
        self.penalty_cycles[cause] = self.penalty_cycles.get(cause, 0.0) + cycles

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every raw counter.

        ``cycles`` and the penalty attributions are binary64 floats; JSON
        round-trips them exactly (repr-based encoding), so a restored run's
        derived CPI is bit-identical.
        """
        return {
            "instructions": self.instructions,
            "branches": self.branches,
            "taken_branches": self.taken_branches,
            "cycles": self.cycles,
            "outcomes": {kind.value: count for kind, count in self.outcomes.items()},
            "penalty_cycles": dict(self.penalty_cycles),
            "icache_demand_misses": self.icache_demand_misses,
            "icache_hidden_misses": self.icache_hidden_misses,
            "icache_partially_hidden_misses": self.icache_partially_hidden_misses,
            "context_switches": self.context_switches,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self.instructions = state["instructions"]
        self.branches = state["branches"]
        self.taken_branches = state["taken_branches"]
        self.cycles = state["cycles"]
        self.outcomes = {kind: 0 for kind in OutcomeKind}
        for name, count in state["outcomes"].items():
            self.outcomes[OutcomeKind(name)] = count
        self.penalty_cycles = dict(state["penalty_cycles"])
        self.icache_demand_misses = state["icache_demand_misses"]
        self.icache_hidden_misses = state["icache_hidden_misses"]
        self.icache_partially_hidden_misses = state["icache_partially_hidden_misses"]
        self.context_switches = state["context_switches"]

    # -- derived -------------------------------------------------------------

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def bad_outcomes(self) -> int:
        """Total dynamic branch outcomes that incur a penalty."""
        return sum(count for kind, count in self.outcomes.items() if kind.is_bad)

    @property
    def surprise_outcomes(self) -> int:
        """Total bad surprise outcomes."""
        return sum(count for kind, count in self.outcomes.items() if kind.is_surprise)

    @property
    def mispredict_outcomes(self) -> int:
        """Total dynamic misprediction outcomes."""
        return sum(
            count for kind, count in self.outcomes.items() if kind.is_mispredict
        )

    def outcome_fraction(self, kind: OutcomeKind) -> float:
        """Fraction of all branch outcomes classified as ``kind``."""
        return self.outcomes[kind] / self.branches if self.branches else 0.0

    @property
    def total_penalty_cycles(self) -> float:
        """All stall cycles attributed across causes."""
        return sum(self.penalty_cycles.values())

    def penalty_fraction(self, cause: str) -> float:
        """Share of attributed penalty cycles charged to ``cause``.

        Returns 0.0 on an empty run (no penalties attributed) and for
        causes never seen, so report code can divide unconditionally.
        """
        total = self.total_penalty_cycles
        if not total:
            return 0.0
        return self.penalty_cycles.get(cause, 0.0) / total

    @property
    def bad_outcome_fraction(self) -> float:
        """Fraction of all branch outcomes that are bad (Figure 4 headline)."""
        return self.bad_outcomes / self.branches if self.branches else 0.0

    def outcome_fractions(self) -> dict[OutcomeKind, float]:
        """Per-kind outcome fractions (the Figure 4 bars)."""
        return {kind: self.outcome_fraction(kind) for kind in OutcomeKind}


def cpi_improvement(baseline_cpi: float, improved_cpi: float) -> float:
    """Percent CPI improvement of ``improved`` over ``baseline`` (Figure 2)."""
    if baseline_cpi <= 0:
        raise ValueError("baseline CPI must be positive")
    return (baseline_cpi - improved_cpi) / baseline_cpi * 100.0


def btb2_effectiveness(btb2_gain: float, large_btb1_gain: float) -> float:
    """BTB2 effectiveness: gain from the BTB2 relative to the large BTB1.

    "the ratio of the improvement from adding the BTB2 compared to the
    improvement from adding the unrealistically large BTB1" (5.1), in
    percent.
    """
    if large_btb1_gain == 0:
        return 0.0
    return btb2_gain / large_btb1_gain * 100.0
