"""Metrics: counters, outcome classification, paper-style reports."""

from repro.metrics.counters import SimCounters, btb2_effectiveness, cpi_improvement
from repro.metrics.report import format_comparison, format_result

__all__ = [
    "SimCounters",
    "btb2_effectiveness",
    "cpi_improvement",
    "format_comparison",
    "format_result",
]
