"""Pure invariant checks over simulator state.

Every function takes live structures and returns a list of problem strings
(empty = invariant holds).  They are side-effect free so the
:class:`repro.audit.auditor.Auditor` can run them at any hook point, tests
can call them directly against hand-corrupted state, and ``collect`` mode
can keep simulating past a violation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.preload.tracker import TrackerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.btb.entry import BTBEntry
    from repro.btb.storage import BranchTargetBuffer
    from repro.core.events import Prediction, PredictionLevel
    from repro.core.hierarchy import FirstLevelPredictor
    from repro.engine.simulator import Simulator
    from repro.metrics.counters import SimCounters
    from repro.preload.engine import PreloadEngine


def check_btb_row(btb: "BranchTargetBuffer", ways: list["BTBEntry"]) -> list[str]:
    """Structural sanity of one row: width, unique tags, MRU consistency."""
    problems = []
    if len(ways) > btb.ways:
        problems.append(
            f"{btb.name}: row holds {len(ways)} entries but has "
            f"{btb.ways} ways"
        )
    addresses = [entry.address for entry in ways]
    if len(set(addresses)) != len(addresses):
        duplicates = sorted(
            {address for address in addresses if addresses.count(address) > 1}
        )
        problems.append(
            f"{btb.name}: duplicate tag(s) in one row: "
            + ", ".join(hex(address) for address in duplicates)
        )
    if ways and not btb.is_mru(ways[0]):
        problems.append(
            f"{btb.name}: head entry {ways[0].address:#x} is not is_mru"
        )
    for entry in ways[1:]:
        if btb.is_mru(entry):
            problems.append(
                f"{btb.name}: non-head entry {entry.address:#x} reports is_mru"
            )
    return problems


def check_btb(btb: "BranchTargetBuffer") -> list[str]:
    """Row-by-row structural sanity of a whole BTB."""
    problems = []
    for ways in btb._rows:
        if ways:
            problems.extend(check_btb_row(btb, ways))
    return problems


def _identity_set(entries: Iterable["BTBEntry"]) -> set[int]:
    return {id(entry) for entry in entries}


def check_exclusivity(
    hierarchy: "FirstLevelPredictor", btb2=None
) -> list[str]:
    """No entry *object* may be resident in two structures at once.

    Address duplication between BTB1 and BTBP is architecturally legal
    (the BTB1 copy wins on a parallel read) and the BTB2 intentionally
    holds equal-but-distinct clones of first-level content — but shared
    *references* mean training one structure silently mutates another,
    which the move protocol never does.
    """
    problems = []
    btb1_ids = _identity_set(hierarchy.btb1)
    btbp_ids = (
        _identity_set(hierarchy.btbp) if hierarchy.btbp is not None else set()
    )
    shared = btb1_ids & btbp_ids
    if shared:
        problems.append(
            f"BTB1 and BTBP share {len(shared)} entry object(s) by identity"
        )
    if btb2 is not None:
        btb2_ids = _identity_set(btb2)
        leaked = btb2_ids & (btb1_ids | btbp_ids)
        if leaked:
            problems.append(
                f"BTB2 shares {len(leaked)} entry object(s) with the first "
                "level (victim/surprise writes must clone)"
            )
    return problems


def check_trackers(engine: "PreloadEngine") -> list[str]:
    """Tracker-file consistency (section 3.6 semantics)."""
    problems = []
    blocks: dict[int, int] = {}
    for index, tracker in enumerate(engine.trackers.trackers):
        if tracker.state is TrackerState.FREE:
            if tracker.btb1_miss_valid or tracker.icache_miss_valid:
                problems.append(
                    f"tracker[{index}]: FREE but has valid bits set"
                )
            if tracker.block_deadline is not None:
                problems.append(
                    f"tracker[{index}]: FREE but BLOCK-mode deadline armed "
                    f"(stale deadline survived a reset)"
                )
            if tracker.outstanding_rows or tracker.enqueued_rows:
                problems.append(
                    f"tracker[{index}]: FREE with rows outstanding/enqueued"
                )
            continue
        if tracker.block in blocks:
            problems.append(
                f"tracker[{index}] and tracker[{blocks[tracker.block]}] both "
                f"track block {tracker.block:#x}"
            )
        blocks[tracker.block] = index
        if tracker.outstanding_rows < 0:
            problems.append(
                f"tracker[{index}]: negative outstanding rows "
                f"({tracker.outstanding_rows})"
            )
        if tracker.block_deadline is not None:
            if tracker.state is not TrackerState.PARTIAL:
                problems.append(
                    f"tracker[{index}]: deadline armed in state "
                    f"{tracker.state.value} (only BLOCK-mode PARTIAL waits)"
                )
            elif tracker.fully_active:
                problems.append(
                    f"tracker[{index}]: deadline armed on a fully active "
                    "tracker (upgrade should have disarmed it)"
                )
        if tracker.state is TrackerState.ICACHE_ONLY and (
            tracker.outstanding_rows or tracker.enqueued_rows
        ):
            problems.append(
                f"tracker[{index}]: ICACHE_ONLY tracker has a search in flight"
            )
    return problems


def check_counter_conservation(simulator: "Simulator") -> list[str]:
    """Outcome and cycle conservation laws of the penalty model."""
    counters: "SimCounters" = simulator.counters
    timing = simulator.timing
    problems = []
    classified = sum(counters.outcomes.values())
    if classified != counters.branches:
        problems.append(
            f"outcome kinds sum to {classified}, expected branches = "
            f"{counters.branches}"
        )
    taken_extra = max(
        0.0, timing.taken_branch_decode_cycles - timing.base_decode_cycles
    )
    expected = (
        counters.instructions * timing.base_decode_cycles
        + counters.taken_branches * taken_extra
        + sum(counters.penalty_cycles.values())
    )
    tolerance = 1e-6 * max(1.0, counters.cycles)
    if abs(counters.cycles - expected) > tolerance:
        problems.append(
            f"cycle conservation: clock = {counters.cycles:.6f} but decode "
            f"+ taken + penalties = {expected:.6f} "
            f"(delta {counters.cycles - expected:+.6f})"
        )
    return problems


def check_prediction_residency(
    hierarchy: "FirstLevelPredictor", prediction: "Prediction"
) -> list[str]:
    """A used prediction's entry must be resident where it claims to be."""
    from repro.core.events import PredictionLevel

    if prediction.level is PredictionLevel.BTB1:
        structure = hierarchy.btb1
    else:
        structure = hierarchy.btbp
        if structure is None:
            return [
                f"prediction for {prediction.branch_address:#x} claims BTBP "
                "but the configuration has no BTBP"
            ]
    resident = structure.lookup(prediction.entry.address)
    if resident is not prediction.entry:
        where = "absent" if resident is None else "a different object"
        return [
            f"used prediction for {prediction.branch_address:#x} "
            f"({prediction.level.value}): entry is {where} in "
            f"{structure.name}"
        ]
    return []


def check_simulator(simulator: "Simulator") -> list[str]:
    """The full structural scan: every applicable whole-state invariant."""
    problems = check_btb(simulator.hierarchy.btb1)
    if simulator.hierarchy.btbp is not None:
        problems.extend(check_btb(simulator.hierarchy.btbp))
    if simulator.btb2 is not None:
        problems.extend(check_btb(simulator.btb2))
    problems.extend(check_exclusivity(simulator.hierarchy, simulator.btb2))
    if simulator.preload is not None:
        problems.extend(check_trackers(simulator.preload))
    return problems
