"""Runtime invariant auditing and event tracing for the simulator.

``repro.audit`` is the machine-checked answer to "do we trust the model's
fine-grained state?".  The paper's claims hinge on structural behaviour —
semi-exclusive BTB1/BTB2 movement, Table 1/2 search timing, tracker
filtering — and related work (e.g. *Branch Target Buffer Reverse
Engineering on Arm*, arXiv:2412.05413) shows replacement/indexing details
are exactly where models drift from hardware.  Since PR 1 every figure is
served from a shared result cache, so one silent state bug poisons every
downstream table; invariants are checked at runtime instead of eyeballed.

Design: every audited component (:class:`repro.engine.simulator.Simulator`,
:class:`repro.core.search.LookaheadSearch`,
:class:`repro.btb.storage.BranchTargetBuffer`,
:class:`repro.preload.engine.PreloadEngine`) carries an ``audit`` attribute
that defaults to ``None``; hook sites are a single attribute test, so the
subsystem is zero-cost when off.  Passing an :class:`Auditor` to the
simulator wires it into the whole tree (:meth:`Auditor.attach`).

Checked invariants (see :mod:`repro.audit.invariants` for the detail):

* **counter conservation** — outcome kinds sum to ``branches``; attributed
  penalty cycles plus decode time reconstruct the total clock;
* **monotone clocks** — decode, search (between restarts), and transfer
  clocks never run backward;
* **BTB structural sanity** — row width within ``ways``, no duplicate
  tags in a row, MRU bookkeeping consistent with :meth:`is_mru`;
* **first-level/second-level exclusivity** — entry *objects* live in at
  most one structure (levels exchange clones, never share references);
* **tracker-file consistency** — one tracker per 4 KB block, no armed
  BLOCK-mode deadline on a reset or fully-active tracker, no outstanding
  rows on FREE/ICACHE_ONLY trackers;
* **prediction residency** — a used prediction's entry object is resident
  in the structure the prediction claims it came from.

Usage::

    from repro.audit import Auditor
    from repro.engine.simulator import Simulator

    sim = Simulator(config, audit=Auditor())
    sim.run(trace)          # raises AuditViolation on the first breach

The ``REPRO_AUDIT`` environment variable (``1``/``true``/``on``) makes
:func:`repro.experiments.common.run_workload` audit every simulation it
performs — the CLI's ``--audit`` flag sets it, so any figure or the whole
``run_all`` report can be re-executed under audit.  Audited runs bypass
result-cache *reads* (a cache hit would skip the checks) but still publish
their results, which are identical to unaudited ones.

The property-fuzz harness lives in :mod:`repro.audit.fuzz` (driven by
``scripts/fuzz_audit.py`` and ``tests/test_audit_fuzz.py``): seeded random
traces through every shipped configuration variant with all audits
enabled, shrinking any failure to a minimal trace.
"""

from repro.audit.auditor import AUDIT_ENV, Auditor, AuditViolation, audit_from_env

__all__ = ["AUDIT_ENV", "Auditor", "AuditViolation", "audit_from_env"]
