"""The :class:`Auditor`: event tracing plus invariant checks at hook points.

The auditor is the single object the audited components talk to.  It keeps
a bounded ring of recent events (the trail attached to every violation),
per-check run counters, and the clock watermarks for the monotonicity
checks.  Cheap local checks run at every hook; the full structural scan
(:func:`repro.audit.invariants.check_simulator`) runs every ``interval``
simulated instructions and once more at ``finish``.

Failure handling: by default the first violation raises
:class:`AuditViolation` (what the fuzz harness wants — the failing trace
can then be shrunk); with ``collect=True`` violations accumulate in
:attr:`Auditor.violations` and simulation continues.
"""

from __future__ import annotations

import os
from collections import Counter, deque
from typing import TYPE_CHECKING

from repro.audit import invariants

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.btb.entry import BTBEntry
    from repro.btb.storage import BranchTargetBuffer
    from repro.core.events import Prediction
    from repro.core.hierarchy import FirstLevelPredictor
    from repro.core.search import LookaheadSearch
    from repro.engine.simulator import Simulator
    from repro.preload.engine import PreloadEngine
    from repro.trace.record import TraceRecord

#: Environment variable enabling auditing in every ``run_workload`` call
#: (``1``/``true``/``on``); set by the CLI's ``--audit`` flag so audit mode
#: survives into pool worker processes without threading a flag through
#: every figure runner.
AUDIT_ENV = "REPRO_AUDIT"


def audit_from_env() -> bool:
    """True when ``REPRO_AUDIT`` asks for audited simulation runs."""
    return os.environ.get(AUDIT_ENV, "").strip().lower() in ("1", "true", "on")


class AuditViolation(AssertionError):
    """An invariant breach, with the check name and recent event trail."""

    def __init__(self, check: str, problems: list[str],
                 events: tuple[tuple, ...] = ()) -> None:
        self.check = check
        self.problems = list(problems)
        self.events = events
        super().__init__(self._render())

    def _render(self) -> str:
        lines = [f"audit check '{self.check}' failed:"]
        lines += [f"  - {problem}" for problem in self.problems]
        if self.events:
            lines.append(f"  last {len(self.events)} events:")
            lines += [
                "    " + " ".join(str(part) for part in event)
                for event in self.events
            ]
        return "\n".join(lines)


class Auditor:
    """Pluggable runtime invariant checker and event tracer.

    One auditor audits one simulator: :meth:`attach` (called by
    ``Simulator.__init__``) plants ``self`` on the simulator's search
    pipeline, BTB structures, and preload engine, whose hook sites are
    no-ops while their ``audit`` attribute is ``None``.
    """

    def __init__(self, interval: int = 2048, trace_depth: int = 64,
                 collect: bool = False) -> None:
        if interval < 1:
            raise ValueError("interval must be at least 1")
        self.interval = interval
        self.collect = collect
        #: Recent event tuples, newest last (the violation trail).
        self.events: deque[tuple] = deque(maxlen=trace_depth)
        #: Violations accumulated in ``collect`` mode.
        self.violations: list[AuditViolation] = []
        #: check name -> number of times it ran (observability).
        self.checks_run: Counter[str] = Counter()
        self._steps = 0
        self._decode_watermark = 0.0
        self._search_watermark: int | None = None
        self._transfer_watermark = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, simulator: "Simulator") -> None:
        """Wire this auditor into ``simulator`` and its components."""
        simulator.search.audit = self
        simulator.hierarchy.btb1.audit = self
        if simulator.hierarchy.btbp is not None:
            simulator.hierarchy.btbp.audit = self
        if simulator.btb2 is not None:
            simulator.btb2.audit = self
        if simulator.preload is not None:
            simulator.preload.audit = self

    # -- failure plumbing --------------------------------------------------

    def _report(self, check: str, problems: list[str]) -> None:
        self.checks_run[check] += 1
        if not problems:
            return
        violation = AuditViolation(check, problems, tuple(self.events))
        if self.collect:
            self.violations.append(violation)
        else:
            raise violation

    # -- hooks: simulator --------------------------------------------------

    def after_step(self, simulator: "Simulator", record: "TraceRecord") -> None:
        """Per-instruction checks: clock monotonicity + periodic full scan."""
        self._steps += 1
        self.events.append(("step", self._steps, hex(record.address)))
        problems = []
        if simulator._cycle < self._decode_watermark:
            problems.append(
                f"decode clock moved backward: {simulator._cycle} < "
                f"{self._decode_watermark}"
            )
        self._decode_watermark = simulator._cycle
        search_cycle = simulator.search.cycle
        if self._search_watermark is not None and \
                search_cycle < self._search_watermark:
            problems.append(
                f"search clock moved backward without a restart: "
                f"{search_cycle} < {self._search_watermark}"
            )
        self._search_watermark = search_cycle
        if simulator.preload is not None:
            transfer_clock = simulator.preload.transfer.clock
            if transfer_clock < self._transfer_watermark:
                problems.append(
                    f"transfer clock moved backward: {transfer_clock} < "
                    f"{self._transfer_watermark}"
                )
            self._transfer_watermark = transfer_clock
        self._report("clock_monotonicity", problems)
        if self._steps % self.interval == 0:
            self._report("structural_scan",
                         invariants.check_simulator(simulator))

    def after_finish(self, simulator: "Simulator") -> None:
        """End-of-run checks: final structural scan + counter conservation."""
        self.events.append(("finish", self._steps))
        self._report("structural_scan", invariants.check_simulator(simulator))
        self._report("counter_conservation",
                     invariants.check_counter_conservation(simulator))

    def on_prediction_used(self, hierarchy: "FirstLevelPredictor",
                           prediction: "Prediction") -> None:
        """A dynamic prediction is being applied at decode."""
        self.events.append(
            ("predict", hex(prediction.branch_address),
             prediction.level.value, prediction.ready_cycle)
        )
        self._report(
            "prediction_residency",
            invariants.check_prediction_residency(hierarchy, prediction),
        )

    # -- hooks: search pipeline --------------------------------------------

    def on_search_restart(self, search: "LookaheadSearch", address: int,
                          cycle: int) -> None:
        """Pipeline restart: the one event allowed to rewind the search clock."""
        self.events.append(("search_restart", hex(address), cycle))
        self._search_watermark = cycle

    # -- hooks: BTB storage ------------------------------------------------

    def on_btb_write(self, btb: "BranchTargetBuffer", operation: str,
                     ways: list["BTBEntry"]) -> None:
        """Row-local structural check after any mutating BTB operation."""
        self.events.append(
            ("btb", btb.name, operation,
             hex(ways[0].address) if ways else "-")
        )
        self._report("btb_row", invariants.check_btb_row(btb, ways))

    # -- hooks: preload engine ---------------------------------------------

    def on_tracker_event(self, engine: "PreloadEngine", what: str) -> None:
        """Tracker-file consistency after any tracker lifecycle event."""
        self.events.append(("tracker", what, engine.trackers.busy()))
        self._report("trackers", invariants.check_trackers(engine))

    # -- introspection -----------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Checks run by name (for reports and tests)."""
        return dict(self.checks_run)
