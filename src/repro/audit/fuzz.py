"""Property-fuzz harness: random traces, every config, all audits on.

The harness generates seeded random programs and walks (via
:mod:`repro.workloads`), mutates the resulting traces with random slice
deletions — every subsequence of a valid trace is itself a valid trace,
the simulator treats the splice points as context switches — and runs
them through each shipped :class:`~repro.core.config.PredictorConfig`
variant with a strict :class:`~repro.audit.Auditor` attached.  Any
:class:`~repro.audit.AuditViolation` is shrunk (ddmin-style chunk
removal, which again only ever produces valid traces) to a minimal
failing trace before being reported.

Entry points:

* :func:`fuzz` — the library API (used by ``tests/test_audit_fuzz.py``);
* ``scripts/fuzz_audit.py`` — the CLI wrapper (CI smoke + local soak).

Everything is deterministic in ``seed``: case ``i`` derives its generator
seeds from ``(seed, i)`` and rotates through the config variants, so a
failure report's ``(seed, case, config)`` triple reproduces exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.audit.auditor import Auditor, AuditViolation
from repro.core.config import (
    ExclusivityMode,
    FilterMode,
    PredictorConfig,
    TABLE3_CONFIGS,
)
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import Simulator
from repro.trace.record import TraceRecord
from repro.workloads.generator import WalkProfile, generate_trace
from repro.workloads.program import ProgramShape, build_program


def _small(**overrides) -> PredictorConfig:
    """Deliberately tiny hierarchy: maximal eviction/migration pressure.

    Full-size structures barely evict on short fuzz traces; the state bugs
    this harness hunts (stale references, aliased deadlines, leaked
    objects) live on the replacement and movement paths.
    """
    defaults = dict(
        btb1_rows=16, btb1_ways=2, btbp_rows=8, btbp_ways=2,
        btb2_rows=64, btb2_ways=2, pht_entries=64, ctb_entries=64,
        fit_entries=4, surprise_bht_entries=128,
        ordering_table_sets=16, ordering_table_ways=2,
    )
    defaults.update(overrides)
    return PredictorConfig(**defaults)


#: Every shipped configuration variant: the three Table 3 configs at
#: architected size, plus small-geometry variants covering each
#: ``FilterMode``, each ``ExclusivityMode``, both section-6 extensions,
#: the BTBP-less ablation, and stressed miss/tracker limits.
FUZZ_CONFIGS: dict[str, PredictorConfig] = {
    **{config.name: config for config in TABLE3_CONFIGS},
    "small baseline": _small(name="small baseline"),
    "small no BTB2": _small(btb2_enabled=False, name="small no BTB2"),
    "filter block": _small(filter_mode=FilterMode.BLOCK, name="filter block"),
    "filter off": _small(filter_mode=FilterMode.OFF, name="filter off"),
    "inclusive": _small(
        exclusivity=ExclusivityMode.INCLUSIVE, name="inclusive"
    ),
    "no victim writeback": _small(
        exclusivity=ExclusivityMode.NO_VICTIM_WRITEBACK,
        name="no victim writeback",
    ),
    "decode miss reporting": _small(
        decode_miss_reporting=True, name="decode miss reporting"
    ),
    "multi block transfer": _small(
        multi_block_transfer=True, name="multi block transfer"
    ),
    "no BTBP": _small(btbp_enabled=False, name="no BTBP"),
    "tight limits": _small(
        miss_search_limit=1, tracker_count=1, partial_search_rows=1,
        name="tight limits",
    ),
    "no steering": _small(steering_enabled=False, name="no steering"),
}

#: Audit scan interval for fuzz runs: tight, so structural breaches are
#: caught within a handful of instructions of their cause.
FUZZ_AUDIT_INTERVAL = 16


@dataclass(frozen=True)
class FuzzFailure:
    """One audited case that violated an invariant."""

    case: int
    seed: int
    config_name: str
    check: str
    message: str
    trace_length: int
    #: ddmin-minimized failing trace (equal to the original when shrinking
    #: is disabled or the failure evaporated under shrinking).
    shrunk: tuple[TraceRecord, ...] = field(default=(), repr=False)


def build_trace(seed: int, length: int = 350) -> list[TraceRecord]:
    """One seeded random trace: random program, random walk, random splices."""
    rng = random.Random(seed)
    shape = ProgramShape(
        functions=rng.randint(2, 24),
        blocks_per_function=(2, 6),
        instructions_per_block=(1, 4),
        call_fraction=rng.uniform(0.0, 0.3),
        loop_fraction=rng.uniform(0.0, 0.4),
        indirect_fraction=rng.uniform(0.0, 0.1),
        seed=rng.randrange(1 << 16),
    )
    profile = WalkProfile(
        uniform_fraction=rng.random(),
        max_call_depth=3,
        max_loop_iterations=8,
        seed=rng.randrange(1 << 16),
    )
    trace = generate_trace(build_program(shape), length, profile)
    # Random slice deletions: context switches / interrupts in the trace.
    for _ in range(rng.randint(0, 3)):
        if len(trace) > 20:
            start = rng.randrange(len(trace) - 10)
            del trace[start:start + rng.randint(1, 10)]
    return trace


#: Named seed families for :func:`fuzz`'s trace corpus.  ``random`` is the
#: historical generator (:func:`build_trace`); ``adversarial`` draws from
#: the BTB-probe microbenchmarks; ``mixed`` alternates by seed parity.
CORPUS_NAMES = ("random", "adversarial", "mixed")


def corpus_builder(corpus: str) -> Callable[[int, int], list[TraceRecord]]:
    """Resolve a named seed family to a ``builder(seed, length)`` callable."""
    if corpus == "random":
        return lambda seed, length: build_trace(seed, length)
    from repro.workloads.adversarial import corpus_trace

    if corpus == "adversarial":
        return corpus_trace
    if corpus == "mixed":
        def mixed(seed: int, length: int) -> list[TraceRecord]:
            if seed % 2:
                return corpus_trace(seed, length)
            return build_trace(seed, length)

        return mixed
    raise ValueError(
        f"unknown corpus {corpus!r}; expected one of {CORPUS_NAMES}")


def run_case(
    trace: list[TraceRecord],
    config: PredictorConfig,
    timing: TimingParams = DEFAULT_TIMING,
    interval: int = FUZZ_AUDIT_INTERVAL,
) -> AuditViolation | None:
    """Run one fully audited simulation; return the violation, if any."""
    auditor = Auditor(interval=interval, trace_depth=32)
    try:
        Simulator(config=config, timing=timing, audit=auditor).run(trace)
    except AuditViolation as violation:
        return violation
    return None


def shrink(
    trace: list[TraceRecord],
    config: PredictorConfig,
    timing: TimingParams = DEFAULT_TIMING,
    fails: Callable[[list[TraceRecord]], bool] | None = None,
) -> list[TraceRecord]:
    """ddmin-style minimization: greedily delete chunks while still failing.

    Deleting any slice of records yields another valid trace (splice
    points become context switches), so plain chunked delta debugging
    applies.  Complexity is O(n log n) audited re-runs on short traces.

    ``fails`` overrides the failure predicate (default: an audited run of
    the candidate under ``config``/``timing`` raises a violation).  The
    differential oracle reuses the same minimizer with "the oracle still
    diverges" as the predicate (:mod:`repro.oracle.differential`).
    """
    if fails is None:
        def fails(candidate: list[TraceRecord]) -> bool:
            return run_case(candidate, config, timing) is not None
    current = list(trace)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk:]
            if candidate and fails(candidate):
                current = candidate
            else:
                index += chunk
        chunk //= 2
    return current


def fuzz(
    cases: int = 200,
    seed: int = 0,
    records: int = 350,
    configs: dict[str, PredictorConfig] | None = None,
    shrink_failures: bool = True,
    progress=None,
    corpus: str = "random",
) -> list[FuzzFailure]:
    """Run ``cases`` seeded audited simulations; return all failures.

    Case ``i`` uses trace seed ``(seed << 20) ^ i`` and the ``i``-th config
    variant (round robin), so every variant sees ``cases / len(configs)``
    distinct traces and any failure is reproducible from its
    :class:`FuzzFailure` alone.  ``corpus`` selects the seed family
    (:func:`corpus_builder`); the default keeps the historical byte-exact
    case stream.
    """
    configs = FUZZ_CONFIGS if configs is None else configs
    builder = corpus_builder(corpus)
    names = list(configs)
    failures: list[FuzzFailure] = []
    for case in range(cases):
        case_seed = (seed << 20) ^ case
        name = names[case % len(names)]
        config = configs[name]
        trace = builder(case_seed, records)
        violation = run_case(trace, config)
        if violation is None:
            continue
        minimal = tuple(
            shrink(trace, config) if shrink_failures else trace
        )
        failures.append(
            FuzzFailure(
                case=case,
                seed=case_seed,
                config_name=name,
                check=violation.check,
                message=str(violation),
                trace_length=len(trace),
                shrunk=minimal,
            )
        )
        if progress is not None:
            progress(
                f"case {case} ({name}): {violation.check} — "
                f"shrunk {len(trace)} -> {len(minimal)} records"
            )
    return failures


def render_failure(failure: FuzzFailure) -> str:
    """Human-readable failure report with a replayable minimal trace."""
    lines = [
        f"case {failure.case} seed {failure.seed} "
        f"config {failure.config_name!r}: check '{failure.check}' "
        f"({failure.trace_length} -> {len(failure.shrunk)} records)",
        failure.message,
        "minimal trace:",
    ]
    for record in failure.shrunk:
        lines.append(f"  {record!r}")
    return "\n".join(lines)
