"""Static instruction model for the synthetic z-like ISA.

zSeries instructions are 2, 4 or 6 bytes long.  The workload generator builds
programs out of :class:`Instruction` objects; the trace layer then records
their dynamic executions as :class:`repro.trace.record.TraceRecord`.

Only the properties that matter to branch prediction are modelled: the
address, the length, whether the instruction is a branch and of which
:class:`~repro.isa.opcodes.BranchKind`, and (for direct branches) the encoded
target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import BranchKind, static_guess

#: Legal instruction lengths in the z architecture.
VALID_LENGTHS = (2, 4, 6)


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``target`` is the statically encoded target for direct branches; for
    RETURN/INDIRECT branches it is the *first* observed target (the dynamic
    walker supplies per-execution targets).  ``None`` for non-branches.
    """

    address: int
    length: int
    kind: BranchKind | None = None
    target: int | None = None

    def __post_init__(self) -> None:
        if self.length not in VALID_LENGTHS:
            raise ValueError(f"illegal instruction length {self.length}")
        if self.address < 0:
            raise ValueError("instruction address must be non-negative")
        if self.kind is not None and self.kind is not BranchKind.RETURN:
            if self.target is None and self.kind is not BranchKind.INDIRECT:
                raise ValueError(f"{self.kind} branch requires a target")

    @property
    def is_branch(self) -> bool:
        """True when the instruction is any kind of branch."""
        return self.kind is not None

    @property
    def next_sequential(self) -> int:
        """Address of the instruction that follows sequentially."""
        return self.address + self.length

    @property
    def is_backward(self) -> bool:
        """True for direct branches whose target precedes the branch."""
        return self.target is not None and self.target <= self.address

    def guess_direction(self) -> bool:
        """Opcode/displacement static guess used on the surprise path."""
        if self.kind is None:
            raise ValueError("not a branch")
        return static_guess(self.kind, self.is_backward)
