"""64-bit big-endian address arithmetic in IBM bit numbering.

The zEC12 is a big-endian machine with 64-bit addressing where *bit 0 is the
most significant bit and bit 63 is the least significant* (paper, section 3).
Every structure in the paper is specified with inclusive bit ranges in that
numbering, e.g. "instruction address bits 49:58 are used to index" the BTB1.

This module is the single place where that numbering is translated into
ordinary Python shifts and masks, so that the rest of the code base can speak
the paper's language directly::

    >>> field = BitField(49, 58)
    >>> field.extract(0x0000_0000_0001_2345)
    401

Key derived geometry (all asserted by tests):

* BTB1 index, bits 49:58  -> 10 bits, rows of 32 bytes, 1024 rows.
* BTBP index, bits 52:58  ->  7 bits, rows of 32 bytes,  128 rows.
* BTB2 index, bits 47:58  -> 12 bits, rows of 32 bytes, 4096 rows.
* 4 KB block, bits 0:51   -> address >> 12.
* 128 B sector, bits 0:56 -> address >> 7.
"""

from __future__ import annotations

from dataclasses import dataclass

ADDRESS_BITS = 64
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1

#: Bytes of instruction space covered by one row of every BTB level
#: (the least significant indexed bit is 58, leaving bits 59:63 = 5 bits).
ROW_BYTES = 32

#: Size of the 4 KB blocks used by the BTB2 trackers and the ordering table.
BLOCK_BYTES = 4096

#: Size of the 128-byte sectors used for BTB2 transfer ordering.
SECTOR_BYTES = 128

#: Sectors per 4 KB block (32) and quartiles per block (4).
SECTORS_PER_BLOCK = BLOCK_BYTES // SECTOR_BYTES
QUARTILES_PER_BLOCK = 4
SECTORS_PER_QUARTILE = SECTORS_PER_BLOCK // QUARTILES_PER_BLOCK

#: BTB rows per 128-byte sector (4) and per 4 KB block (128).
ROWS_PER_SECTOR = SECTOR_BYTES // ROW_BYTES
ROWS_PER_BLOCK = BLOCK_BYTES // ROW_BYTES


@dataclass(frozen=True)
class BitField:
    """An inclusive IBM-numbered bit range ``msb:lsb`` of a 64-bit address.

    ``BitField(49, 58)`` selects ten bits whose least significant member is
    IBM bit 58, i.e. conventional bit ``63 - 58 = 5``.
    """

    msb: int
    lsb: int

    def __post_init__(self) -> None:
        if not 0 <= self.msb <= self.lsb <= 63:
            raise ValueError(f"invalid IBM bit range {self.msb}:{self.lsb}")

    @property
    def width(self) -> int:
        """Number of bits selected by the field."""
        return self.lsb - self.msb + 1

    @property
    def shift(self) -> int:
        """Right shift that aligns the field's LSB with conventional bit 0."""
        return 63 - self.lsb

    @property
    def mask(self) -> int:
        """Mask of ``width`` ones, already shifted down to bit 0."""
        return (1 << self.width) - 1

    def extract(self, address: int) -> int:
        """Return the value of this field within ``address``."""
        return (address >> self.shift) & self.mask


# Field definitions straight out of the paper's section 3.
BTB1_INDEX = BitField(49, 58)
BTBP_INDEX = BitField(52, 58)
BTB2_INDEX = BitField(47, 58)
BLOCK_FIELD = BitField(0, 51)
SECTOR_FIELD = BitField(0, 56)


def row_address(address: int) -> int:
    """Align ``address`` down to the start of its 32-byte BTB row."""
    return address & ~(ROW_BYTES - 1) & ADDRESS_MASK


def row_offset(address: int) -> int:
    """Byte offset of ``address`` within its 32-byte BTB row."""
    return address & (ROW_BYTES - 1)


def block_address(address: int) -> int:
    """Align ``address`` down to the start of its 4 KB block."""
    return address & ~(BLOCK_BYTES - 1) & ADDRESS_MASK


def block_number(address: int) -> int:
    """The 4 KB block number (instruction address bits 0:51)."""
    return BLOCK_FIELD.extract(address)


def sector_address(address: int) -> int:
    """Align ``address`` down to the start of its 128-byte sector."""
    return address & ~(SECTOR_BYTES - 1) & ADDRESS_MASK


def sector_in_block(address: int) -> int:
    """Index (0..31) of the 128-byte sector of ``address`` within its block."""
    return (address & (BLOCK_BYTES - 1)) >> 7


def quartile_in_block(address: int) -> int:
    """Index (0..3) of the 1 KB quartile of ``address`` within its block."""
    return (address & (BLOCK_BYTES - 1)) >> 10


def sector_quartile(sector: int) -> int:
    """Quartile (0..3) that a sector index (0..31) belongs to."""
    if not 0 <= sector < SECTORS_PER_BLOCK:
        raise ValueError(f"sector index out of range: {sector}")
    return sector // SECTORS_PER_QUARTILE


def same_block(a: int, b: int) -> bool:
    """True when two addresses fall in the same 4 KB block."""
    return block_address(a) == block_address(b)


def next_row(address: int) -> int:
    """Start address of the row sequentially after the one holding ``address``."""
    return (row_address(address) + ROW_BYTES) & ADDRESS_MASK
