"""Branch kinds and static-guess rules for the z-like instruction model.

The zEC12 guesses the direction of *surprise* branches (branches not predicted
dynamically by the first-level predictor) "based on a tagless 32k entry
one-bit BHT, its opcode and other instruction text fields" (paper, 3.1).

We model the opcode part of that rule here: each branch carries a
:class:`BranchKind`, and :func:`static_guess` gives the opcode-based default
direction that the one-bit surprise BHT can then override (see
:mod:`repro.btb.surprise`).
"""

from __future__ import annotations

import enum


class BranchKind(enum.Enum):
    """Classification of branch instructions in the synthetic ISA."""

    #: Conditional relative branch (e.g. BRC) — may go either way.
    COND = "cond"
    #: Unconditional relative branch (e.g. J) — always taken.
    UNCOND = "uncond"
    #: Call (e.g. BRAS/BRASL) — always taken, pushes a return address.
    CALL = "call"
    #: Return (e.g. BR via link register) — taken, target varies per call site.
    RETURN = "return"
    #: Indirect branch through a register/table — taken, possibly multi-target.
    INDIRECT = "indirect"

    @property
    def always_taken(self) -> bool:
        """True for kinds that can never fall through."""
        return self is not BranchKind.COND

    @property
    def target_changes(self) -> bool:
        """True for kinds whose target may differ between executions."""
        return self in (BranchKind.RETURN, BranchKind.INDIRECT)


def static_guess(kind: BranchKind, backward: bool) -> bool:
    """Opcode-based static direction guess for a surprise branch.

    Unconditional kinds are guessed taken.  Conditional branches use the
    classic backward-taken / forward-not-taken heuristic, standing in for the
    "other instruction text fields" of the paper.  The tagless surprise BHT
    refines this guess once a branch has resolved at least once.
    """
    if kind.always_taken:
        return True
    return backward
