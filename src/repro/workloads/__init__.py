"""Synthetic workload substrate standing in for the paper's IBM traces."""

from repro.workloads.catalog import (
    DAYTRADER_DBSERV,
    TABLE4_WORKLOADS,
    WASDB_CBW2,
    WEB_CICS_DB2,
    WorkloadSpec,
    default_scale,
    workload_by_name,
)
from repro.workloads.generator import (
    TraceWalker,
    WalkProfile,
    generate_mixed_trace,
    generate_trace,
)
from repro.workloads.program import (
    BasicBlock,
    Function,
    Program,
    ProgramShape,
    TerminatorKind,
    build_program,
)

__all__ = [
    "BasicBlock",
    "DAYTRADER_DBSERV",
    "Function",
    "Program",
    "ProgramShape",
    "TABLE4_WORKLOADS",
    "TerminatorKind",
    "TraceWalker",
    "WASDB_CBW2",
    "WEB_CICS_DB2",
    "WalkProfile",
    "WorkloadSpec",
    "build_program",
    "default_scale",
    "generate_mixed_trace",
    "generate_trace",
    "workload_by_name",
]
