"""Synthetic program model: functions, basic blocks, static layout.

The paper evaluates on proprietary traces of large commercial workloads
(LSPR, CICS/DB2, DayTrader, ...).  As the substitution table in DESIGN.md
explains, what the bulk-preload mechanism actually responds to is the
*static branch population* (unique branch addresses vs BTB capacity) and the
*temporal reuse structure* of the code.  This module provides the static
half: programs built of functions, laid out contiguously in memory, each a
list of basic blocks ending in (at most) one branch.

The dynamic half — walking the program into a trace — lives in
:mod:`repro.workloads.generator`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.isa.instruction import VALID_LENGTHS
from repro.isa.opcodes import BranchKind


class TerminatorKind(enum.Enum):
    """How a basic block ends."""

    #: No branch: fall through to the next block.
    FALLTHROUGH = "fallthrough"
    #: Conditional branch to another block of the same function.
    COND = "cond"
    #: Unconditional jump to another block of the same function.
    UNCOND = "uncond"
    #: Call to another function (resumes at the next block).
    CALL = "call"
    #: Indirect multi-target jump within the function (switch-like).
    INDIRECT = "indirect"
    #: Return to the caller.
    RETURN = "return"

    @property
    def branch_kind(self) -> BranchKind | None:
        """Corresponding dynamic branch kind (``None`` for fallthrough)."""
        return {
            TerminatorKind.FALLTHROUGH: None,
            TerminatorKind.COND: BranchKind.COND,
            TerminatorKind.UNCOND: BranchKind.UNCOND,
            TerminatorKind.CALL: BranchKind.CALL,
            TerminatorKind.INDIRECT: BranchKind.INDIRECT,
            TerminatorKind.RETURN: BranchKind.RETURN,
        }[self]


@dataclass
class BasicBlock:
    """One basic block: straightline instruction lengths plus a terminator.

    ``target_block`` indexes a block of the same function (COND/UNCOND),
    ``target_function`` a callee (CALL), ``indirect_targets`` a set of
    same-function block indices (INDIRECT).  ``taken_probability`` applies
    to COND terminators.
    """

    body_lengths: list[int]
    terminator: TerminatorKind = TerminatorKind.FALLTHROUGH
    branch_length: int = 4
    target_block: int | None = None
    target_function: int | None = None
    indirect_targets: tuple[int, ...] = ()
    taken_probability: float = 0.5
    #: Non-zero for pattern-correlated conditionals: the branch follows a
    #: deterministic taken/not-taken cycle of this period (learnable by a
    #: path-history predictor), instead of i.i.d. coin flips.
    pattern_period: int = 0
    #: Filled in by layout.
    address: int = 0

    @property
    def body_bytes(self) -> int:
        """Bytes of straightline instructions."""
        return sum(self.body_lengths)

    @property
    def size_bytes(self) -> int:
        """Total bytes including the terminating branch, if any."""
        size = self.body_bytes
        if self.terminator is not TerminatorKind.FALLTHROUGH:
            size += self.branch_length
        return size

    @property
    def branch_address(self) -> int:
        """Address of the terminating branch (meaningless for fallthrough)."""
        return self.address + self.body_bytes

    @property
    def end_address(self) -> int:
        """First address after this block."""
        return self.address + self.size_bytes


@dataclass
class Function:
    """A function: an entry address and an ordered list of blocks."""

    index: int
    blocks: list[BasicBlock]
    address: int = 0

    @property
    def entry(self) -> int:
        """Entry address of the function."""
        return self.address

    @property
    def size_bytes(self) -> int:
        """Total laid-out size."""
        return sum(block.size_bytes for block in self.blocks)

    def layout(self, base: int) -> int:
        """Assign addresses to all blocks from ``base``; return the end."""
        self.address = base
        cursor = base
        for block in self.blocks:
            block.address = cursor
            cursor = block.end_address
        return cursor


@dataclass
class Program:
    """A complete synthetic program."""

    functions: list[Function]
    base_address: int = 0x0000_0000_1000_0000

    def __post_init__(self) -> None:
        self._layout()

    def _layout(self) -> None:
        cursor = self.base_address
        for function in self.functions:
            cursor = function.layout(cursor)
            # Align the next function to a halfword boundary with a small
            # gap, like a compiler padding between functions.
            cursor = (cursor + 6) & ~1

    @property
    def static_branch_count(self) -> int:
        """Number of static branch instructions."""
        return sum(
            1
            for function in self.functions
            for block in function.blocks
            if block.terminator is not TerminatorKind.FALLTHROUGH
        )

    @property
    def footprint_bytes(self) -> int:
        """Bytes of instruction space from first function to last."""
        if not self.functions:
            return 0
        last = self.functions[-1]
        return last.address + last.size_bytes - self.base_address


@dataclass
class ProgramShape:
    """Knobs controlling program construction (see ``build_program``)."""

    functions: int = 200
    blocks_per_function: tuple[int, int] = (4, 14)
    instructions_per_block: tuple[int, int] = (2, 9)
    #: Probability that a non-final block's terminator is each kind
    #: (fallthrough absorbs the remainder).
    cond_fraction: float = 0.50
    uncond_fraction: float = 0.08
    call_fraction: float = 0.14
    indirect_fraction: float = 0.03
    #: Probability a conditional is a backward loop branch.
    loop_fraction: float = 0.15
    #: Trip-count range for loop branches (taken trips-1 times, then exit).
    loop_trips: tuple[int, int] = (2, 10)
    #: Forward conditionals are drawn from three realistic classes:
    #: biased-taken (p in 0.85..0.98), rare-taken (p in 0.01..0.08) and
    #: pattern-correlated (deterministic cycle, exercises the PHT).
    #: ``forward_taken_bias`` is the biased-taken fraction; the
    #: pattern-correlated fraction is fixed; rare-taken absorbs the rest.
    forward_taken_bias: float = 0.30
    pattern_fraction: float = 0.10
    seed: int = 1


def _draw_lengths(rng: random.Random, count: int) -> list[int]:
    return [rng.choice(VALID_LENGTHS) for _ in range(count)]


def build_program(shape: ProgramShape, base_address: int | None = None) -> Program:
    """Construct a deterministic synthetic program from ``shape``.

    The same shape (including seed) always yields the identical program —
    workloads are reproducible by construction.
    """
    rng = random.Random(shape.seed)
    functions: list[Function] = []
    for findex in range(shape.functions):
        block_count = rng.randint(*shape.blocks_per_function)
        blocks: list[BasicBlock] = []
        for bindex in range(block_count):
            body = _draw_lengths(rng, rng.randint(*shape.instructions_per_block))
            last = bindex == block_count - 1
            block = BasicBlock(body_lengths=body, branch_length=rng.choice((4, 6)))
            if last:
                block.terminator = TerminatorKind.RETURN
            else:
                block.terminator = _draw_terminator(rng, shape)
                _wire_terminator(block, bindex, block_count, rng, shape)
            blocks.append(block)
        functions.append(Function(index=findex, blocks=blocks))
    _wire_calls(functions, rng)
    program = Program(functions=functions)
    if base_address is not None:
        program.base_address = base_address
        program._layout()
    return program


def _draw_terminator(rng: random.Random, shape: ProgramShape) -> TerminatorKind:
    roll = rng.random()
    if roll < shape.cond_fraction:
        return TerminatorKind.COND
    roll -= shape.cond_fraction
    if roll < shape.uncond_fraction:
        return TerminatorKind.UNCOND
    roll -= shape.uncond_fraction
    if roll < shape.call_fraction:
        return TerminatorKind.CALL
    roll -= shape.call_fraction
    if roll < shape.indirect_fraction:
        return TerminatorKind.INDIRECT
    return TerminatorKind.FALLTHROUGH


def _wire_terminator(
    block: BasicBlock,
    bindex: int,
    block_count: int,
    rng: random.Random,
    shape: ProgramShape,
) -> None:
    """Choose intra-function targets and probabilities for a terminator."""
    def near_forward() -> int:
        # Forward branches mostly skip one or two blocks (if/else shapes);
        # this keeps per-visit block coverage realistic.
        return min(bindex + 1 + min(rng.randrange(4), rng.randrange(4)),
                   block_count - 1)

    if block.terminator is TerminatorKind.COND:
        backward_possible = bindex > 0
        if backward_possible and rng.random() < shape.loop_fraction:
            # Loops run a fixed trip count: taken T-1 times, then the exit.
            # Fixed trips are what real path-history predictors learn; they
            # are encoded as a deterministic pattern of period T.
            trips = rng.randint(*shape.loop_trips)
            block.target_block = rng.randint(max(0, bindex - 3), bindex)
            block.pattern_period = trips
            block.taken_probability = (trips - 1) / trips
        else:
            block.target_block = near_forward()
            roll = rng.random()
            if roll < shape.forward_taken_bias:
                block.taken_probability = rng.uniform(0.95, 0.995)
            elif roll < shape.forward_taken_bias + shape.pattern_fraction:
                block.taken_probability = rng.uniform(0.30, 0.70)
                block.pattern_period = rng.randint(2, 6)
            else:
                block.taken_probability = rng.uniform(0.005, 0.04)
    elif block.terminator is TerminatorKind.UNCOND:
        block.target_block = near_forward()
    elif block.terminator is TerminatorKind.INDIRECT:
        pool = list(range(bindex + 1, block_count))
        rng.shuffle(pool)
        block.indirect_targets = tuple(sorted(pool[: min(4, len(pool))])) or (
            block_count - 1,
        )


def _wire_calls(functions: list[Function], rng: random.Random) -> None:
    """Assign call targets: mostly nearby callees, occasionally far ones.

    Nearby calls model intra-module cohesion (utilities next to callers);
    the far tail models cross-module calls.  Self-calls are avoided to keep
    walks shallow.
    """
    count = len(functions)
    for function in functions:
        for block in function.blocks:
            if block.terminator is not TerminatorKind.CALL:
                continue
            if count == 1:
                block.terminator = TerminatorKind.FALLTHROUGH
                continue
            if rng.random() < 0.7:
                offset = rng.randint(1, min(12, count - 1))
                callee = (function.index + offset) % count
            else:
                callee = rng.randrange(count)
            if callee == function.index:
                callee = (callee + 1) % count
            block.target_function = callee
