"""Adversarial BTB-probe microbenchmark workloads.

Parameterized generated microbenchmarks in the style of the BTB
reverse-engineering-on-Arm work: instead of modeling a commercial trace,
each family is *constructed* to probe one corner of a bounded target store —
capacity, row associativity, target aliasing, and preload-tracker thrash.
They register in the workload catalog (``workload_by_name`` resolves them
after the Table 4 entries), run through ``repro simulate`` and the
experiment pool like any workload, and double as a seeded fuzz corpus for
the auditor and the differential oracles (:func:`corpus_trace`).

Construction: every *site* is a small basic block — ``fillers`` straight
-line records followed by one always-taken branch targeting the next
site's entry point — so control flow chains block to block with **zero**
unintended trace discontinuities; every trace property is then a pure
function of the site geometry:

* ``btb-capacity`` — more branch sites than the BTB1 holds, visited round
  robin at a cache-friendly stride: pure capacity-eviction pressure.
* ``btb-associativity`` — a handful of sites exactly one BTB1 row apart
  (stride = rows × 32 B), overcommitting a single row's ways.
* ``target-aliasing`` — indirect branches whose targets alternate between
  two entry points of the successor block on every pass: stale-target
  mispredict pressure.
* ``tracker-thrash`` — sites interleaved across more 4 KB blocks than the
  preload engine has trackers, so every miss report fights for a tracker.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import random

from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord
from repro.trace.stats import TraceStats, collect_stats
from repro.workloads.catalog import _cache_path, _write_cache, default_scale

#: Base address of the adversarial region — disjoint from the synthetic
#: catalog's program images (bit 30 set) so mixed experiments never alias.
ADVERSARIAL_BASE = 0x0000_0000_4000_0000

#: Bytes of one BTB row (mirrors ``repro.isa.address.ROW_BYTES``).
_ROW_BYTES = 32
#: BTB1 geometry the families are aimed at (``repro.btb.btb1``).
_BTB1_ROWS = 1024
_BTB1_CAPACITY = 4096


@dataclass(frozen=True)
class AdversarialSpec:
    """One adversarial microbenchmark: site geometry plus walk length.

    Duck-types the :class:`~repro.workloads.catalog.WorkloadSpec` surface
    the harness drives (``name``/``generate``/``scaled_length``/``trace``/
    ``trace_path``/``stats``), so it flows through ``RunSpec``, the result
    cache, and the CLI unchanged.
    """

    name: str
    family: str
    #: Branch sites (one always-taken branch each).
    sites: int
    #: Straight-line records preceding the branch within a site block.
    fillers: int
    #: Byte distance between consecutive site bases (within a group).
    stride: int
    #: Reference (scale=1.0) trace length in records.
    trace_length: int
    #: Interleaved groups (e.g. 4 KB pages for tracker thrash).
    groups: int = 1
    #: Byte distance between group bases.
    group_stride: int = 0
    #: Every ``kind_period``-th site is a conditional branch (0 = never).
    kind_period: int = 0
    #: Indirect branches with per-pass alternating successor entry points.
    alternate_targets: bool = False
    base_address: int = ADVERSARIAL_BASE

    def __post_init__(self) -> None:
        span = (self.fillers + 1) * 4
        if span > self.stride:
            raise ValueError(
                f"{self.name}: site block ({span} B) overruns stride "
                f"({self.stride} B)")
        if self.alternate_targets and self.fillers < 1:
            raise ValueError(
                f"{self.name}: alternating entry points need >= 1 filler")

    # -- geometry ------------------------------------------------------------

    def site_address(self, site: int) -> int:
        """Base address of site ``site`` (group-interleaved visit order)."""
        group = site % self.groups
        slot = site // self.groups
        return (self.base_address + group * self.group_stride
                + slot * self.stride)

    def _entry_offset(self, passes: int) -> int:
        """Block entry offset on pass ``passes`` (alternates when aliasing)."""
        if self.alternate_targets and passes % 2:
            return 4
        return 0

    def _site_kind(self, site: int) -> BranchKind:
        if self.kind_period and site % self.kind_period == 0:
            return BranchKind.COND
        if self.alternate_targets:
            return BranchKind.INDIRECT
        return BranchKind.UNCOND

    @property
    def records_per_pass(self) -> int:
        """Records emitted by one full round-robin pass over the sites."""
        return self.sites * (self.fillers + 1)

    @property
    def unique_branches(self) -> int:
        """Distinct branch sites (all of them taken every visit)."""
        return self.sites

    # -- generation ----------------------------------------------------------

    def scaled_length(self, scale: float) -> int:
        """Trace length under ``scale``.

        Floors at two full passes (so revisit-after-eviction behavior —
        the thing these benchmarks probe — exists at any scale) and at the
        4k-record microbenchmark minimum.
        """
        return max(4_000, 2 * self.records_per_pass,
                   int(self.trace_length * scale))

    def generate(self, scale: float = 1.0) -> list[TraceRecord]:
        """Generate the chained site walk without touching the cache."""
        length = self.scaled_length(scale)
        records: list[TraceRecord] = []
        passes = 0
        while len(records) < length:
            offset = self._entry_offset(passes)
            for site in range(self.sites):
                base = self.site_address(site)
                for filler in range(offset // 4, self.fillers):
                    records.append(TraceRecord(base + filler * 4, 4))
                if site + 1 < self.sites:
                    target = (self.site_address(site + 1)
                              + self._entry_offset(passes))
                else:
                    target = (self.site_address(0)
                              + self._entry_offset(passes + 1))
                records.append(TraceRecord(
                    base + self.fillers * 4, 4,
                    kind=self._site_kind(site), taken=True, target=target))
                offset = self._entry_offset(passes)
            passes += 1
        return records[:length]

    def trace(self, scale: float | None = None) -> list[TraceRecord]:
        """Cached trace at ``scale`` (same disk cache as the catalog)."""
        if scale is None:
            scale = default_scale()
        cache_file = _cache_path(self, scale)
        if cache_file is not None and cache_file.exists():
            from repro.trace.reader import TraceFormatError, load_trace
            try:
                return load_trace(cache_file)
            except TraceFormatError:
                pass
        records = self.generate(scale)
        if cache_file is not None:
            _write_cache(cache_file, records)
        return records

    def trace_path(self, scale: float | None = None) -> Path:
        """On-disk cached trace path, for streaming consumers."""
        if scale is None:
            scale = default_scale()
        cache_file = _cache_path(self, scale)
        if cache_file is None:
            raise RuntimeError(
                "trace cache disabled; no on-disk trace to stream from")
        if not cache_file.exists():
            _write_cache(cache_file, self.generate(scale))
        return cache_file

    def stats(self, scale: float | None = None) -> TraceStats:
        """Trace statistics (for the workload listing)."""
        return collect_stats(self.trace(scale))


#: The adversarial workload family, in catalog order.
ADVERSARIAL_WORKLOADS: tuple[AdversarialSpec, ...] = (
    AdversarialSpec(
        name="adversarial/btb-capacity",
        family="capacity",
        sites=6144,          # 1.5x the 4k-entry BTB1
        fillers=2,
        stride=64,
        kind_period=4,
        trace_length=300_000,
    ),
    AdversarialSpec(
        name="adversarial/btb-associativity",
        family="associativity",
        sites=12,            # 3x the BTB1's 4 ways, all in one row
        fillers=2,
        stride=_BTB1_ROWS * _ROW_BYTES,
        kind_period=3,
        trace_length=60_000,
    ),
    AdversarialSpec(
        name="adversarial/target-aliasing",
        family="aliasing",
        sites=24,
        fillers=2,
        stride=64,
        alternate_targets=True,
        trace_length=80_000,
    ),
    AdversarialSpec(
        name="adversarial/tracker-thrash",
        family="thrash",
        sites=48,            # 6 sites in each of 8 pages, page-interleaved
        fillers=2,
        stride=64,
        groups=8,
        group_stride=4096,
        trace_length=60_000,
    ),
)


def adversarial_by_name(name: str) -> AdversarialSpec:
    """Look up an adversarial workload by (case-insensitive substring) name."""
    lowered = name.lower()
    for spec in ADVERSARIAL_WORKLOADS:
        if lowered in spec.name.lower():
            return spec
    raise KeyError(f"no adversarial workload matching {name!r}")


def corpus_trace(seed: int, length: int = 350) -> list[TraceRecord]:
    """One seeded fuzz-corpus trace drawn from the adversarial families.

    Deterministic in ``seed``: picks a family, slices a random window out
    of its generated walk, and applies the same random slice deletions the
    random corpus uses (splice points read as context switches), so the
    auditor and differential oracles see adversarial *and* discontinuous
    structure.
    """
    rng = random.Random(seed)
    spec = ADVERSARIAL_WORKLOADS[seed % len(ADVERSARIAL_WORKLOADS)]
    records = spec.generate(0.0)
    start = rng.randrange(max(1, len(records) - length))
    trace = records[start:start + length]
    for _ in range(rng.randint(0, 3)):
        if len(trace) > 20:
            cut = rng.randrange(len(trace) - 10)
            del trace[cut:cut + rng.randint(1, 10)]
    return trace
