"""Dynamic trace generation: walking a synthetic program.

:class:`TraceWalker` interprets a :class:`~repro.workloads.program.Program`
into a stream of :class:`~repro.trace.record.TraceRecord`.  The walk is a
transaction loop, the canonical shape of the paper's commercial workloads:
each transaction invokes one *root* function drawn from a Zipf-plus-uniform
popularity mix (hot transaction code plus a long cold tail), and each
function executes its blocks — biased conditionals, bounded loops, calls,
switch-like indirect jumps, returns.

The popularity mix is what makes the workload capacity-sensitive: hot
functions stay resident in the BTB1 while the long tail is continually
re-visited at reuse distances beyond BTB1 capacity but within BTB2 capacity —
exactly the population the bulk preload mechanism targets.

Everything is seeded: the same (program, profile) pair always produces the
identical trace.
"""

from __future__ import annotations

import bisect
import itertools
import random
from collections import deque
from dataclasses import dataclass, replace

from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord
from repro.workloads.program import BasicBlock, Function, Program, TerminatorKind

from typing import Iterator


@dataclass(frozen=True)
class WalkProfile:
    """Knobs of the dynamic walk."""

    #: Zipf exponent of root-function popularity.
    zipf_s: float = 1.1
    #: Probability a transaction root comes from the cold tail instead of
    #: the Zipf-hot mix.
    uniform_fraction: float = 0.25
    #: How cold roots are chosen: a strided round-robin sweep through the
    #: whole function pool ("sweep", guarantees coverage of large pools the
    #: way phase-structured server code revisits all of itself), or plain
    #: uniform sampling ("uniform").
    cold_mode: str = "sweep"
    #: Stride of the cold sweep (callee fan-out fills the gaps).
    cold_stride: int = 3
    #: Mean transaction burst length: consecutive transactions tend to
    #: repeat the same root (requests of one type arrive clustered).  This
    #: short-term reuse is what lets surprise-installed BTBP content get
    #: used — and promoted into the BTB1 — before it ages out.
    burst_mean: float = 2.5
    #: Fraction of cold transactions that recur once more after
    #: ``echo_delay`` further transactions — the medium-distance reuse of
    #: request-structured servers (the same request type returns minutes
    #: later).  The delay is calibrated to exceed first-level BTB turnover
    #: (~1,750 transactions of promotions at these shapes), so echo visits
    #: are exactly the capacity-miss population the BTB2 serves.
    echo_fraction: float = 0.45
    echo_delay: int = 2000
    #: Call depth bound (deeper calls are elided).
    max_call_depth: int = 8
    #: Hard bound on consecutive taken iterations of one backward branch.
    max_loop_iterations: int = 48
    seed: int = 7

    def __post_init__(self) -> None:
        if self.cold_mode not in ("sweep", "uniform"):
            raise ValueError(f"unknown cold_mode {self.cold_mode!r}")
        if self.cold_stride < 1:
            raise ValueError("cold_stride must be at least 1")


@dataclass(slots=True)
class _Frame:
    function: Function
    block_index: int
    loop_counts: dict[int, int]


class TraceWalker:
    """Deterministic interpreter producing dynamic traces."""

    def __init__(self, program: Program, profile: WalkProfile | None = None) -> None:
        self.program = program
        self.profile = profile or WalkProfile()
        self._rng = random.Random(self.profile.seed)
        self._cumulative_weights = self._build_popularity()
        # The dispatcher lives just below the program's code.
        self._dispatcher_entry = max(0, program.base_address - 64)
        self._dispatch_target = self._dispatcher_entry
        self._cold_cursor = 0
        self._last_pick_cold = False
        self._visit_counts: dict[int, int] = {}

    def _build_popularity(self) -> list[float]:
        """Cumulative Zipf weights over a seeded permutation of functions."""
        count = len(self.program.functions)
        ranks = list(range(count))
        random.Random(self.profile.seed ^ 0x5EED).shuffle(ranks)
        weights = [0.0] * count
        for rank_position, function_index in enumerate(ranks):
            weights[function_index] = 1.0 / (rank_position + 1) ** self.profile.zipf_s
        return list(itertools.accumulate(weights))

    def _pick_root(self) -> Function:
        functions = self.program.functions
        if self._rng.random() < self.profile.uniform_fraction:
            self._last_pick_cold = True
            if self.profile.cold_mode == "sweep":
                root = functions[self._cold_cursor % len(functions)]
                self._cold_cursor += self.profile.cold_stride
                return root
            return functions[self._rng.randrange(len(functions))]
        self._last_pick_cold = False
        total = self._cumulative_weights[-1]
        point = self._rng.random() * total
        return functions[bisect.bisect_left(self._cumulative_weights, point)]

    # -- walking ---------------------------------------------------------------

    def records(self, length: int) -> Iterator[TraceRecord]:
        """Yield approximately ``length`` records of transaction-loop trace.

        The next transaction's root is chosen one step ahead so the current
        root's final return can branch straight to it — modelling the
        dispatcher loop of a transaction server and keeping the trace free
        of unexplained control-flow discontinuities.
        """
        emitted = 0
        roots = self._root_sequence()
        next_root = next(roots)
        while emitted < length:
            root, next_root = next_root, next(roots)
            # Root returns go to the dispatcher (a constant, predictable
            # target); the dispatcher's indirect branch then selects the
            # next transaction — concentrating the per-transaction control
            # unpredictability in one changing-target branch, the way a
            # request dispatch loop does.
            self._dispatch_target = self._dispatcher_entry
            for record in self._transaction(root):
                yield record
                emitted += 1
                if emitted >= length:
                    return
            for record in self._dispatcher(next_root):
                yield record
                emitted += 1
                if emitted >= length:
                    return

    def _dispatcher(self, next_root: Function) -> Iterator[TraceRecord]:
        """The transaction dispatch loop: a few instructions + indirect call."""
        address = self._dispatcher_entry
        for _ in range(3):
            yield TraceRecord(address=address, length=4)
            address += 4
        yield TraceRecord(
            address=address,
            length=4,
            kind=BranchKind.INDIRECT,
            taken=True,
            target=next_root.entry,
        )

    def _root_sequence(self) -> Iterator[Function]:
        """Burst-clustered stream of transaction roots with echo revisits."""
        continue_probability = (
            1.0 - 1.0 / self.profile.burst_mean if self.profile.burst_mean > 1 else 0.0
        )
        transaction = 0
        echoes: deque[tuple[int, Function]] = deque()
        while True:
            if echoes and echoes[0][0] <= transaction:
                root = echoes.popleft()[1]
            else:
                root = self._pick_root()
                if self._last_pick_cold and (
                    self._rng.random() < self.profile.echo_fraction
                ):
                    echoes.append(
                        (transaction + self.profile.echo_delay, root)
                    )
            yield root
            transaction += 1
            while self._rng.random() < continue_probability:
                yield root
                transaction += 1

    def _transaction(self, root: Function) -> Iterator[TraceRecord]:
        """Execute one root function to completion.

        Pattern/indirect visit counters reset per transaction, so two
        transactions with the same root walk the *same* path — the path
        repeatability that lets history-indexed predictors (PHT/CTB) learn,
        as they do on real request-structured server code.
        """
        self._visit_counts.clear()
        stack: list[_Frame] = [_Frame(root, 0, {})]
        while stack:
            frame = stack[-1]
            if frame.block_index >= len(frame.function.blocks):
                # Fell off the end (fallthrough out of the last block).
                stack.pop()
                continue
            block = frame.function.blocks[frame.block_index]
            yield from self._emit_body(block)
            next_action = self._terminate(block, frame, stack)
            if next_action is not None:
                yield next_action

    def _emit_body(self, block: BasicBlock) -> Iterator[TraceRecord]:
        address = block.address
        for length in block.body_lengths:
            yield TraceRecord(address=address, length=length)
            address += length

    def _terminate(
        self, block: BasicBlock, frame: _Frame, stack: list[_Frame]
    ) -> TraceRecord | None:
        """Resolve the block's terminator; mutate walk state; emit a record."""
        kind = block.terminator
        if kind is TerminatorKind.FALLTHROUGH:
            frame.block_index += 1
            return None

        branch_address = block.branch_address
        function = frame.function

        if kind is TerminatorKind.COND:
            target_block = function.blocks[block.target_block]
            backward = block.target_block <= frame.block_index
            if backward:
                # Loops run a deterministic trip count per entry: taken
                # trips-1 times, then the exit (capped by the profile).
                trips = block.pattern_period or self.profile.max_loop_iterations
                count = frame.loop_counts.get(frame.block_index, 0)
                taken = count < trips - 1 and count < self.profile.max_loop_iterations
                frame.loop_counts[frame.block_index] = count + 1 if taken else 0
            else:
                taken = self._direction(block)
            if taken:
                frame.block_index = block.target_block
            else:
                frame.block_index += 1
            return TraceRecord(
                address=branch_address,
                length=block.branch_length,
                kind=kind.branch_kind,
                taken=taken,
                target=target_block.address,
            )

        if kind is TerminatorKind.UNCOND:
            target_block = function.blocks[block.target_block]
            frame.block_index = block.target_block
            return TraceRecord(
                address=branch_address,
                length=block.branch_length,
                kind=kind.branch_kind,
                taken=True,
                target=target_block.address,
            )

        if kind is TerminatorKind.INDIRECT:
            choice = self._pick_indirect(block)
            target_block = function.blocks[choice]
            frame.block_index = choice
            return TraceRecord(
                address=branch_address,
                length=block.branch_length,
                kind=kind.branch_kind,
                taken=True,
                target=target_block.address,
            )

        if kind is TerminatorKind.CALL:
            frame.block_index += 1
            if len(stack) >= self.profile.max_call_depth:
                # Depth-capped call: the callee is elided, but the call
                # instruction's bytes still execute (as a plain record) so
                # the trace stays control-flow contiguous.
                return TraceRecord(address=branch_address,
                                   length=block.branch_length)
            callee = self.program.functions[block.target_function]
            stack.append(_Frame(callee, 0, {}))
            return TraceRecord(
                address=branch_address,
                length=block.branch_length,
                kind=kind.branch_kind,
                taken=True,
                target=callee.entry,
            )

        assert kind is TerminatorKind.RETURN
        stack.pop()
        if stack:
            caller = stack[-1]
            return_target = caller.function.blocks[caller.block_index].address
        else:
            # Root return: branch to the next transaction's root (the
            # dispatcher picked it one step ahead in ``records``).
            return_target = self._dispatch_target
        return TraceRecord(
            address=branch_address,
            length=block.branch_length,
            kind=kind.branch_kind,
            taken=True,
            target=return_target,
        )

    def _direction(self, block: BasicBlock) -> bool:
        """Direction of a conditional: i.i.d. biased coin or learnable cycle."""
        if block.pattern_period:
            count = self._visit_counts.get(block.address, 0)
            self._visit_counts[block.address] = count + 1
            taken_slots = max(1, round(block.taken_probability * block.pattern_period))
            return (count % block.pattern_period) < taken_slots
        return self._rng.random() < block.taken_probability

    def _pick_indirect(self, block: BasicBlock) -> int:
        """Visit-cycling choice among indirect targets.

        Cycling (rather than i.i.d. sampling) gives the target sequence the
        path correlation a changing target buffer can learn, like a switch
        driven by a rotating work queue.
        """
        targets = block.indirect_targets
        if len(targets) == 1:
            return targets[0]
        count = self._visit_counts.get(block.address, 0)
        self._visit_counts[block.address] = count + 1
        return targets[count % len(targets)]


def generate_trace(
    program: Program, length: int, profile: WalkProfile | None = None
) -> list[TraceRecord]:
    """Materialize a trace of ``length`` records from ``program``."""
    return list(TraceWalker(program, profile).records(length))


def generate_mixed_trace(
    programs: list[Program],
    length: int,
    slice_length: int,
    profile: WalkProfile | None = None,
) -> list[TraceRecord]:
    """Time-slice several programs into one trace (the Table 4 mix trace).

    "Trace 5 includes a mix of two of the LSPR workloads time sliced on one
    processor" — each program runs for ``slice_length`` records, round
    robin, until ``length`` records total.
    """
    base_profile = profile or WalkProfile()
    walkers = [
        iter(
            TraceWalker(
                program, replace(base_profile, seed=base_profile.seed + offset)
            ).records(length)
        )
        for offset, program in enumerate(programs)
    ]
    records: list[TraceRecord] = []
    active = 0
    while len(records) < length and walkers:
        walker = walkers[active % len(walkers)]
        records.extend(itertools.islice(walker, slice_length))
        active += 1
    return records[:length]
