"""The 13 large-footprint workloads of Table 4, as calibrated synthetics.

Each :class:`WorkloadSpec` names one of the paper's traces and carries the
paper's unique-branch counters (Table 4) plus the generator parameters that
approximate them.  ``trace()`` materializes the dynamic trace; generated
traces are cached on disk (the binary format of :mod:`repro.trace.writer`)
keyed by the full parameter set, so repeated experiment runs do not pay
generation time twice.

Calibration targets the things the mechanism under study is sensitive to
(DESIGN.md §1): the unique (taken) branch address population relative to the
4k-entry BTB1, the hot/cold reuse mix, and an instruction footprint that
exceeds the 64 KB L1I for the large workloads.  Exact Table 4 numbers are
not claimed; ``benchmarks/bench_table4_traces.py`` prints paper-vs-measured.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, replace
from pathlib import Path

from repro.trace.reader import TraceFormatError, load_trace, open_trace
from repro.trace.record import TraceRecord
from repro.trace.stats import TraceStats, collect_stats
from repro.trace.writer import save_trace
from repro.workloads.generator import (
    WalkProfile,
    generate_mixed_trace,
    generate_trace,
)
from repro.workloads.program import Program, ProgramShape, build_program

#: Environment variable scaling trace lengths (not code footprints), used by
#: the benchmark harness to keep wall-clock reasonable.
SCALE_ENV = "REPRO_SCALE"
#: Environment variable overriding the trace cache directory.
CACHE_ENV = "REPRO_TRACE_CACHE"

#: Rough *visited* branches per function for the default shape family (a
#: single visit executes one path, not every block); used to size function
#: pools from Table 4 targets.
BRANCHES_PER_FUNCTION = 4

#: Cold-pool sizing anchor: the DayTrader DBServ pool (the paper's
#: highest-gain trace) gets this many functions; other workloads scale by
#: their Table 4 unique-branch ratio, clamped so every workload keeps a
#: working set well beyond first-level capacity (floor) while the giants
#: stay simulable (ceiling).  See DESIGN.md §1 on working-set scaling.
ANCHOR_FUNCTIONS = 3_000
ANCHOR_UNIQUE = 34_819
FUNCTIONS_FLOOR = 1_200
FUNCTIONS_CEILING = 6_500


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload: paper counters + generator parameters."""

    name: str
    paper_unique_branches: int
    paper_unique_taken: int
    trace_length: int
    shape: ProgramShape
    profile: WalkProfile
    #: Second program shape for time-sliced mixes (Table 4 trace 5).
    mix_shape: ProgramShape | None = None
    mix_slice: int = 20_000
    base_address: int = 0x0000_0000_1000_0000

    def build_programs(self, scale: float = 1.0) -> list[Program]:
        """Construct the program(s) of this workload at ``scale``.

        Sub-unity scales shrink the function pool along with the trace
        length (see :func:`scaled_functions`) so the revisit rate — the
        thing capacity misses depend on — survives scaling.
        """
        shapes = [self.shape] + ([self.mix_shape] if self.mix_shape else [])
        programs = []
        for index, shape in enumerate(shapes):
            if scale < 1.0:
                shape = replace(
                    shape, functions=scaled_functions(shape.functions, scale)
                )
            programs.append(
                build_program(
                    shape, base_address=self.base_address + index * (1 << 30)
                )
            )
        return programs

    def scaled_length(self, scale: float) -> int:
        """Trace length under ``scale`` (floor of 50k records)."""
        return max(50_000, int(self.trace_length * scale))

    def generate(self, scale: float = 1.0) -> list[TraceRecord]:
        """Generate the trace without touching the cache."""
        length = self.scaled_length(scale)
        programs = self.build_programs(scale)
        if len(programs) == 1:
            return generate_trace(programs[0], length, self.profile)
        return generate_mixed_trace(programs, length, self.mix_slice, self.profile)

    def trace(self, scale: float | None = None) -> list[TraceRecord]:
        """Cached trace for this workload at ``scale`` (default: env/1.0)."""
        if scale is None:
            scale = default_scale()
        cache_file = _cache_path(self, scale)
        if cache_file is not None and cache_file.exists():
            try:
                return load_trace(cache_file)
            except TraceFormatError:
                # Stale or corrupt cache (e.g. written by an older format
                # version no longer decodable) — fall through and regenerate.
                pass
        records = self.generate(scale)
        if cache_file is not None:
            _write_cache(cache_file, records)
        return records

    def trace_path(self, scale: float | None = None) -> Path:
        """Path to an on-disk copy of the trace, for streaming access.

        Ensures the cached file exists and is decodable (regenerating it
        if needed) and returns its path, so callers can
        :func:`repro.trace.reader.open_trace` it instead of materializing
        the record list.  With the trace cache disabled (``REPRO_TRACE_CACHE``
        set to ``off``/``none``/empty) there is no stable location to
        stream from, so this raises ``RuntimeError``; callers fall back to
        in-memory records.
        """
        if scale is None:
            scale = default_scale()
        cache_file = _cache_path(self, scale)
        if cache_file is None:
            raise RuntimeError(
                "trace cache disabled; no on-disk trace to stream from"
            )
        if cache_file.exists():
            try:
                # Cheap validation: open_trace checks header + exact size.
                open_trace(cache_file).close()
                return cache_file
            except TraceFormatError:
                pass
        _write_cache(cache_file, self.generate(scale))
        return cache_file

    def stats(self, scale: float | None = None) -> TraceStats:
        """Trace statistics (the measured Table 4 row)."""
        return collect_stats(self.trace(scale))


def _write_cache(cache_file: Path, records: list[TraceRecord]) -> None:
    """Atomically publish ``records`` to ``cache_file``.

    Write-then-rename: a concurrent reader must never observe a
    half-written trace (the format's record count is patched into the
    header after the body).
    """
    cache_file.parent.mkdir(parents=True, exist_ok=True)
    scratch = cache_file.with_suffix(f".tmp{os.getpid()}")
    save_trace(scratch, records)
    os.replace(scratch, cache_file)


def scaled_functions(functions: int, scale: float) -> int:
    """Function-pool size under a sub-unity trace scale.

    Down to one-third scale the pool stays at full size: shorter traces
    visit fewer of the functions, but the *visited* working set still
    exceeds first-level BTB capacity, and the walker's echo revisits keep
    supplying revisit-after-eviction reuse — the capacity phenomenon
    survives (the bench harness therefore defaults to 0.35, not lower).
    Below one third, the pool shrinks proportionally so micro-scale test
    traces remain self-consistent.
    """
    factor = min(1.0, scale / 0.3)
    floor = min(functions, FUNCTIONS_FLOOR)
    return max(floor, round(functions * factor))


def default_scale() -> float:
    """Trace-length scale from the environment (``REPRO_SCALE``)."""
    raw = os.environ.get(SCALE_ENV)
    if not raw:
        return 1.0
    scale = float(raw)
    if scale <= 0:
        raise ValueError(f"{SCALE_ENV} must be positive, got {raw}")
    return scale


def _cache_path(spec: WorkloadSpec, scale: float) -> Path | None:
    root = os.environ.get(CACHE_ENV, ".trace_cache")
    if root in ("", "off", "none"):
        return None
    key = hashlib.sha256(repr((spec, scale)).encode()).hexdigest()[:16]
    safe_name = spec.name.replace("/", "_").replace(" ", "_").replace("+", "_")
    return Path(root) / f"{safe_name}-{key}.ztrc"


def _spec(
    name: str,
    paper_unique: int,
    paper_taken: int,
    *,
    length: int,
    hot: float,
    taken_bias: float,
    seed: int,
    loop_fraction: float = 0.15,
    mix_with: ProgramShape | None = None,
) -> WorkloadSpec:
    """Build one catalog entry from Table 4 targets.

    ``hot`` is the Zipf-hot fraction of transactions (1 - cold fraction);
    ``taken_bias`` is the biased-taken share of forward conditionals,
    steering the ever-taken / all-branches ratio toward the Table 4 ratio.

    The cold function pool scales with the workload's Table 4 unique-branch
    count (anchored at DayTrader DBServ) so that every workload's working
    set exceeds first-level BTB capacity by a workload-proportional factor
    and cold code is revisited ~4 times within the trace budget — the
    population and reuse structure the capacity-miss taxonomy of Figure 4
    depends on.
    """
    functions = max(
        FUNCTIONS_FLOOR,
        min(FUNCTIONS_CEILING, round(ANCHOR_FUNCTIONS * paper_unique / ANCHOR_UNIQUE)),
    )
    if mix_with is not None:
        functions //= 2
    shape = ProgramShape(
        functions=functions,
        blocks_per_function=(3, 7),
        instructions_per_block=(2, 5),
        call_fraction=0.14,
        forward_taken_bias=taken_bias,
        loop_fraction=loop_fraction,
        loop_trips=(2, 6),
        indirect_fraction=0.02,
        seed=seed,
    )
    return WorkloadSpec(
        name=name,
        paper_unique_branches=paper_unique,
        paper_unique_taken=paper_taken,
        trace_length=length,
        shape=shape,
        profile=WalkProfile(
            uniform_fraction=1.0 - hot,
            burst_mean=2.0,
            max_loop_iterations=12,
            max_call_depth=4,
            seed=seed * 31 + 7,
        ),
        mix_shape=mix_with,
    )


def _half_mix_shape(paper_unique: int, taken_bias: float, seed: int) -> ProgramShape:
    functions = max(
        FUNCTIONS_FLOOR,
        min(FUNCTIONS_CEILING, round(ANCHOR_FUNCTIONS * paper_unique / ANCHOR_UNIQUE)),
    )
    return ProgramShape(
        functions=functions // 2,
        blocks_per_function=(3, 7),
        instructions_per_block=(2, 5),
        call_fraction=0.14,
        forward_taken_bias=taken_bias,
        indirect_fraction=0.02,
        seed=seed,
    )


# The 13 traces of Table 4.  Paper counters are verbatim; lengths and mix
# knobs are our calibration (larger footprints get longer traces and a
# colder transaction mix, like the server-side workloads they model).
TABLE4_WORKLOADS: tuple[WorkloadSpec, ...] = (
    _spec("Z/OS LSPR CB84", 15_244, 10_963, length=950_000, hot=0.55,
          taken_bias=0.45, seed=101, loop_fraction=0.18),
    _spec("Z/OS LSPR CICS/DB2", 40_667, 27_500, length=1_800_000, hot=0.48,
          taken_bias=0.40, seed=102),
    _spec("Z/OS LSPR IMS", 29_692, 19_673, length=1_450_000, hot=0.50,
          taken_bias=0.38, seed=103),
    _spec("Z/OS LSPR CB-L", 25_622, 16_612, length=1_250_000, hot=0.50,
          taken_bias=0.36, seed=104),
    _spec("Z/OS LSPR WASDB+CBW2", 114_955, 51_371, length=2_000_000, hot=0.42,
          taken_bias=0.18, seed=105,
          mix_with=_half_mix_shape(114_955, 0.18, 1105)),
    _spec("Z/OS Trade6", 115_509, 56_017, length=2_000_000, hot=0.42,
          taken_bias=0.20, seed=106),
    _spec("TPF airline reservations", 11_160, 9_317, length=900_000, hot=0.58,
          taken_bias=0.60, seed=107, loop_fraction=0.22),
    _spec("Z/OS AppServ benchmark", 26_340, 16_980, length=1_300_000, hot=0.50,
          taken_bias=0.36, seed=108),
    _spec("Z/OS DBServ benchmark", 38_655, 20_020, length=1_800_000, hot=0.48,
          taken_bias=0.24, seed=109),
    _spec("Z/OS DayTrader AppServ", 67_336, 30_165, length=2_000_000, hot=0.45,
          taken_bias=0.18, seed=110),
    _spec("Z/OS DayTrader DBServ", 34_819, 22_217, length=1_700_000, hot=0.48,
          taken_bias=0.38, seed=111),
    _spec("zLinux Informix", 16_810, 11_765, length=950_000, hot=0.54,
          taken_bias=0.42, seed=112),
    _spec("zLinux Trade6", 69_847, 31_897, length=2_000_000, hot=0.45,
          taken_bias=0.20, seed=113),
)


def workload_by_name(name: str):
    """Look up a catalog workload by (case-insensitive substring) name.

    Searches the Table 4 synthetics first, then the adversarial
    microbenchmark family (:mod:`repro.workloads.adversarial`), so both
    populations resolve through one name space everywhere a workload can
    be named (``simulate``, ``RunSpec``, golden gates, ablations).
    """
    lowered = name.lower()
    for spec in TABLE4_WORKLOADS:
        if lowered in spec.name.lower():
            return spec
    from repro.workloads.adversarial import ADVERSARIAL_WORKLOADS

    for spec in ADVERSARIAL_WORKLOADS:
        if lowered in spec.name.lower():
            return spec
    raise KeyError(f"no workload matching {name!r}")


#: The traces singled out by the paper's result sections.
DAYTRADER_DBSERV = workload_by_name("DayTrader DBServ")
WASDB_CBW2 = workload_by_name("WASDB+CBW2")
WEB_CICS_DB2 = workload_by_name("CICS/DB2")
