"""repro — reproduction of "Two Level Bulk Preload Branch Prediction".

A trace-driven Python implementation of the IBM zEnterprise EC12 two-level
branch prediction hierarchy (HPCA 2013): BTB1/BTBP/BTB2, PHT, CTB, FIT, the
asynchronous lookahead search pipeline, perceived-miss detection, I-cache
filtering, search trackers, ordering-table steering, and the bulk transfer
engine — plus the synthetic workload substrate and the benchmark harness
regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro import Simulator, ZEC12_CONFIG_1, ZEC12_CONFIG_2
    from repro.workloads import DAYTRADER_DBSERV

    trace = DAYTRADER_DBSERV.trace(scale=0.2)
    base = Simulator(ZEC12_CONFIG_1).run(trace)
    with_btb2 = Simulator(ZEC12_CONFIG_2).run(trace)
    print(base.cpi, with_btb2.cpi)
"""

from repro.core.config import (
    ExclusivityMode,
    FilterMode,
    PredictorConfig,
    TABLE3_CONFIGS,
    ZEC12_CONFIG_1,
    ZEC12_CONFIG_2,
    ZEC12_CONFIG_3,
)
from repro.core.events import OutcomeKind
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import SimulationResult, Simulator, simulate
from repro.metrics.counters import btb2_effectiveness, cpi_improvement

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_TIMING",
    "ExclusivityMode",
    "FilterMode",
    "OutcomeKind",
    "PredictorConfig",
    "SimulationResult",
    "Simulator",
    "TABLE3_CONFIGS",
    "TimingParams",
    "ZEC12_CONFIG_1",
    "ZEC12_CONFIG_2",
    "ZEC12_CONFIG_3",
    "__version__",
    "btb2_effectiveness",
    "cpi_improvement",
    "simulate",
]
