"""Compact on-disk trace format (writer side).

Traces are stored as a small binary format so that generated workloads can be
saved once and replayed by every experiment.  The format is deliberately
simple and self-describing:

* 16-byte header: magic ``b"ZTRC"``, format version (u32 LE), record count
  (u64 LE).
* One 20-byte record per instruction: address (u64), packed metadata (u32:
  length in bits 0..2, branch-kind+1 in bits 3..5, taken in bit 6), target
  (u64, zero when absent).

All integers are little-endian on disk regardless of the simulated machine's
big-endian bit *numbering* — the numbering convention only affects how index
fields are extracted, not host serialization.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable

from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord

MAGIC = b"ZTRC"
VERSION = 1
HEADER = struct.Struct("<4sIQ")
RECORD = struct.Struct("<IQQ")

#: Stable integer encoding of branch kinds (0 = not a branch).
KIND_CODES: dict[BranchKind | None, int] = {
    None: 0,
    BranchKind.COND: 1,
    BranchKind.UNCOND: 2,
    BranchKind.CALL: 3,
    BranchKind.RETURN: 4,
    BranchKind.INDIRECT: 5,
}
CODE_KINDS: dict[int, BranchKind | None] = {v: k for k, v in KIND_CODES.items()}


def pack_record(record: TraceRecord) -> bytes:
    """Serialize one record to its 20-byte wire form."""
    meta = (record.length & 0x7) | (KIND_CODES[record.kind] << 3)
    if record.taken:
        meta |= 1 << 6
    target = record.target if record.target is not None else 0
    return RECORD.pack(meta, record.address, target)


def write_trace(stream: BinaryIO, records: Iterable[TraceRecord]) -> int:
    """Write ``records`` to ``stream``; return the record count.

    The record count is not known up front for arbitrary iterables, so the
    header is written last via a seek — ``stream`` must therefore be seekable.
    """
    stream.write(HEADER.pack(MAGIC, VERSION, 0))
    count = 0
    for record in records:
        stream.write(pack_record(record))
        count += 1
    stream.seek(0)
    stream.write(HEADER.pack(MAGIC, VERSION, count))
    stream.seek(0, 2)
    return count


def save_trace(path, records: Iterable[TraceRecord]) -> int:
    """Write ``records`` to the file at ``path``; return the record count."""
    with open(path, "wb") as stream:
        return write_trace(stream, records)
