"""Compact on-disk trace format (writer side).

Traces are stored as a small binary format so that generated workloads can be
saved once and replayed by every experiment.  The format is deliberately
simple and self-describing:

* 16-byte header: magic ``b"ZTRC"``, format version (u32 LE), record count
  (u64 LE).
* One 20-byte record per instruction: packed metadata (u32: length in bits
  0..2, branch-kind+1 in bits 3..5, taken in bit 6, target-valid in bit 7),
  address (u64), target (u64, zero when absent).

Version history:

* v1 had no target-valid bit; readers reconstructed ``target is None`` from
  ``taken``/``kind``/``target != 0``, which was lossy for not-taken branches
  carrying a recorded target (and for a legitimate target of zero).  The
  reader still accepts v1 streams with the legacy reconstruction.
* v2 (current) records target presence explicitly in bit 7, making the
  writer/reader pair a true bijection over every ``BranchKind`` x ``taken``
  x ``target`` combination.

All integers are little-endian on disk regardless of the simulated machine's
big-endian bit *numbering* — the numbering convention only affects how index
fields are extracted, not host serialization.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable

from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord

MAGIC = b"ZTRC"
VERSION = 2
#: Versions :mod:`repro.trace.reader` knows how to decode.
SUPPORTED_VERSIONS = (1, 2)
HEADER = struct.Struct("<4sIQ")
RECORD = struct.Struct("<IQQ")

#: Meta bit 6: the branch resolved taken.
TAKEN_BIT = 1 << 6
#: Meta bit 7 (v2+): the record carries a target (``target is not None``).
TARGET_VALID_BIT = 1 << 7

#: Stable integer encoding of branch kinds (0 = not a branch).
KIND_CODES: dict[BranchKind | None, int] = {
    None: 0,
    BranchKind.COND: 1,
    BranchKind.UNCOND: 2,
    BranchKind.CALL: 3,
    BranchKind.RETURN: 4,
    BranchKind.INDIRECT: 5,
}
CODE_KINDS: dict[int, BranchKind | None] = {v: k for k, v in KIND_CODES.items()}


def pack_record(record: TraceRecord) -> bytes:
    """Serialize one record to its 20-byte wire form."""
    meta = (record.length & 0x7) | (KIND_CODES[record.kind] << 3)
    if record.taken:
        meta |= TAKEN_BIT
    if record.target is not None:
        meta |= TARGET_VALID_BIT
    target = record.target if record.target is not None else 0
    return RECORD.pack(meta, record.address, target)


def write_trace(stream: BinaryIO, records: Iterable[TraceRecord]) -> int:
    """Write ``records`` to ``stream``; return the record count.

    The record count is not known up front for arbitrary iterables, so the
    header is written last via a seek — ``stream`` must therefore be seekable.
    """
    stream.write(HEADER.pack(MAGIC, VERSION, 0))
    count = 0
    for record in records:
        stream.write(pack_record(record))
        count += 1
    stream.seek(0)
    stream.write(HEADER.pack(MAGIC, VERSION, count))
    stream.seek(0, 2)
    return count


def save_trace(path, records: Iterable[TraceRecord]) -> int:
    """Write ``records`` to the file at ``path``; return the record count."""
    with open(path, "wb") as stream:
        return write_trace(stream, records)
