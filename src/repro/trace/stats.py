"""Trace statistics — the counters behind the paper's Table 4.

The paper selects "large footprint" traces by their number of unique branch
instruction addresses (and unique *taken* branch addresses): "any trace with
more than 5,000 unique taken branch instruction addresses is a good candidate
for showing improvement from additional branch prediction capacity"
(section 4).  :class:`TraceStats` computes exactly those counters plus a few
footprint estimates used elsewhere in the paper (24-30 bytes of instruction
space per ever-taken branch, section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.trace.record import TraceRecord

#: Paper threshold for a "large footprint" trace (section 4).
LARGE_FOOTPRINT_TAKEN_BRANCHES = 5_000

#: Paper estimate of instruction bytes covered per installed BTB entry.
FOOTPRINT_BYTES_PER_ENTRY = (24, 30)


@dataclass
class TraceStats:
    """Aggregate statistics of one dynamic trace."""

    instructions: int = 0
    branches: int = 0
    taken_branches: int = 0
    unique_branch_addresses: int = 0
    unique_taken_branch_addresses: int = 0
    unique_instruction_bytes: int = 0
    _branch_addresses: set[int] = field(default_factory=set, repr=False)
    _taken_addresses: set[int] = field(default_factory=set, repr=False)
    _rows_touched: set[int] = field(default_factory=set, repr=False)

    def observe(self, record: TraceRecord) -> None:
        """Fold one record into the statistics."""
        self.instructions += 1
        self._rows_touched.add(record.address >> 5)
        if record.is_branch:
            self.branches += 1
            self._branch_addresses.add(record.address)
            if record.taken:
                self.taken_branches += 1
                self._taken_addresses.add(record.address)
        self.unique_branch_addresses = len(self._branch_addresses)
        self.unique_taken_branch_addresses = len(self._taken_addresses)
        self.unique_instruction_bytes = len(self._rows_touched) * 32

    @property
    def taken_fraction(self) -> float:
        """Fraction of dynamic branches that were taken."""
        return self.taken_branches / self.branches if self.branches else 0.0

    @property
    def branch_density(self) -> float:
        """Dynamic branches per instruction."""
        return self.branches / self.instructions if self.instructions else 0.0

    @property
    def is_large_footprint(self) -> bool:
        """Paper's selection criterion for capacity-sensitive traces."""
        return self.unique_taken_branch_addresses > LARGE_FOOTPRINT_TAKEN_BRANCHES

    @property
    def estimated_btb_footprint_bytes(self) -> tuple[int, int]:
        """Estimated instruction footprint (low, high) of the ever-taken set.

        Uses the paper's 24-30 bytes-per-entry rule of thumb.
        """
        low, high = FOOTPRINT_BYTES_PER_ENTRY
        n = self.unique_taken_branch_addresses
        return (n * low, n * high)


def collect_stats(records: Iterable[TraceRecord]) -> TraceStats:
    """Compute :class:`TraceStats` over an iterable of records."""
    stats = TraceStats()
    for record in records:
        stats.observe(record)
    return stats
