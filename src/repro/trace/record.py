"""Dynamic trace records.

A trace is a sequence of :class:`TraceRecord` objects, one per executed
instruction, in program order.  This mirrors the instruction traces the paper
feeds to IBM's C++ model: each record carries the instruction address and
length, and for branches, the resolved direction and target.

Records are deliberately small and immutable: traces run to millions of
records and are the inner-loop data structure of the whole simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import BranchKind


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One executed instruction.

    ``taken``/``target`` are meaningful only when ``kind`` is not ``None``;
    ``target`` is the resolved target of a taken branch (``None`` when
    not taken).
    """

    address: int
    length: int
    kind: BranchKind | None = None
    taken: bool = False
    target: int | None = None

    @property
    def is_branch(self) -> bool:
        """True when this record is a branch execution."""
        return self.kind is not None

    @property
    def next_sequential(self) -> int:
        """Address of the sequentially following instruction."""
        return self.address + self.length

    @property
    def next_address(self) -> int:
        """Address control flow actually went to after this instruction."""
        if self.is_branch and self.taken:
            if self.target is None:
                raise ValueError(f"taken branch at {self.address:#x} has no target")
            return self.target
        return self.next_sequential

    def validate(self) -> None:
        """Raise ``ValueError`` if the record is internally inconsistent."""
        if self.length not in (2, 4, 6):
            raise ValueError(f"illegal length {self.length} at {self.address:#x}")
        if self.taken and not self.is_branch:
            raise ValueError(f"non-branch marked taken at {self.address:#x}")
        if self.taken and self.target is None:
            raise ValueError(f"taken branch without target at {self.address:#x}")
        if self.is_branch and self.kind.always_taken and not self.taken:
            raise ValueError(
                f"{self.kind} branch at {self.address:#x} cannot fall through"
            )
