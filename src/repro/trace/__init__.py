"""Trace substrate: records, binary round-trip, and Table 4 statistics."""

from repro.trace.reader import TraceFormatError, iter_trace, load_trace
from repro.trace.record import TraceRecord
from repro.trace.stats import (
    LARGE_FOOTPRINT_TAKEN_BRANCHES,
    TraceStats,
    collect_stats,
)
from repro.trace.writer import save_trace, write_trace

__all__ = [
    "LARGE_FOOTPRINT_TAKEN_BRANCHES",
    "TraceFormatError",
    "TraceRecord",
    "TraceStats",
    "collect_stats",
    "iter_trace",
    "load_trace",
    "save_trace",
    "write_trace",
]
