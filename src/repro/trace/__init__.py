"""Trace substrate: records, binary round-trip, and Table 4 statistics."""

from repro.trace.reader import (
    TraceFile,
    TraceFormatError,
    iter_trace,
    load_trace,
    open_trace,
)
from repro.trace.record import TraceRecord
from repro.trace.stats import (
    LARGE_FOOTPRINT_TAKEN_BRANCHES,
    TraceStats,
    collect_stats,
)
from repro.trace.writer import save_trace, write_trace

__all__ = [
    "LARGE_FOOTPRINT_TAKEN_BRANCHES",
    "TraceFile",
    "TraceFormatError",
    "TraceRecord",
    "TraceStats",
    "collect_stats",
    "iter_trace",
    "load_trace",
    "open_trace",
    "save_trace",
    "write_trace",
]
