"""Compact on-disk trace format (reader side).

See :mod:`repro.trace.writer` for the format definition.
"""

from __future__ import annotations

from typing import BinaryIO, Iterator

from repro.trace.record import TraceRecord
from repro.trace.writer import CODE_KINDS, HEADER, MAGIC, RECORD, VERSION


class TraceFormatError(ValueError):
    """Raised when a trace stream does not conform to the format."""


def read_header(stream: BinaryIO) -> int:
    """Consume and validate the header; return the declared record count."""
    raw = stream.read(HEADER.size)
    if len(raw) != HEADER.size:
        raise TraceFormatError("truncated trace header")
    magic, version, count = HEADER.unpack(raw)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    if version != VERSION:
        raise TraceFormatError(f"unsupported trace version {version}")
    return count


def iter_trace(stream: BinaryIO) -> Iterator[TraceRecord]:
    """Yield records from an open trace stream, validating the count."""
    count = read_header(stream)
    for index in range(count):
        raw = stream.read(RECORD.size)
        if len(raw) != RECORD.size:
            raise TraceFormatError(f"truncated at record {index}/{count}")
        meta, address, target = RECORD.unpack(raw)
        kind = CODE_KINDS.get((meta >> 3) & 0x7)
        taken = bool(meta & (1 << 6))
        yield TraceRecord(
            address=address,
            length=meta & 0x7,
            kind=kind,
            taken=taken,
            target=target if (taken or (kind is not None and target)) else None,
        )


def load_trace(path) -> list[TraceRecord]:
    """Read the entire trace at ``path`` into memory."""
    with open(path, "rb") as stream:
        return list(iter_trace(stream))
