"""Compact on-disk trace format (reader side).

See :mod:`repro.trace.writer` for the format definition and version history.

Two access styles are provided:

* :func:`iter_trace` / :func:`load_trace` — forward streaming / full
  materialization over an already-open stream or a path.
* :func:`open_trace` / :class:`TraceFile` — random access over the file.
  Because every record is a fixed :data:`~repro.trace.writer.RECORD` size,
  ``TraceFile`` can seek straight to record *i* and stream any
  ``[start, stop)`` window without touching the rest of the file.  The
  sampled-simulation fast-forward path uses this so warming a trace never
  requires materializing millions of ``TraceRecord`` objects up front.
"""

from __future__ import annotations

import os
from typing import BinaryIO, Iterator

from repro.trace.record import TraceRecord
from repro.trace.writer import (
    CODE_KINDS,
    HEADER,
    MAGIC,
    RECORD,
    SUPPORTED_VERSIONS,
    TAKEN_BIT,
    TARGET_VALID_BIT,
    VERSION,
)


class TraceFormatError(ValueError):
    """Raised when a trace stream does not conform to the format."""


def read_header(stream: BinaryIO) -> tuple[int, int]:
    """Consume and validate the header; return ``(record count, version)``."""
    raw = stream.read(HEADER.size)
    if len(raw) != HEADER.size:
        raise TraceFormatError("truncated trace header")
    magic, version, count = HEADER.unpack(raw)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError(f"unsupported trace version {version}")
    return count, version


def _decode(raw: bytes, version: int) -> TraceRecord:
    """Decode one packed record according to ``version``."""
    meta, address, target = RECORD.unpack(raw)
    kind = CODE_KINDS.get((meta >> 3) & 0x7)
    taken = bool(meta & TAKEN_BIT)
    if version >= 2:
        has_target = bool(meta & TARGET_VALID_BIT)
    else:
        # v1 wrote no target-valid bit; reconstruct with the historical
        # heuristic (lossy for not-taken branches carrying a target).
        has_target = bool(taken or (kind is not None and target))
    return TraceRecord(
        address=address,
        length=meta & 0x7,
        kind=kind,
        taken=taken,
        target=target if has_target else None,
    )


def iter_trace(stream: BinaryIO) -> Iterator[TraceRecord]:
    """Yield records from an open trace stream, validating the count.

    The stream must contain exactly the declared number of records: both a
    short read and trailing bytes after the last record raise
    :class:`TraceFormatError`.
    """
    count, version = read_header(stream)
    for index in range(count):
        raw = stream.read(RECORD.size)
        if len(raw) != RECORD.size:
            raise TraceFormatError(f"truncated at record {index}/{count}")
        yield _decode(raw, version)
    if stream.read(1):
        raise TraceFormatError(
            f"trailing bytes after declared record count {count}"
        )


def load_trace(path) -> list[TraceRecord]:
    """Read the entire trace at ``path`` into memory."""
    with open(path, "rb") as stream:
        return list(iter_trace(stream))


class TraceFile:
    """Random-access view of an on-disk trace.

    Keeps only the open file handle; records are decoded on demand.  Usable
    as a context manager and as a sequence-like source of windows::

        with open_trace(path) as trace:
            for record in trace.iter_from(1_000_000, 1_010_000):
                ...
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._stream: BinaryIO | None = open(self.path, "rb")
        try:
            self.count, self.version = read_header(self._stream)
            expected = HEADER.size + self.count * RECORD.size
            actual = os.fstat(self._stream.fileno()).st_size
            if actual != expected:
                raise TraceFormatError(
                    f"file size {actual} != {expected} implied by "
                    f"record count {self.count}"
                )
        except BaseException:
            self._stream.close()
            self._stream = None
            raise

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "TraceFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return self.count

    def _require_stream(self) -> BinaryIO:
        if self._stream is None:
            raise ValueError(f"trace file {self.path} is closed")
        return self._stream

    def record(self, index: int) -> TraceRecord:
        """Decode the single record at ``index``."""
        if not 0 <= index < self.count:
            raise IndexError(f"record {index} out of range [0, {self.count})")
        stream = self._require_stream()
        stream.seek(HEADER.size + index * RECORD.size)
        raw = stream.read(RECORD.size)
        if len(raw) != RECORD.size:
            raise TraceFormatError(f"truncated at record {index}/{self.count}")
        return _decode(raw, self.version)

    def iter_from(self, start: int = 0,
                  stop: int | None = None) -> Iterator[TraceRecord]:
        """Stream records in ``[start, stop)`` without loading the rest.

        Reads in fixed-size chunks so a multi-million-record fast-forward
        costs a handful of large sequential reads, not one syscall per
        record.
        """
        stop = self.count if stop is None else min(stop, self.count)
        if start < 0 or start > self.count:
            raise IndexError(f"start {start} out of range [0, {self.count}]")
        if stop <= start:
            return
        stream = self._require_stream()
        stream.seek(HEADER.size + start * RECORD.size)
        remaining = stop - start
        per_chunk = 4096
        size = RECORD.size
        while remaining:
            batch = min(per_chunk, remaining)
            raw = stream.read(batch * size)
            if len(raw) != batch * size:
                raise TraceFormatError(
                    f"truncated at record {stop - remaining}/{self.count}"
                )
            for offset in range(0, len(raw), size):
                yield _decode(raw[offset:offset + size], self.version)
            remaining -= batch

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.iter_from(0, self.count)


def open_trace(path) -> TraceFile:
    """Open the trace at ``path`` for streaming / random access."""
    return TraceFile(path)


class TraceStreamDecoder:
    """Incremental decoder for a byte stream of packed trace records.

    The network-facing sibling of :func:`iter_trace`: bytes arrive in
    arbitrary fragments (socket reads, HTTP chunks) and complete records
    are yielded as they become decodable, with any partial tail buffered
    until the next :meth:`feed`.  The stream is *headerless* — a live
    session has no up-front record count — and decoded with the current
    format version unless another supported one is requested.

    Used by the ``repro.service`` ingest path; also handy for piped
    "live" trace frontends (ROADMAP item 3).
    """

    def __init__(self, version: int = VERSION) -> None:
        if version not in SUPPORTED_VERSIONS:
            raise TraceFormatError(f"unsupported trace version {version}")
        self.version = version
        self._buffer = bytearray()
        #: Complete records decoded so far.
        self.decoded = 0

    def feed(self, data: bytes) -> list[TraceRecord]:
        """Decode every complete record in ``buffered + data``.

        Returns the (possibly empty) list of newly complete records; a
        trailing partial record stays buffered for the next call.
        """
        self._buffer.extend(data)
        size = RECORD.size
        usable = len(self._buffer) - (len(self._buffer) % size)
        if not usable:
            return []
        view = bytes(self._buffer[:usable])
        del self._buffer[:usable]
        records = [
            _decode(view[offset:offset + size], self.version)
            for offset in range(0, usable, size)
        ]
        self.decoded += len(records)
        return records

    @property
    def pending(self) -> int:
        """Bytes of an incomplete trailing record currently buffered."""
        return len(self._buffer)

    def finish(self) -> None:
        """Assert the stream ended on a record boundary.

        Raises :class:`TraceFormatError` when a partial record is still
        buffered — the sender stopped mid-record.
        """
        if self._buffer:
            raise TraceFormatError(
                f"stream ended mid-record: {len(self._buffer)} trailing "
                f"byte(s) after {self.decoded} complete record(s)"
            )
