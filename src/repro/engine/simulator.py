"""Whole-system trace-driven simulator.

Binds the first-level predictor, the lookahead search pipeline, the BTB2
preload engine and the L1I model to a dynamic trace, accounting cycles per
the penalty model of :mod:`repro.engine.params` and classifying every
dynamic branch outcome per the Figure 4 taxonomy.

Simulation contract (see DESIGN.md §1/§7 for the substitution rationale):

* instructions are consumed in order at ``1/decode_width`` cycles each,
  taken branches occupying at least one decode cycle;
* the lookahead search engine runs on its own clock; a prediction helps
  only if broadcast at or before the cycle decode consumes the branch,
  otherwise the branch is a surprise (latency class);
* correctly predicted taken branches prefetch their target line, hiding
  some or all of the L2 instruction latency;
* mispredictions and bad surprises add flat restart penalties and restart
  the search engine at the resolved next address;
* the BTB2 transfer engine runs concurrently; transferred entries become
  visible in the BTBP at their transfer-completion cycles.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (audit -> engine)
    from repro.audit import Auditor
    from repro.telemetry import Telemetry

from repro.btb.btb2 import BTB2
from repro.caches.icache import ICache
from repro.core.config import PredictorConfig, ZEC12_CONFIG_2
from repro.core.events import MissReport, OutcomeKind, Prediction, PredictionLevel
from repro.core.hierarchy import FirstLevelPredictor, RowHit
from repro.core.search import LookaheadSearch
from repro.engine.batched import resolve_engine_mode, validate_engine_mode
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.isa.address import block_address, sector_address
from repro.metrics.counters import SimCounters
from repro.preload.engine import PreloadEngine
from repro.trace.record import TraceRecord


@dataclass
class SimulationResult:
    """Outcome of one simulation run: counters plus structure snapshots."""

    config_name: str
    counters: SimCounters
    search_stats: dict[str, int] = field(default_factory=dict)
    btbp_stats: dict[str, int] = field(default_factory=dict)
    btb2_stats: dict[str, int] = field(default_factory=dict)
    preload_stats: dict[str, int] = field(default_factory=dict)
    icache_stats: dict[str, float] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        """Cycles per instruction of the run."""
        return self.counters.cpi

    @property
    def bad_outcome_fraction(self) -> float:
        """Fraction of branch outcomes that are bad (Figure 4)."""
        return self.counters.bad_outcome_fraction


class Simulator:
    """One core, one trace, one configuration."""

    #: Pending-prefetch map size beyond which completed/evicted entries are
    #: pruned (class attribute so tests can lower it).
    LINE_FILL_PRUNE_LIMIT = 8192

    #: Version of the :meth:`state_dict` schema.  Bump on any change to what
    #: a snapshot contains; :meth:`load_state_dict` refuses other versions.
    STATE_VERSION = 1

    #: 4 KB blocks remembered by the functional-warming bulk preload
    #: (:meth:`warm_step`): a block already preloaded this recently is not
    #: preloaded again.  The window mirrors the tracker file's per-block
    #: dedup, so it must stay near the architected tracker count — a wide
    #: window would suppress the re-preloads that happen on every block
    #: revisit in detailed mode, and a very narrow one re-preloads far more
    #: often than the real engine ever searches.  16 was calibrated against
    #: the detailed engine's transfer volume on the Table 4 workloads.
    WARM_PRELOAD_BLOCKS = 16

    def __init__(
        self,
        config: PredictorConfig = ZEC12_CONFIG_2,
        timing: TimingParams = DEFAULT_TIMING,
        audit: "Auditor | None" = None,
        telemetry: "Telemetry | None" = None,
        engine_mode: str = "object",
    ) -> None:
        self.config = config
        self.timing = timing
        self.engine_mode = validate_engine_mode(engine_mode)
        self.btb2 = (
            BTB2(rows=config.btb2_rows, ways=config.btb2_ways)
            if config.btb2_enabled
            else None
        )
        self.hierarchy = FirstLevelPredictor(config, btb2=self.btb2)
        self.icache = ICache(
            capacity_bytes=timing.icache_capacity_bytes,
            ways=timing.icache_ways,
            line_bytes=timing.icache_line_bytes,
            miss_window=timing.icache_miss_window,
        )
        self.preload = (
            PreloadEngine(config, self.btb2, self.hierarchy, self.icache)
            if self.btb2 is not None
            else None
        )
        self.search = LookaheadSearch(
            self.hierarchy,
            miss_limit=config.miss_search_limit,
            on_miss=self._on_perceived_miss,
        )
        self.counters = SimCounters()
        self._cycle = 0.0
        self._started = False
        self._expected_address: int | None = None
        self._seen_branches: set[int] = set()
        self._current_line = -1
        #: line address -> cycle its L2 fill completes (prefetches in flight).
        self._line_fills: dict[int, float] = {}
        #: Recently warm-preloaded 4 KB blocks (LRU order), warming-mode only.
        self._warm_blocks: OrderedDict[int, None] = OrderedDict()
        self.audit = audit
        if audit is not None:
            audit.attach(self)
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach(self)
        #: Optional lockstep observer (:mod:`repro.oracle.differential`);
        #: ``None`` keeps the branch-resolution paths hook-free.
        self.probe = None

    # -- callbacks -----------------------------------------------------------

    def _on_perceived_miss(self, report: MissReport) -> None:
        if self.preload is not None:
            self.preload.advance(report.cycle)
            self.preload.report_btb1_miss(report)

    # -- public API ------------------------------------------------------------

    def resolved_engine_mode(self) -> str:
        """The concrete engine :meth:`run`/:meth:`warm_run` will use.

        ``auto`` resolves to ``batched`` exactly when no per-record
        observer (audit, telemetry, differential probe) is attached.
        """
        observed = (
            self.audit is not None
            or self.telemetry is not None
            or self.probe is not None
        )
        return resolve_engine_mode(self.engine_mode, observed=observed)

    def run(self, records: Iterable[TraceRecord]) -> SimulationResult:
        """Simulate ``records`` and return the collected results.

        Dispatches on :attr:`engine_mode`: the per-record object loop, or
        the bit-identical batched core of :mod:`repro.engine.batched`.
        """
        if self.resolved_engine_mode() == "batched":
            from repro.engine.batched import BatchedSimulator

            return BatchedSimulator(self).run(records)
        for record in records:
            self.step(record)
        return self.finish()

    def step(self, record: TraceRecord) -> None:
        """Simulate one trace record."""
        if not self._started:
            self.search.restart(record.address, 0)
            self._started = True
        elif record.address != self._expected_address:
            # Control arrived somewhere the previous record cannot explain:
            # a time-slice switch or interrupt in the trace.  Fetch and the
            # lookahead searcher restart at the new stream, as on hardware;
            # the fetch state of the old stream is dead — forgetting
            # ``_current_line`` forces a real fetch of the new stream's
            # first line (even when it aliases the old one), and in-flight
            # prefetch fills must not attribute hidden misses to a context
            # that never launched them.
            self.counters.context_switches += 1
            self.search.restart(record.address, math.ceil(self._cycle))
            self._current_line = -1
            self._line_fills.clear()
            if self.telemetry is not None:
                self.telemetry.on_context_switch(self._cycle, record.address)
        self._expected_address = record.next_address
        self.counters.instructions += 1
        self._cycle += self.timing.base_decode_cycles
        if self.preload is not None:
            self.preload.advance(int(self._cycle))
        self._fetch(record.address)
        if record.is_branch:
            self._branch(record)
        if self.preload is not None:
            self.preload.observe_completion(record.address)
        if self.audit is not None:
            self.audit.after_step(self, record)
        if self.telemetry is not None:
            self.telemetry.after_step(self, record)

    # -- functional warming ----------------------------------------------------

    def warm_step(self, record: TraceRecord) -> None:
        """Consume one record in functional-warming mode (SMARTS-style).

        Predictors and caches keep learning — BTB content migrates, the
        bimodal/PHT/CTB/surprise-BHT state trains, icache tags update — but
        no cycle accounting, no lookahead-search timing, and no counter
        mutation happens.  This is what makes interval sampling fast: the
        fast-forward path costs a couple of table probes per record instead
        of the full pipeline model.

        The search/transfer machinery idles during warming; the sampling
        runner calls :meth:`begin_interval` before each measured interval to
        resynchronize it.
        """
        if not self._started:
            self._started = True
        elif record.address != self._expected_address:
            # Context switch while warming: the old stream's fetch state is
            # dead, exactly as in :meth:`step`, but without cycle accounting.
            self._current_line = -1
            self._line_fills.clear()
        self._expected_address = record.next_address
        line = record.address & ~(self.timing.icache_line_bytes - 1)
        if line != self._current_line:
            self._current_line = line
            self.icache.fetch(record.address, int(self._cycle))
        if record.kind is None:
            return
        entry = self.hierarchy.btb1.lookup(record.address)
        if entry is not None:
            self.hierarchy.btb1.touch(entry)
        elif self.hierarchy.btbp is not None:
            entry = self.hierarchy.btbp.lookup(record.address)
            if entry is not None:
                # Warming approximates every BTBP hit as a used prediction:
                # the entry is promoted into the BTB1 and the victim chain
                # runs, keeping capacity pressure realistic.
                self.hierarchy.use_prediction(
                    RowHit(entry, PredictionLevel.BTBP,
                           self.hierarchy.btbp.is_mru(entry))
                )
        if entry is not None:
            self.hierarchy.train(entry, record)
        else:
            if self.btb2 is not None:
                self._warm_preload(record.address)
            if record.taken and record.target is not None:
                self.hierarchy.surprise_install(record)
        if record.taken and record.target is not None:
            self.icache.prefetch(record.target)
        self.hierarchy.record_resolved_branch(record)
        self._seen_branches.add(record.address)

    def _warm_preload(self, address: int) -> None:
        """Functional stand-in for the bulk-preload engine during warming.

        A first-level miss in detailed mode produces a miss report, a
        tracker, and BTB2→BTBP transfers.  Warming has no timing to drive
        that machinery, so it approximates the steady-state *content* effect
        directly, mirroring the tracker escalation of section 3.5/3.6: the
        first miss in a 4 KB block runs the partial search (a few rows at
        the miss sector), a repeat miss in the same block upgrades to the
        full-block search, further misses are absorbed — all with the same
        clone/demote transfer semantics as the real engine, deduplicated
        per block over a small LRU window sized like the tracker file.
        Without this, measured intervals would start with a systematically
        underfilled BTBP and overestimate CPI.
        """
        block = block_address(address)
        stage = self._warm_blocks.get(block)
        if stage == 2:
            self._warm_blocks.move_to_end(block)
            return
        preload_write = self.hierarchy.preload_write
        if stage is None:
            self._warm_blocks[block] = 1
            if len(self._warm_blocks) > self.WARM_PRELOAD_BLOCKS:
                self._warm_blocks.popitem(last=False)
            entries = self.btb2.transfer_span(
                sector_address(address), self.config.partial_search_rows
            )
        else:
            self._warm_blocks[block] = 2
            self._warm_blocks.move_to_end(block)
            entries = self.btb2.transfer_block(block)
        for entry in entries:
            preload_write(entry)

    def warm_run(self, records: Iterable[TraceRecord]) -> None:
        """Functionally warm a span of records (bulk :meth:`warm_step`).

        Behaviorally identical to calling :meth:`warm_step` on each record
        in order — pinned by an equivalence test over full state snapshots —
        but with the record loop and every hot attribute lookup hoisted into
        one frame.  Warming throughput bounds sampled-simulation speedup
        (the detailed fraction is small), so this path is worth the
        duplication.

        Under ``engine_mode in ("batched", "auto")`` the span is consumed
        by :func:`repro.engine.batched.warm_run_batched`, which skips the
        (effect-free) quiet records outright — also bit-identical.
        """
        if self.resolved_engine_mode() == "batched":
            from repro.engine.batched import warm_run_batched

            warm_run_batched(self, records)
            return
        hierarchy = self.hierarchy
        btb1 = hierarchy.btb1
        btb1_lookup = btb1.lookup
        btb1_touch = btb1.touch
        btbp = hierarchy.btbp
        btbp_lookup = btbp.lookup if btbp is not None else None
        btbp_is_mru = btbp.is_mru if btbp is not None else None
        warm_preload = self._warm_preload if self.btb2 is not None else None
        train = hierarchy.train
        use_prediction = hierarchy.use_prediction
        surprise_install = hierarchy.surprise_install
        # record_resolved_branch and icache.prefetch, unwrapped: the former
        # is two calls, and a prefetch's install alone leaves the cache in
        # the same state as probe+install (the probe only feeds the unused
        # already-present return).
        bht_update = hierarchy.surprise_bht.update
        history_record = hierarchy.history.record
        icache_fetch = self.icache.fetch
        icache_prefetch = self.icache._cache.install
        seen_add = self._seen_branches.add
        line_mask = ~(self.timing.icache_line_bytes - 1)
        btbp_level = PredictionLevel.BTBP
        cycle = int(self._cycle)
        started = self._started
        expected = self._expected_address
        current_line = self._current_line
        for record in records:
            address = record.address
            if address != expected:
                if started:
                    current_line = -1
                    self._line_fills.clear()
                else:
                    started = True
            kind = record.kind
            if kind is None:
                expected = address + record.length
                line = address & line_mask
                if line != current_line:
                    current_line = line
                    icache_fetch(address, cycle)
                continue
            taken = record.taken
            target = record.target
            expected = target if taken else address + record.length
            line = address & line_mask
            if line != current_line:
                current_line = line
                icache_fetch(address, cycle)
            entry = btb1_lookup(address)
            if entry is not None:
                btb1_touch(entry)
                train(entry, record)
            else:
                entry = (btbp_lookup(address)
                         if btbp_lookup is not None else None)
                if entry is not None:
                    use_prediction(
                        RowHit(entry, btbp_level, btbp_is_mru(entry))
                    )
                    train(entry, record)
                else:
                    if warm_preload is not None:
                        warm_preload(address)
                    if taken and target is not None:
                        surprise_install(record)
            if taken and target is not None:
                icache_prefetch(target)
            bht_update(address, kind, taken)
            history_record(address, taken)
            seen_add(address)
        self._started = started
        self._expected_address = expected
        self._current_line = current_line

    def begin_interval(self, address: int) -> None:
        """Resynchronize timing machinery at a measured-interval start.

        After a functional-warming gap the lookahead searcher's position is
        stale (it idled while the warmed path moved on); restart it at the
        interval's first instruction, as a pipeline restart would.  Pending
        prefetch fills from the previous detailed interval are dropped so
        hidden-miss attribution cannot cross a warming gap.
        """
        self.search.restart(address, math.ceil(self._cycle))
        self._line_fills.clear()

    def finish(self) -> SimulationResult:
        """Finalize clocks and snapshot structure statistics."""
        if self.preload is not None:
            self.preload.flush()
        self.counters.cycles = self._cycle
        if self.audit is not None:
            self.audit.after_finish(self)
        if self.telemetry is not None:
            self.telemetry.after_finish(self)
        return self._result()

    # -- checkpointing -----------------------------------------------------------

    def model_fingerprint(self) -> str:
        """Digest of the (config, timing) pair a snapshot is only valid for.

        Snapshots encode learned *state*, not geometry: loading BTB rows
        into a different geometry would silently corrupt indexing, so the
        fingerprint is checked on load.
        """
        payload = repr((self.config, self.timing))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def state_dict(self) -> dict:
        """Versioned, JSON-serializable snapshot of all architectural state.

        Covers every structure whose content affects future behavior: the
        three BTB levels, PHT/CTB/FIT/surprise-BHT/path history, icache
        tags, lookahead-search position, preload trackers and in-flight
        transfers, counters, and the simulator's own fetch/clock state.
        Attached observers (audit, telemetry) are wiring, not state, and
        are not included.
        """
        return {
            "version": self.STATE_VERSION,
            "model": self.model_fingerprint(),
            "config_name": self.config.name,
            "cycle": self._cycle,
            "started": self._started,
            "expected_address": self._expected_address,
            "seen_branches": sorted(self._seen_branches),
            "current_line": self._current_line,
            "warm_blocks": [
                [block, stage] for block, stage in self._warm_blocks.items()
            ],
            "line_fills": [
                [line, fill] for line, fill in sorted(self._line_fills.items())
            ],
            "counters": self.counters.state_dict(),
            "hierarchy": self.hierarchy.state_dict(),
            "btb2": self.btb2.state_dict() if self.btb2 is not None else None,
            "icache": self.icache.state_dict(),
            "search": self.search.state_dict(),
            "preload": (
                self.preload.state_dict() if self.preload is not None else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`.

        Raises ``ValueError`` on a schema-version or model-fingerprint
        mismatch rather than restoring into an incompatible simulator.
        """
        if state.get("version") != self.STATE_VERSION:
            raise ValueError(
                f"checkpoint schema version {state.get('version')!r} != "
                f"supported {self.STATE_VERSION}"
            )
        if state.get("model") != self.model_fingerprint():
            raise ValueError(
                "checkpoint was taken under a different config/timing "
                f"(snapshot model {state.get('model')!r}, "
                f"this simulator {self.model_fingerprint()!r})"
            )
        self._cycle = state["cycle"]
        self._started = state["started"]
        self._expected_address = state["expected_address"]
        self._seen_branches = set(state["seen_branches"])
        self._current_line = state["current_line"]
        self._warm_blocks = OrderedDict(
            (block, stage) for block, stage in state["warm_blocks"]
        )
        self._line_fills = {line: fill for line, fill in state["line_fills"]}
        self.counters.load_state_dict(state["counters"])
        self.hierarchy.load_state_dict(state["hierarchy"])
        if self.btb2 is not None:
            self.btb2.load_state_dict(state["btb2"])
        self.icache.load_state_dict(state["icache"])
        self.search.load_state_dict(state["search"])
        if self.preload is not None:
            self.preload.load_state_dict(state["preload"])

    # -- instruction fetch -------------------------------------------------------

    def _fetch(self, address: int) -> None:
        line = address & ~(self.timing.icache_line_bytes - 1)
        if line == self._current_line:
            return
        self._current_line = line
        hit = self.icache.fetch(address, int(self._cycle))
        fill = self._line_fills.pop(line, None)
        if hit:
            result = "hit"
            if fill is not None:
                wait = fill - self._cycle
                if wait > 0:
                    # Prefetch launched but not complete: partially hidden.
                    self._penalize("icache_partial_miss", wait)
                    self.counters.icache_partially_hidden_misses += 1
                    result = "partial"
                else:
                    self.counters.icache_hidden_misses += 1
                    result = "hidden"
            if self.telemetry is not None:
                self.telemetry.on_fetch(self._cycle, address, result)
            return
        # Demand miss, L2 hit (L2+ infinite per the paper's methodology).
        self.counters.icache_demand_misses += 1
        self._penalize("icache_miss", self.timing.l2_instruction_latency)
        if self.telemetry is not None:
            self.telemetry.on_fetch(self._cycle, address, "miss")
        if self.preload is not None:
            self.preload.report_icache_miss(address, int(self._cycle))

    def _prefetch_target(self, target: int, issue_cycle: float) -> None:
        """Model the instruction prefetch a predicted-taken branch launches."""
        line = target & ~(self.timing.icache_line_bytes - 1)
        already_present = self.icache.prefetch(target)
        if not already_present:
            fill_complete = issue_cycle + self.timing.l2_instruction_latency
            current = self._line_fills.get(line)
            if current is None or fill_complete < current:
                self._line_fills[line] = fill_complete
        if len(self._line_fills) > self.LINE_FILL_PRUNE_LIMIT:
            # Prune only fills whose line the icache has since evicted: a
            # demand fetch of such a line misses anyway, so the entry can
            # never attribute a (partially) hidden miss.  Completed fills
            # for *resident* lines stay — they are exactly the pending
            # ``icache_hidden_misses`` attributions, and dropping them
            # (as a completion-time prune would) silently skews counters.
            self._line_fills = {
                addr: cycle
                for addr, cycle in self._line_fills.items()
                if self.icache.contains(addr)
            }

    # -- branch handling -----------------------------------------------------------

    def _branch(self, record: TraceRecord) -> None:
        self.counters.branches += 1
        if record.taken:
            self.counters.taken_branches += 1
            extra = self.timing.taken_branch_decode_cycles - self.timing.base_decode_cycles
            if extra > 0:
                self._cycle += extra
        outcome = self.search.advance_to_branch(record.address)
        prediction = outcome.prediction
        if prediction is not None and prediction.ready_cycle <= self._cycle:
            self._dynamic_branch(record, prediction)
        else:
            self._surprise_branch(record, prediction)
        self._seen_branches.add(record.address)

    def _dynamic_branch(self, record: TraceRecord, prediction: Prediction) -> None:
        """A prediction was available in time: apply it and resolve."""
        if self.audit is not None:
            self.audit.on_prediction_used(self.hierarchy, prediction)
        victim = self.hierarchy.use_prediction(
            RowHit(prediction.entry, prediction.level, prediction.from_mru)
        )
        correct_direction = prediction.taken == record.taken
        correct_target = (not record.taken) or prediction.target == record.target
        if correct_direction and correct_target:
            kind = OutcomeKind.GOOD_DYNAMIC
            self.counters.record_outcome(kind)
            if self.telemetry is not None:
                self.telemetry.on_outcome(self._cycle, record, kind, 0.0)
            if record.taken and record.target is not None:
                self._prefetch_target(record.target, prediction.ready_cycle)
        else:
            if prediction.taken and record.taken:
                kind = OutcomeKind.MISPREDICT_WRONG_TARGET
            elif prediction.taken:
                kind = OutcomeKind.MISPREDICT_TAKEN_NOT_TAKEN
            else:
                kind = OutcomeKind.MISPREDICT_NOT_TAKEN_TAKEN
            self.counters.record_outcome(kind)
            self._penalize("mispredict", self.timing.mispredict_penalty)
            if self.telemetry is not None:
                self.telemetry.on_outcome(
                    self._cycle, record, kind, self.timing.mispredict_penalty
                )
                self.telemetry.on_resteer(
                    self._cycle, record.next_address, "mispredict"
                )
            self._restart_search(record.next_address)
        self.hierarchy.train(prediction.entry, record)
        self.hierarchy.record_resolved_branch(record)
        if self.probe is not None:
            self.probe.on_dynamic_resolve(record, prediction, kind, victim)

    def _surprise_branch(
        self, record: TraceRecord, late_prediction: Prediction | None
    ) -> None:
        """No usable dynamic prediction: the static-guess surprise path."""
        resident_level = self.hierarchy.probe_level(record.address)
        seen_before = record.address in self._seen_branches
        backward = record.target is not None and record.target <= record.address
        guess_taken = self.hierarchy.surprise_bht.guess(
            record.address, record.kind, backward
        )
        self.hierarchy.surprise_bht.record_outcome(guess_taken, record.taken)

        bad = guess_taken or record.taken
        if not bad:
            self.counters.record_outcome(OutcomeKind.GOOD_SURPRISE)
            if self.telemetry is not None:
                self.telemetry.on_surprise(
                    self._cycle, record.address, "good", guess_taken
                )
                self.telemetry.on_outcome(
                    self._cycle, record, OutcomeKind.GOOD_SURPRISE, 0.0
                )
            if self.probe is not None:
                self.probe.on_surprise(
                    record, guess_taken, late_prediction is not None,
                    OutcomeKind.GOOD_SURPRISE,
                )
            if late_prediction is not None and late_prediction.taken:
                # The late prediction steered the searcher to a taken target
                # the pipeline never followed: resync it sequentially (no
                # flush happened, so no refill head start either).
                self.search.restart(record.next_sequential, math.ceil(self._cycle))
            self._train_resident(record)
            self.hierarchy.record_resolved_branch(record)
            if self.probe is not None:
                self.probe.on_surprise_commit(record)
            return

        kind = self._classify_surprise(seen_before, resident_level,
                                       late_prediction)
        self.counters.record_outcome(kind)
        if self.probe is not None:
            # Before run_ahead: the free-running window can complete BTB2
            # transfers, and the observer must classify from pre-run state.
            self.probe.on_surprise(
                record, guess_taken, late_prediction is not None, kind
            )
        if self.telemetry is not None:
            self.telemetry.on_surprise(
                self._cycle, record.address, kind.value, guess_taken
            )
        if (
            self.preload is not None
            and self.config.decode_miss_reporting
            and guess_taken
        ):
            # Alternative miss definition (3.4): a statically-guessed-taken
            # branch reaching decode unpredicted is itself a miss report.
            self.preload.report_decode_miss(record.address, math.ceil(self._cycle))
        # The searcher free-runs until the restart this surprise causes —
        # that window is where perceived BTB1 misses get detected and BTB2
        # transfers started, ahead of the resolution (3.4/3.6).
        penalty = self._surprise_penalty(record, guess_taken)
        self.search.run_ahead(
            math.ceil(self._cycle + penalty - self.timing.frontend_refill_cycles)
        )
        self._penalize("surprise", penalty)
        if self.telemetry is not None:
            self.telemetry.on_outcome(self._cycle, record, kind, penalty)
            self.telemetry.on_resteer(
                self._cycle, record.next_address, "surprise"
            )
        if record.taken and record.target is not None:
            self._prefetch_target(record.target, self._cycle)
            self.hierarchy.surprise_install(record)
        self._train_resident(record)
        self.hierarchy.record_resolved_branch(record)
        if self.probe is not None:
            self.probe.on_surprise_commit(record)
        self._restart_search(record.next_address)

    def _classify_surprise(
        self,
        seen_before: bool,
        resident_level,
        late_prediction: Prediction | None,
    ) -> OutcomeKind:
        """Compulsory / latency / capacity taxonomy of section 5.1."""
        if not seen_before:
            return OutcomeKind.SURPRISE_COMPULSORY
        if late_prediction is not None or resident_level is not None:
            return OutcomeKind.SURPRISE_LATENCY
        return OutcomeKind.SURPRISE_CAPACITY

    def _surprise_penalty(self, record: TraceRecord, guess_taken: bool) -> float:
        """Penalty of a bad surprise branch.

        A correctly-guessed-taken relative branch redirects at decode (the
        target is computable from instruction text); everything else —
        wrong static guess, or a register-indirect target — waits for
        execution-time resolution.
        """
        if (
            guess_taken
            and record.taken
            and record.kind is not None
            and not record.kind.target_changes
        ):
            return self.timing.surprise_taken_decode_penalty
        return self.timing.surprise_resolution_penalty

    def _train_resident(self, record: TraceRecord) -> None:
        """Keep a first-level-resident entry fresh even when it missed decode."""
        entry = self.hierarchy.btb1.lookup(record.address)
        if entry is None and self.hierarchy.btbp is not None:
            entry = self.hierarchy.btbp.lookup(record.address)
        if entry is not None:
            self.hierarchy.train(entry, record)

    # -- helpers --------------------------------------------------------------------

    def _penalize(self, cause: str, cycles: float) -> None:
        self._cycle += cycles
        self.counters.attribute_penalty(cause, cycles)

    def _restart_search(self, address: int) -> None:
        """Restart the searcher after a pipeline redirect.

        The restart fires when the redirect is resolved, but decode's clock
        (``self._cycle``) already includes the frontend refill portion of
        the penalty — the window in which branch prediction runs ahead of
        decode.  The searcher therefore restarts ``frontend_refill_cycles``
        before decode resumes.
        """
        restart_cycle = self._cycle - self.timing.frontend_refill_cycles
        self.search.restart(address, max(0, math.ceil(restart_cycle)))

    def _result(self) -> SimulationResult:
        btbp = self.hierarchy.btbp
        return SimulationResult(
            config_name=self.config.name,
            counters=self.counters,
            search_stats={
                "searches": self.search.searches,
                "empty_searches": self.search.empty_searches,
                "predictions_made": self.search.predictions_made,
                "miss_reports": self.search.miss_reports_made,
            },
            btbp_stats=(
                {
                    source.value: count
                    for source, count in btbp.writes_by_source.items()
                }
                if btbp is not None
                else {}
            ),
            btb2_stats=(
                {
                    "transfer_hits": self.btb2.transfer_hits,
                    "victim_writes": self.btb2.victim_writes,
                    "surprise_writes": self.btb2.surprise_writes,
                    "occupancy": len(self.btb2),
                }
                if self.btb2 is not None
                else {}
            ),
            preload_stats=(
                {
                    "full_searches": self.preload.full_searches,
                    "partial_searches": self.preload.partial_searches,
                    "partial_upgrades": self.preload.partial_upgrades,
                    "partial_invalidations": self.preload.partial_invalidations,
                    "rows_read": self.preload.transfer.rows_read,
                    "entries_transferred": self.preload.transfer.entries_transferred,
                    "dropped_miss_reports": self.preload.trackers.dropped_miss_reports,
                }
                if self.preload is not None
                else {}
            ),
            icache_stats={
                "hits": self.icache.hits,
                "misses": self.icache.misses,
                "miss_rate": self.icache.miss_rate,
            },
        )


def simulate(
    records: Iterable[TraceRecord],
    config: PredictorConfig = ZEC12_CONFIG_2,
    timing: TimingParams = DEFAULT_TIMING,
    audit: "Auditor | None" = None,
    telemetry: "Telemetry | None" = None,
    engine_mode: str = "object",
) -> SimulationResult:
    """Convenience one-call simulation of ``records`` under ``config``."""
    return Simulator(
        config=config, timing=timing, audit=audit, telemetry=telemetry,
        engine_mode=engine_mode,
    ).run(records)
