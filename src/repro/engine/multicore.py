"""Multi-core system proxy for the hardware measurements of Figure 3.

The paper measures the BTB2's benefit on real zEC12 hardware: 5.3 % on
WASDB+CBW2 on one core (vs 8.5 % in the simulation model) and 3.4 % on Web
CICS/DB2 on four cores.  The gap between model and hardware exists because
"only the first level instruction and data caches were modeled as finite in
the simulation" — on hardware, the memory system below L1 is neither
infinite nor private.

We reproduce that structure rather than the silicon: each core runs an
independent :class:`~repro.engine.simulator.Simulator` over its own phase
of the workload trace, under timing parameters degraded by a shared-cache
interference factor that grows with core count.  The interference factor
inflates the L2 instruction latency and the per-instruction friction —
diluting the branch-prediction share of CPI exactly the way real hardware
dilutes it — so the proxy reproduces the paper's ordering
``hardware gain < model gain`` and the multi-core degradation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.config import PredictorConfig
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import SimulationResult, Simulator
from repro.trace.record import TraceRecord

#: Added relative memory-system load per additional active core.
INTERFERENCE_PER_CORE = 0.12
#: Hardware-vs-model dilution on a single core: finite L2/L3/L4 plus data
#: side effects the model treats as infinite/ideal.
HARDWARE_BASE_DILUTION = 0.30


def hardware_timing(base: TimingParams, cores: int) -> TimingParams:
    """Timing parameters for the hardware proxy with ``cores`` active."""
    if cores < 1:
        raise ValueError("cores must be at least 1")
    load = 1.0 + HARDWARE_BASE_DILUTION + INTERFERENCE_PER_CORE * (cores - 1)
    return dataclasses.replace(
        base,
        l2_instruction_latency=base.l2_instruction_latency * load,
        dispatch_stall_cycles=base.dispatch_stall_cycles * load,
    )


@dataclass
class MulticoreResult:
    """Aggregate of one multi-core proxy run."""

    cores: int
    per_core: list[SimulationResult]

    @property
    def total_instructions(self) -> int:
        """Instructions completed across all cores."""
        return sum(r.counters.instructions for r in self.per_core)

    @property
    def total_cycles(self) -> float:
        """Wall-clock cycles: the slowest core bounds the system."""
        return max(r.counters.cycles for r in self.per_core)

    @property
    def system_throughput(self) -> float:
        """Instructions per cycle across the system."""
        return self.total_instructions / self.total_cycles


def core_slices(
    records: list[TraceRecord], cores: int
) -> list[list[TraceRecord]]:
    """Phase-slice a trace into one contiguous section per core.

    Every core gets ``len(records) // cores`` records except the last,
    which absorbs the remainder — so the slices partition the trace.
    """
    if cores < 1:
        raise ValueError("cores must be at least 1")
    slice_length = len(records) // cores
    return [
        records[
            core * slice_length:
            (core + 1) * slice_length if core < cores - 1 else len(records)
        ]
        for core in range(cores)
    ]


def run_multicore(
    records: list[TraceRecord],
    config: PredictorConfig,
    cores: int,
    timing: TimingParams = DEFAULT_TIMING,
) -> MulticoreResult:
    """Run ``cores`` independent cores over phase-sliced sections of a trace.

    Each core gets a contiguous slice (a distinct phase of the workload, as
    on hardware where cores serve different requests), its own private
    branch prediction hierarchy and L1I, and shared-memory-degraded timing.
    """
    timing = hardware_timing(timing, cores)
    results = []
    for core_records in core_slices(records, cores):
        simulator = Simulator(config=config, timing=timing)
        results.append(simulator.run(core_records))
    return MulticoreResult(cores=cores, per_core=results)


def system_performance_gain(
    baseline: MulticoreResult, improved: MulticoreResult
) -> float:
    """Percent system-throughput improvement (the Figure 3 metric)."""
    return (
        (improved.system_throughput - baseline.system_throughput)
        / baseline.system_throughput
        * 100.0
    )
