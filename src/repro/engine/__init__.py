"""Timing engine: penalty-model core simulator and multi-core proxy."""

from repro.engine.multicore import (
    MulticoreResult,
    hardware_timing,
    run_multicore,
    system_performance_gain,
)
from repro.engine.params import DEFAULT_TIMING, TimingParams, ZEC12_CHIP_CONFIG
from repro.engine.simulator import SimulationResult, Simulator, simulate

__all__ = [
    "DEFAULT_TIMING",
    "MulticoreResult",
    "SimulationResult",
    "Simulator",
    "TimingParams",
    "ZEC12_CHIP_CONFIG",
    "hardware_timing",
    "run_multicore",
    "simulate",
    "system_performance_gain",
]
