"""Timing engine: penalty-model core simulator and multi-core proxy."""

from repro.engine.batched import (
    ENGINE_MODES,
    BatchedSimulator,
    resolve_engine_mode,
    validate_engine_mode,
    warm_run_batched,
)
from repro.engine.multicore import (
    MulticoreResult,
    hardware_timing,
    run_multicore,
    system_performance_gain,
)
from repro.engine.params import DEFAULT_TIMING, TimingParams, ZEC12_CHIP_CONFIG
from repro.engine.simulator import SimulationResult, Simulator, simulate

__all__ = [
    "DEFAULT_TIMING",
    "ENGINE_MODES",
    "BatchedSimulator",
    "MulticoreResult",
    "SimulationResult",
    "Simulator",
    "TimingParams",
    "ZEC12_CHIP_CONFIG",
    "hardware_timing",
    "resolve_engine_mode",
    "run_multicore",
    "simulate",
    "system_performance_gain",
    "validate_engine_mode",
    "warm_run_batched",
]
