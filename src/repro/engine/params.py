"""Core timing parameters and the zEC12 chip configuration (Table 5).

The paper reports *relative* CPI improvements, not absolute CPI, so the
penalty constants below are calibration knobs rather than claims about
zEC12 internals.  They are chosen to be plausible for a 5.5 GHz machine
with a deep pipeline (mispredict restarts much more expensive than
decode-time redirects, L2 instruction latency in the mid-teens) and they
fold wrong-path fetch effects into the flat restart costs (DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimingParams:
    """Cycle-accounting constants of the core model."""

    #: Instructions decoded/dispatched per cycle (zEC12 decodes 3).
    decode_width: int = 3
    #: Average backend friction per instruction (dependency stalls, data
    #: cache effects) — the paper's model simulates these in full; we fold
    #: them into a flat per-instruction cost.  Commercial zSeries workloads
    #: run well below peak decode throughput, which is also what lets the
    #: asynchronous lookahead predictor stay ahead of decode.
    dispatch_stall_cycles: float = 0.30
    #: Minimum decode occupancy of a taken branch (max 1 taken branch/cycle).
    taken_branch_decode_cycles: float = 1.0
    #: Full pipeline restart: branch resolved differently than guessed.
    mispredict_penalty: float = 18.0
    #: Decode-time fetch redirect for a correctly-guessed-taken surprise
    #: branch with a decode-computable (relative) target.
    surprise_taken_decode_penalty: float = 8.0
    #: Surprise branch needing execution-time resolution (wrong static
    #: guess, or register-indirect target).
    surprise_resolution_penalty: float = 18.0
    #: L1I miss, L2 hit latency ("second level caches ... considered
    #: infinite", paper section 4).
    l2_instruction_latency: float = 14.0
    #: Frontend refill portion of a restart penalty.  After a restart the
    #: branch predictor and instruction fetch begin together (3.2), but
    #: decode only resumes consuming once fetch/decode refill — this is the
    #: window in which the lookahead search races ahead of decode.
    frontend_refill_cycles: float = 8.0
    #: L1 instruction cache geometry (Table 5: 64 KB, 4-way).
    icache_capacity_bytes: int = 64 * 1024
    icache_ways: int = 4
    icache_line_bytes: int = 256
    #: Window (cycles) in which an I-cache miss correlates with a perceived
    #: BTB1 miss in the same 4 KB block (section 3.5 filter).
    icache_miss_window: int = 512

    def __post_init__(self) -> None:
        if self.decode_width < 1:
            raise ValueError("decode_width must be at least 1")
        for name in (
            "mispredict_penalty",
            "surprise_taken_decode_penalty",
            "surprise_resolution_penalty",
            "l2_instruction_latency",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def base_decode_cycles(self) -> float:
        """Effective cost of one ordinary instruction (decode + friction)."""
        return 1.0 / self.decode_width + self.dispatch_stall_cycles


DEFAULT_TIMING = TimingParams()


#: Table 5 — zEnterprise EC12 chip configuration, kept verbatim for the
#: Table 5 regeneration bench and for documentation.
ZEC12_CHIP_CONFIG: dict[str, str] = {
    "L1 Cache": "Instruction cache 64KB (4-way); Data cache 96KB (6-way)",
    "L2 Cache": "Instruction cache 1 Meg (8-way); Data cache 1 Meg (8-way)",
    "L3 Cache": "48 Meg on-chip",
    "L4 Cache": "384 Meg off-chip",
    "I-TLB1": "4K & 1 Meg pages: 64 x 2",
    "D-TLB1": "4K pages: 256 x 2; 1M pages: 32 x 2; 2G pages: 1 x 8",
    "TLB2": "128 x 4 CRSTE; 256 x 3 PTE / CRSTE",
    "Issue Queue": "32 x 2",
    "Completion Table": "30 x 3 micro-ops",
    "Physical Regs": "80 general registers, 64 floating point",
    "Issue bandwidth": "7 (2 LSU, 2 FXU, 2 Branch, 1 Float)",
}
