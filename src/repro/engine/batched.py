"""Batched struct-of-arrays engine core with a slow-path escape.

The object engine (:class:`repro.engine.simulator.Simulator`) walks the
trace one :class:`~repro.trace.record.TraceRecord` at a time through a deep
call tree — ``step`` → ``_fetch``/``_branch`` → ``advance_to_branch`` →
``_predict`` — allocating a ``SearchOutcome``/``Prediction``/``RowHit`` per
dynamic branch.  That is the right shape for auditing and lockstep
observation, but it pays the full method-dispatch and allocation cost for
every record, including the overwhelmingly common quiet ones (sequential
non-branch instructions that stay inside the current i-cache line).

This module is a *bit-identical* batched reformulation of the same model:

* The trace is consumed in fixed-size chunks.  Each chunk is decomposed
  into struct-of-arrays columns (address, fall-through/target next-address,
  is-branch), and a prescan marks *event* records — branches, control-flow
  discontinuities, i-cache line crossings, and (when steering is enabled)
  128-byte sector crossings.  The prescan uses numpy when importable and a
  pure-stdlib ``bytearray`` bitmap otherwise; both backends produce the
  same event index list.
* Records between events are, by construction, sequential non-branch
  instructions inside the current line and sector.  In the object engine
  their entire effect is ``instructions += 1`` and ``cycle +=
  base_decode_cycles``; the fast path applies exactly that (as iterated
  float adds — ``base_decode_cycles`` is not a dyadic rational, so a single
  fused multiply would change the accumulated float).
* Event records are handled by an allocation-free inline replica of the
  object engine's ``step``: the fetch model, the lookahead search walk, the
  row probe (with the object engine's exact tag-match and BTB1-beats-BTBP
  tie-break), the Table-1 prediction timing, the move protocol and
  training.  Every structure mutation happens in the same order, on the
  same shared objects, with the same float arithmetic.
* Anything rare **escapes to the slow path before mutating any state**:
  surprise branches (including late predictions), perceived-BTB1-miss
  reports, malformed records, and discontinuities landing on a branch.
  The escaped record is replayed by the ordinary ``Simulator.step``,
  which is trivially correct — the fast path guaranteed it had not
  touched anything yet.
* While the bulk-preload transfer engine is *busy* (queued or in-flight
  rows, or armed block-waiters) the object engine's once-per-record
  ``preload.advance`` does real work — issuing searches, completing
  transfers, delivering rows, expiring waits — so the fast path replays
  it per record at the object engine's exact clock (the post-decode-add
  integer cycle) until the machinery drains.

Because the batched core *shares* the object engine's structures rather
than mirroring them, there is no state to resynchronize on escape; the one
deliberate divergence is that per-record ``preload.advance`` calls are
elided while the transfer engine is idle (they reduce to a monotonic clock
max) and replayed as a single equivalent advance at every escape boundary,
chunk end, and run end.  ``TransferEngine.advance`` is prefix-decomposable
— issue stamps depend on eligibility, not on the clock argument — and
idempotent for an equal clock, so the boundary sync is exact.

Equivalence is enforced three ways: escape-boundary ``state_dict()``
parity tests (``tests/engine/test_batched.py``), the differential oracle
and golden 13-workload gate behind ``repro verify --engine batched``, and
the metamorphic golden-baseline check.  See docs/PERFORMANCE.md for the
fast/slow path contract and measured throughput.
"""

from __future__ import annotations

import math
from itertools import islice, repeat
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.events import OutcomeKind, PredictionLevel
from repro.core.hierarchy import RowHit
from repro.core.search import BROADCAST_LATENCY, SEQUENTIAL_CYCLES_PER_ROW
from repro.trace.record import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.simulator import SimulationResult, Simulator

try:  # pragma: no cover - environment-dependent
    import numpy as _np
except ImportError:  # pragma: no cover - numpy genuinely absent
    _np = None

#: The three engine modes ``Simulator`` accepts.  ``object`` is the
#: original per-record engine; ``batched`` is this module's chunked core;
#: ``auto`` picks ``batched`` exactly when no observer (audit, telemetry,
#: differential probe) is attached, since observers need per-record hooks.
ENGINE_MODES = ("object", "batched", "auto")

#: Records per struct-of-arrays chunk.  Large enough to amortize the
#: prescan, small enough that a chunk's columns stay cache-resident.
CHUNK_RECORDS = 8192

#: 128-byte sector shift (``repro.isa.address.SECTOR_BYTES``): the
#: granularity of the ordering tracker's ``observe`` dedup.
_SECTOR_SHIFT = 7


def validate_engine_mode(mode: str) -> str:
    """Return ``mode`` if it is a known engine mode, else raise ValueError."""
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine_mode {mode!r}; expected one of {ENGINE_MODES}"
        )
    return mode


def resolve_engine_mode(mode: str, *, observed: bool) -> str:
    """Resolve ``auto`` (and sanity-check the rest) to a concrete engine.

    ``observed`` is whether any per-record observer (audit, telemetry,
    differential probe) is attached; observers force the object engine
    under ``auto``.  An explicit ``batched`` request with observers is
    honored by :meth:`BatchedSimulator.run` falling back internally, so
    observed runs never silently lose events.
    """
    validate_engine_mode(mode)
    if mode == "auto":
        return "object" if observed else "batched"
    return mode


def _event_indices(addrs: list, nxts: list, isbr: list, shift: int) -> list:
    """Indices of event records within one chunk's columns.

    A record is an event when it is a branch, when control did not arrive
    from the previous record's next-address (a discontinuity), or when its
    address leaves the previous record's ``1 << shift``-byte granule (line
    or sector, whichever is finer for the active config).  Index 0 is
    always an event: its checks run against carried simulator state.
    """
    if _np is not None:
        a = _np.array(addrs, dtype=_np.int64)
        x = _np.array(nxts, dtype=_np.int64)
        flags = _np.array(isbr, dtype=_np.bool_)
        flags[1:] |= a[1:] != x[:-1]
        flags[1:] |= ((a[1:] ^ a[:-1]) >> shift) != 0
        flags[0] = True
        return _np.nonzero(flags)[0].tolist()
    n = len(addrs)
    flags = bytearray(n)
    flags[0] = 1
    prev_a = addrs[0]
    prev_x = nxts[0]
    for k in range(1, n):
        ak = addrs[k]
        if isbr[k] or ak != prev_x or (ak ^ prev_a) >> shift:
            flags[k] = 1
        prev_a = ak
        prev_x = nxts[k]
    return [k for k in range(n) if flags[k]]


def _columns(chunk: list) -> tuple[list, list, list]:
    """Struct-of-arrays columns of one chunk: address, next, is-branch.

    A taken branch without a target (malformed; ``TraceRecord.validate``
    rejects it) gets the poison next-address ``-1`` so the following
    record always reads as a discontinuity; the branch itself escapes to
    the slow path, which raises exactly as the object engine would.
    """
    addrs = [r.address for r in chunk]
    nxts = [
        (r.target if r.target is not None else -1) if r.taken
        else r.address + r.length
        for r in chunk
    ]
    isbr = [r.kind is not None for r in chunk]
    return addrs, nxts, isbr


class BatchedSimulator:
    """Chunked fast-path driver wrapped around one object ``Simulator``.

    The wrapper owns no architectural state: every table, counter and clock
    lives in the wrapped simulator, which is why an escape can simply call
    ``sim.step`` on the offending record.  Instances are cheap; one is
    created per ``run``/``warm_run`` dispatch.
    """

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        #: Total records consumed so far (so escape indices are absolute).
        self._consumed = 0
        #: Escape counts by reason, for tests and benchmark reporting.
        self.escape_counts: dict[str, int] = {}
        #: Optional test hook ``(absolute_record_index, reason)`` fired
        #: *after* local state write-back and the boundary preload sync,
        #: immediately before the escaped record is slow-stepped — the
        #: wrapped simulator's ``state_dict()`` is fully consistent here.
        self.escape_hook: Callable[[int, str], None] | None = None

    # -- public API ---------------------------------------------------------

    def run(self, records: Iterable[TraceRecord]) -> "SimulationResult":
        """Simulate ``records`` and return the collected results.

        With an observer attached (audit, telemetry, differential probe)
        the batched fast path cannot fire per-record hooks, so the run
        transparently degrades to the object engine's record loop —
        results are identical either way.
        """
        sim = self._sim
        if sim.audit is not None or sim.telemetry is not None \
                or sim.probe is not None:
            for record in records:
                sim.step(record)
            return sim.finish()
        self.feed(records)
        return sim.finish()

    def feed(self, records: Iterable[TraceRecord]) -> None:
        """Consume ``records`` through the fast path without finishing.

        Exposed separately from :meth:`run` so tests can interleave chunked
        consumption with ``state_dict()`` snapshots.
        """
        it = iter(records)
        while True:
            chunk = list(islice(it, CHUNK_RECORDS))
            if not chunk:
                break
            self._consume(chunk)

    # -- chunk driver -------------------------------------------------------

    def _escape(self, index: int, reason: str) -> None:
        """Record an escape (stats + optional hook) at absolute ``index``."""
        counts = self.escape_counts
        counts[reason] = counts.get(reason, 0) + 1
        hook = self.escape_hook
        if hook is not None:
            hook(self._consumed + index, reason)

    def _preload_busy(self) -> bool:
        """Whether transfer machinery is active (fast path must not run)."""
        preload = self._sim.preload
        if preload is None:
            return False
        transfer = preload.transfer
        return bool(
            transfer._queue or transfer._inflight or preload._block_waiters
        )

    def _consume(self, chunk: list) -> None:
        """Process one chunk: fast spans separated by slow-path records."""
        sim = self._sim
        step = sim.step
        n = len(chunk)
        pos = 0
        if not sim._started:
            # The first record of the run initializes the searcher.
            self._escape(0, "start")
            step(chunk[0])
            pos = 1
        if pos < n:
            addrs, nxts, isbr = _columns(chunk)
            line_shift = sim.timing.icache_line_bytes.bit_length() - 1
            shift = (
                min(line_shift, _SECTOR_SHIFT)
                if sim.config.steering_enabled and sim.preload is not None
                else line_shift
            )
            events = _event_indices(addrs, nxts, isbr, shift)
            ne = len(events)
            ei = 0
            while ei < ne and events[ei] < pos:
                ei += 1
            while pos < n:
                pos, ei, reason = self._fast(chunk, addrs, nxts, events,
                                             pos, ei)
                if reason is not None:
                    # The record at ``pos`` was *not* touched by the fast
                    # path; replay it in full on the slow path.
                    self._escape(pos, reason)
                    step(chunk[pos])
                    pos += 1
                    while ei < ne and events[ei] < pos:
                        ei += 1
                # reason None: chunk exhausted.
        self._consumed += n

    # -- the fast path ------------------------------------------------------

    def _fast(self, chunk, addrs, nxts, events, pos, ei):
        """Run records from ``pos`` until an escape or the chunk's end.

        Returns ``(new_pos, new_ei, reason)``.  ``reason`` is ``None`` when
        the chunk is exhausted (every record below ``new_pos`` is fully
        processed); otherwise it names the escape and the record at
        ``new_pos`` is untouched.

        The body is one flat frame with every hot attribute hoisted into
        locals — the batched analogue of ``Simulator.warm_run`` — and is
        kept in lockstep with ``Simulator.step``/``_fetch``/``_branch``/
        ``LookaheadSearch.advance_to_branch`` by the parity suite.  When
        editing either side, update the other.
        """
        sim = self._sim
        timing = sim.timing
        base = timing.base_decode_cycles
        extra_taken = timing.taken_branch_decode_cycles - base
        l2 = timing.l2_instruction_latency
        refill = timing.frontend_refill_cycles
        mispredict_penalty = timing.mispredict_penalty
        line_mask = ~(timing.icache_line_bytes - 1)
        counters = sim.counters
        outcomes = counters.outcomes
        penalties = counters.penalty_cycles
        hierarchy = sim.hierarchy
        btb1 = hierarchy.btb1
        btb1_rows = btb1._rows
        btb1_nrows = btb1.rows
        btb1_touch = btb1.touch
        btbp = hierarchy.btbp
        btbp_rows = btbp._rows if btbp is not None else None
        btbp_nrows = btbp.rows if btbp is not None else 1
        resolve_content = hierarchy.resolve_content
        use_prediction = hierarchy.use_prediction
        train = hierarchy.train
        fit_probe = hierarchy.fit.probe
        fit_train = hierarchy.fit.train
        bht_update = hierarchy.surprise_bht.update
        history_record = hierarchy.history.record
        seen_add = sim._seen_branches.add
        search = sim.search
        miss_limit = search.miss_limit
        icache = sim.icache
        ic_fetch = icache.fetch
        ic_contains = icache.contains
        ic_prefetch = icache.prefetch
        preload = sim.preload
        report_icache_miss = (
            preload.report_icache_miss if preload is not None else None
        )
        p_advance = preload.advance if preload is not None else None
        trans = preload.transfer if preload is not None else None
        steering = preload is not None and sim.config.steering_enabled
        tracker_observe = (
            preload.ordering_tracker.observe if steering else None
        )
        line_fills = sim._line_fills
        prune_limit = sim.LINE_FILL_PRUNE_LIMIT
        ceil = math.ceil
        GOOD = OutcomeKind.GOOD_DYNAMIC
        WRONG_TARGET = OutcomeKind.MISPREDICT_WRONG_TARGET
        TAKEN_NT = OutcomeKind.MISPREDICT_TAKEN_NOT_TAKEN
        NT_TAKEN = OutcomeKind.MISPREDICT_NOT_TAKEN_TAKEN
        BTBP_LEVEL = PredictionLevel.BTBP

        # Mutable engine state, hoisted; written back on every exit path.
        cycle = sim._cycle
        expected = sim._expected_address
        current_line = sim._current_line
        instructions = 0
        branches = 0
        taken_branches = 0
        switches = 0
        s_cycle = search.cycle
        s_addr = search.search_address
        s_empty = search._consecutive_empty
        s_first = search._first_empty_address
        s_last_taken = search._last_taken_address
        s_last_ntr = search._last_not_taken_row
        s_searches = search.searches
        s_empties = search.empty_searches
        s_preds = search.predictions_made

        # The preload clock value the object engine would hold: it advances
        # once per record at ``int(cycle)`` taken *after* the base decode
        # add but *before* fetch/branch penalties.  Replayed as one
        # boundary advance (exact: while idle the advance is a monotonic
        # clock max, and advance is prefix-decomposable).
        sync_cycle = -1

        # Sector-dedup anchor for ordering-tracker observes.  Records below
        # a span's first event share the previous (already observed)
        # record's sector, so observing only at events — and only on
        # sector change — is exact; -1 forces a (idempotent) re-observe
        # at the first event.
        last_observed = -1

        n = len(chunk)
        ne = len(events)
        reason = None
        busy = self._preload_busy()
        while pos < n:
            event = events[ei] if ei < ne else n
            gap = event - pos
            if gap:
                # Quiet records: sequential, non-branch, in-line.  Iterated
                # adds keep float accumulation identical to the object
                # engine (base is not a dyadic rational).
                instructions += gap
                if busy:
                    # Transfers queued/in flight: the object engine advances
                    # the preload clock once per record, and those advances
                    # do real work (issue, complete, deliver) — replay them
                    # exactly.  Quiet records have no other preload
                    # interaction.
                    for _ in repeat(None, gap):
                        cycle += base
                        p_advance(int(cycle))
                    busy = bool(trans._queue or trans._inflight
                                or preload._block_waiters)
                else:
                    for _ in repeat(None, gap):
                        cycle += base
                sync_cycle = int(cycle)
                pos = event
                expected = nxts[event - 1]
                if pos >= n:
                    break
            record = chunk[pos]
            address = addrs[pos]
            discontinuity = address != expected
            if busy:
                # The object engine's per-record preload advance runs
                # before the fetch and the row probe, and while busy it can
                # deliver rows that change what the probe sees.  Escaping
                # *before* that advance keeps the no-mutation-before-escape
                # contract strict; the slow path replays decode, advance
                # and probe in the object engine's exact order.
                reason = "preload_busy"
                break
            if record.kind is not None:
                # ---- branch event: read-only prechecks, then commit ----
                if discontinuity:
                    reason = "context_switch_branch"
                    break
                taken = record.taken
                record_target = record.target
                if taken and record_target is None:
                    reason = "malformed_record"
                    break
                # Predict the fetch outcome (read-only) so the prediction
                # timeliness test below sees the post-fetch decode clock.
                line = address & line_mask
                will_fetch = line != current_line
                cycle_at_branch = cycle + base
                if will_fetch:
                    if ic_contains(address):
                        fill = line_fills.get(line)
                        if fill is not None:
                            wait = fill - cycle_at_branch
                            if wait > 0:
                                cycle_at_branch = cycle_at_branch + wait
                    else:
                        cycle_at_branch = cycle_at_branch + l2
                if taken and extra_taken > 0:
                    cycle_at_branch += extra_taken
                branch_row = address >> 5
                search_row = s_addr >> 5
                if branch_row < search_row:
                    # Searcher already past this row: a surprise shape.
                    reason = "search_behind"
                    break
                gap_rows = branch_row - search_row
                if s_empty + gap_rows >= miss_limit:
                    # Covering the gap could emit a perceived-miss report.
                    reason = "miss_report"
                    break
                # Inline row probe, replicating hits_in_row: tag-matched to
                # the probe row (aliasing congruence-class entries share
                # the way list), lowest address at/after the probe point
                # wins, BTB1 beats BTBP on an address tie.
                probe = s_addr if gap_rows == 0 else branch_row << 5
                row_limit = (branch_row << 5) + 32
                best = None
                best_address = row_limit
                best_is_btb1 = False
                best_row = None
                if btbp_rows is not None:
                    row = btbp_rows[branch_row % btbp_nrows]
                    for entry in row:
                        ea = entry.address
                        if probe <= ea <= best_address and ea < row_limit:
                            best = entry
                            best_address = ea
                            best_row = row
                row = btb1_rows[branch_row % btb1_nrows]
                for entry in row:
                    ea = entry.address
                    if probe <= ea <= best_address and ea < row_limit:
                        best = entry
                        best_address = ea
                        best_is_btb1 = True
                        best_row = row
                if best is None or best_address != address:
                    # Empty row probe or a later branch: surprise at decode.
                    reason = "no_prediction"
                    break
                from_mru = best_row[0] is best
                ready = s_cycle + SEQUENTIAL_CYCLES_PER_ROW * gap_rows \
                    + BROADCAST_LATENCY
                if ready > cycle_at_branch:
                    # Prediction broadcast too late: latency surprise.
                    reason = "late_prediction"
                    break

                # ---- commit, in the object engine's exact order ----
                expected = nxts[pos]
                instructions += 1
                cycle += base
                sync_cycle = int(cycle)
                if will_fetch:
                    current_line = line
                    hit = ic_fetch(address, int(cycle))
                    fill = line_fills.pop(line, None)
                    if hit:
                        if fill is not None:
                            wait = fill - cycle
                            if wait > 0:
                                cycle += wait
                                penalties["icache_partial_miss"] = penalties.get(
                                    "icache_partial_miss", 0.0) + wait
                                counters.icache_partially_hidden_misses += 1
                            else:
                                counters.icache_hidden_misses += 1
                    else:
                        counters.icache_demand_misses += 1
                        cycle += l2
                        penalties["icache_miss"] = penalties.get(
                            "icache_miss", 0.0) + l2
                        if report_icache_miss is not None:
                            # May upgrade a tracker into a full search,
                            # enqueuing transfers: subsequent records then
                            # need per-record preload advances.
                            report_icache_miss(address, int(cycle))
                            busy = bool(trans._queue or trans._inflight
                                        or preload._block_waiters)
                branches += 1
                if taken:
                    taken_branches += 1
                    if extra_taken > 0:
                        cycle += extra_taken
                if gap_rows:
                    # _walk_gap, report-free by the precheck above.
                    if s_empty == 0:
                        s_first = s_addr
                    s_empty += gap_rows
                    s_searches += gap_rows
                    s_empties += gap_rows
                    s_cycle += SEQUENTIAL_CYCLES_PER_ROW * gap_rows
                    s_addr = branch_row << 5
                # _predict: one prediction for ``best``.
                s_searches += 1
                s_empty = 0
                resolution = resolve_content(best)
                predicted_taken = resolution.taken
                predicted_target = resolution.target
                if predicted_taken:
                    if s_last_taken == address:
                        cost = 1  # COST_SINGLE_BRANCH_LOOP
                    elif fit_probe(address):
                        cost = 2  # COST_FIT
                    elif from_mru and best_is_btb1:
                        cost = 3  # COST_TAKEN_MRU
                    else:
                        cost = 4  # COST_TAKEN_NON_MRU
                else:
                    if s_last_ntr == (address & ~31):
                        cost = 1  # COST_NOT_TAKEN_SECOND_IN_ROW
                    else:
                        cost = 4  # COST_NOT_TAKEN
                s_preds += 1
                s_cycle += cost
                if predicted_taken and predicted_target is not None:
                    s_last_taken = address
                    s_last_ntr = None
                    fit_train(address, (predicted_target >> 5) % btb1_nrows)
                    s_addr = predicted_target
                else:
                    s_last_taken = None
                    s_last_ntr = address & ~31
                    s_addr = address + 2
                # _dynamic_branch: move protocol, classify, train.
                if best_is_btb1:
                    btb1_touch(best)
                else:
                    use_prediction(RowHit(best, BTBP_LEVEL, from_mru))
                if predicted_taken == taken and (
                    not taken or predicted_target == record_target
                ):
                    outcomes[GOOD] += 1
                    if taken:
                        # _prefetch_target at the prediction's ready cycle.
                        if not ic_prefetch(record_target):
                            target_line = record_target & line_mask
                            fill_complete = ready + l2
                            current = line_fills.get(target_line)
                            if current is None or fill_complete < current:
                                line_fills[target_line] = fill_complete
                        if len(line_fills) > prune_limit:
                            line_fills = {
                                fill_addr: fill_cycle
                                for fill_addr, fill_cycle in line_fills.items()
                                if ic_contains(fill_addr)
                            }
                            sim._line_fills = line_fills
                else:
                    if predicted_taken and taken:
                        outcomes[WRONG_TARGET] += 1
                    elif predicted_taken:
                        outcomes[TAKEN_NT] += 1
                    else:
                        outcomes[NT_TAKEN] += 1
                    cycle += mispredict_penalty
                    penalties["mispredict"] = penalties.get(
                        "mispredict", 0.0) + mispredict_penalty
                    # _restart_search at the resolved next address.
                    restart_cycle = ceil(cycle - refill)
                    if restart_cycle < 0:
                        restart_cycle = 0
                    next_address = nxts[pos]
                    s_addr = next_address
                    s_cycle = restart_cycle
                    s_empty = 0
                    s_first = next_address
                    s_last_taken = None
                    s_last_ntr = None
                train(best, record)
                bht_update(address, record.kind, taken)
                history_record(address, taken)
                seen_add(address)
                if tracker_observe is not None:
                    if (address ^ last_observed) >> _SECTOR_SHIFT:
                        tracker_observe(address)
                    last_observed = address
                pos += 1
                ei += 1
            else:
                # ---- non-branch event: discontinuity / line crossing ----
                if discontinuity:
                    switches += 1
                    restart_cycle = ceil(cycle)
                    s_addr = address
                    s_cycle = restart_cycle
                    s_empty = 0
                    s_first = address
                    s_last_taken = None
                    s_last_ntr = None
                    current_line = -1
                    line_fills.clear()
                expected = nxts[pos]
                instructions += 1
                cycle += base
                sync_cycle = int(cycle)
                line = address & line_mask
                if line != current_line:
                    current_line = line
                    hit = ic_fetch(address, int(cycle))
                    fill = line_fills.pop(line, None)
                    if hit:
                        if fill is not None:
                            wait = fill - cycle
                            if wait > 0:
                                cycle += wait
                                penalties["icache_partial_miss"] = penalties.get(
                                    "icache_partial_miss", 0.0) + wait
                                counters.icache_partially_hidden_misses += 1
                            else:
                                counters.icache_hidden_misses += 1
                    else:
                        counters.icache_demand_misses += 1
                        cycle += l2
                        penalties["icache_miss"] = penalties.get(
                            "icache_miss", 0.0) + l2
                        if report_icache_miss is not None:
                            report_icache_miss(address, int(cycle))
                            busy = bool(trans._queue or trans._inflight
                                        or preload._block_waiters)
                if tracker_observe is not None:
                    if (address ^ last_observed) >> _SECTOR_SHIFT:
                        tracker_observe(address)
                    last_observed = address
                pos += 1
                ei += 1

        # Write hoisted state back; sync the idle preload clock (exact:
        # while idle, advance is a pure monotonic max, and advance itself
        # is prefix-decomposable if work was just enqueued).
        sim._cycle = cycle
        sim._expected_address = expected
        sim._current_line = current_line
        counters.instructions += instructions
        counters.branches += branches
        counters.taken_branches += taken_branches
        counters.context_switches += switches
        search.cycle = s_cycle
        search.search_address = s_addr
        search._consecutive_empty = s_empty
        search._first_empty_address = s_first
        search._last_taken_address = s_last_taken
        search._last_not_taken_row = s_last_ntr
        search.searches = s_searches
        search.empty_searches = s_empties
        search.predictions_made = s_preds
        if preload is not None and sync_cycle >= 0:
            preload.advance(sync_cycle)
        return pos, ei, reason


def warm_run_batched(sim: "Simulator", records: Iterable[TraceRecord]) -> None:
    """Batched functional warming: event-only replay of ``warm_step``.

    Warming does no cycle accounting, so quiet records — non-branch,
    sequential, inside the current i-cache line — have *no* effect at all
    and are skipped outright; only event records (branches, line
    crossings, discontinuities) execute the ``warm_run`` body.  Pinned
    bit-identical to ``Simulator.warm_run`` by the parity suite.
    """
    hierarchy = sim.hierarchy
    btb1_lookup = hierarchy.btb1.lookup
    btb1_touch = hierarchy.btb1.touch
    btbp = hierarchy.btbp
    btbp_lookup = btbp.lookup if btbp is not None else None
    btbp_is_mru = btbp.is_mru if btbp is not None else None
    warm_preload = sim._warm_preload if sim.btb2 is not None else None
    train = hierarchy.train
    use_prediction = hierarchy.use_prediction
    surprise_install = hierarchy.surprise_install
    bht_update = hierarchy.surprise_bht.update
    history_record = hierarchy.history.record
    icache_fetch = sim.icache.fetch
    icache_prefetch = sim.icache._cache.install
    seen_add = sim._seen_branches.add
    line_mask = ~(sim.timing.icache_line_bytes - 1)
    line_shift = sim.timing.icache_line_bytes.bit_length() - 1
    btbp_level = PredictionLevel.BTBP
    cycle = int(sim._cycle)
    started = sim._started
    carried_expected = sim._expected_address
    current_line = sim._current_line

    it = iter(records)
    while True:
        chunk = list(islice(it, CHUNK_RECORDS))
        if not chunk:
            break
        addrs, nxts, isbr = _columns(chunk)
        events = _event_indices(addrs, nxts, isbr, line_shift)
        for k in events:
            record = chunk[k]
            address = addrs[k]
            expected = nxts[k - 1] if k else carried_expected
            if address != expected:
                if started:
                    current_line = -1
                    sim._line_fills.clear()
                else:
                    started = True
            kind = record.kind
            if kind is None:
                line = address & line_mask
                if line != current_line:
                    current_line = line
                    icache_fetch(address, cycle)
                continue
            taken = record.taken
            target = record.target
            line = address & line_mask
            if line != current_line:
                current_line = line
                icache_fetch(address, cycle)
            entry = btb1_lookup(address)
            if entry is not None:
                btb1_touch(entry)
                train(entry, record)
            else:
                entry = (btbp_lookup(address)
                         if btbp_lookup is not None else None)
                if entry is not None:
                    use_prediction(
                        RowHit(entry, btbp_level, btbp_is_mru(entry))
                    )
                    train(entry, record)
                else:
                    if warm_preload is not None:
                        warm_preload(address)
                    if taken and target is not None:
                        surprise_install(record)
            if taken and target is not None:
                icache_prefetch(target)
            bht_update(address, kind, taken)
            history_record(address, taken)
            seen_add(address)
        carried_expected = nxts[-1] if nxts[-1] != -1 else None
        if not started:
            # Defensive: a non-empty chunk always has index 0 as an event,
            # which sets ``started`` above.
            started = True  # pragma: no cover
    sim._started = started
    sim._expected_address = carried_expected
    sim._current_line = current_line
