"""The predictor zoo: a formal interface over competing branch predictors.

``repro.predictors`` extracts the surface the experiments layer and CLI
drive on the paper's two-level bulk-preload stack into a formal
:class:`~repro.predictors.base.Predictor` contract, registers the paper
stack as one implementation among several (TAGE-like, LDBP-style,
Bullseye-style), and carries the shared verification machinery: the
conformance battery, the per-predictor differential references, and the
per-predictor golden gate.  See docs/ARCHITECTURE.md ("Predictor zoo").
"""

from repro.predictors.base import (
    Predictor,
    SetAssociativeTable,
    ZooPrediction,
    ZooPredictor,
)
from repro.predictors.registry import (
    DEFAULT_PREDICTOR,
    PredictorInfo,
    create_predictor,
    predictor_info,
    predictor_names,
    register_predictor,
)

__all__ = [
    "DEFAULT_PREDICTOR",
    "Predictor",
    "PredictorInfo",
    "SetAssociativeTable",
    "ZooPrediction",
    "ZooPredictor",
    "create_predictor",
    "predictor_info",
    "predictor_names",
    "register_predictor",
]
