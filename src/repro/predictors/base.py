"""Formal predictor interface and the shared "zoo" sequence engine.

The paper's two-level bulk-preload stack (``repro.engine.simulator``) was
historically the only predictor the harness could drive.  This module puts
that surface behind a formal contract — :class:`Predictor` — so competing
designs can be registered side by side and flow through the same trace
plumbing, result cache, experiment pool, and verification gates.

Two layers live here:

* :class:`Predictor` — the abstract contract: ``step``/``warm_step``
  sequence consumption, ``finish`` producing a
  :class:`~repro.engine.simulator.SimulationResult`, versioned
  ``state_dict``/``load_state_dict`` checkpointing, a stable
  ``model_fingerprint`` for the result cache, and a ``verify_run`` hook the
  conformance battery calls for audit-clean runs.
* :class:`ZooPredictor` — the shared sequence engine for the non-paper
  implementations (TAGE-like, LDBP-style, Bullseye-style).  It owns cycle
  accounting, the Figure 4 outcome taxonomy, surprise classification
  through :func:`~repro.isa.opcodes.static_guess`, context-switch
  detection, a bounded set-associative Branch Identification Table (BIT),
  and a counter-conservation self-check; subclasses only contribute the
  direction-prediction state machine.

Relabel invariance is a hard contract: every index, tag, and history fold
computed by a zoo predictor uses only address bits below
:data:`INDEX_BIT_LIMIT`, so a whole-trace relabel by a multiple of
``repro.oracle.metamorphic.RELABEL_GRANULE`` cannot change behavior.  The
per-predictor metamorphic check in ``repro.predictors.conformance``
asserts this for every registry entry.
"""

from __future__ import annotations

import abc
import hashlib
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.core.config import PredictorConfig, ZEC12_CONFIG_2
from repro.core.events import OutcomeKind
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import SimulationResult
from repro.isa.opcodes import BranchKind, static_guess
from repro.metrics.counters import SimCounters
from repro.trace.record import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.telemetry.hub import Telemetry

#: Lowest address bit that may NOT influence any zoo table index, tag, or
#: folded history.  Matches ``repro.oracle.metamorphic.RELABEL_GRANULE``
#: (``1 << 22``): relabeling a trace by a granule multiple must leave every
#: placement decision — and therefore every counter — unchanged.
INDEX_BIT_LIMIT = 22


@dataclass(frozen=True, slots=True)
class ZooPrediction:
    """A direction/target prediction emitted by a zoo predictor.

    ``target`` is the predicted redirect address when ``taken`` is true;
    ``None`` means the predictor asserts a direction but has no target to
    redirect fetch to (resolved as a wrong-target mispredict if the branch
    is in fact taken).
    """

    taken: bool
    target: int | None = None


class Predictor(abc.ABC):
    """Formal interface every registered branch predictor implements.

    The contract mirrors the surface ``repro.experiments`` and the CLI
    already drive on the paper engine:

    * ``step(record)`` consumes one trace record in detailed mode;
      ``run(records)`` is the convenience loop ending in ``finish()``.
    * ``warm_step(record)`` / ``warm_run(records)`` perform functional
      warming: structures learn, nothing is accounted.
    * ``finish()`` seals the run and returns a
      :class:`~repro.engine.simulator.SimulationResult`.
    * ``state_dict()`` / ``load_state_dict()`` are versioned, JSON-safe
      checkpoints with exact save→load→resume reproduction (the
      conformance battery asserts bit-identity).
    * ``model_fingerprint()`` identifies the architecture+configuration for
      the result cache; two predictors that could ever diverge must never
      share a fingerprint.
    * ``verify_run(records)`` runs audited and returns a list of problem
      strings — the audit-clean leg of the conformance battery.
    * ``probe`` (attribute, default ``None``) is a per-branch observer
      ``probe(record, prediction, kind, penalty)`` used by the lockstep
      differential oracle and telemetry consumers.
    """

    #: Registry name of the implementation (set by subclasses).
    name: str = ""

    #: Version of the ``state_dict`` schema; ``load_state_dict`` refuses
    #: snapshots written by another version.
    STATE_VERSION = 1

    config: PredictorConfig
    timing: TimingParams

    @abc.abstractmethod
    def step(self, record: TraceRecord) -> None:
        """Consume one trace record in detailed (accounted) mode."""

    @abc.abstractmethod
    def warm_step(self, record: TraceRecord) -> None:
        """Consume one record functionally: train structures, account nothing."""

    @abc.abstractmethod
    def finish(self) -> SimulationResult:
        """Seal the run and return its result."""

    @abc.abstractmethod
    def state_dict(self) -> dict:
        """Versioned, JSON-serializable snapshot of all mutable state."""

    @abc.abstractmethod
    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""

    def begin_interval(self, address: int) -> None:
        """Hook called at sampled-interval boundaries (default no-op)."""

    def run(self, records: Iterable[TraceRecord]) -> SimulationResult:
        """Drive a full detailed run over ``records`` and finish."""
        for record in records:
            self.step(record)
        return self.finish()

    def warm_run(self, records: Iterable[TraceRecord]) -> None:
        """Functionally warm over ``records`` (loop over :meth:`warm_step`)."""
        for record in records:
            self.warm_step(record)

    def model_fingerprint(self) -> str:
        """Stable identity of this architecture + configuration.

        Folds the implementation name and state-schema version in with the
        configuration and timing so no two registry entries — and no two
        schema generations of the same entry — can collide in the result
        cache or accept each other's checkpoints.
        """
        payload = repr((type(self).__name__, self.name, self.STATE_VERSION,
                        self.config, self.timing))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def audit_problems(self) -> list[str]:
        """Invariant violations observable in the current state (default none)."""
        return []

    def verify_run(self, records: Sequence[TraceRecord]) -> list[str]:
        """Run ``records`` audited; return problem strings instead of raising."""
        from repro.audit.auditor import AuditViolation

        try:
            self.run(records)
        except AuditViolation as violation:
            return [f"{violation.check}: {problem}"
                    for problem in violation.problems]
        return self.audit_problems()


class SetAssociativeTable:
    """Bounded set-associative, MRU-ordered store keyed by branch address.

    The zoo predictors use this as their Branch Identification Table and
    the differential oracle sabotages it in the mutation drill, so the
    replacement discipline is part of the verified contract: rows are
    MRU-first lists, :meth:`install` inserts at MRU and evicts the LRU way,
    :meth:`touch` promotes to MRU, :meth:`lookup` is pure.

    ``rows`` must be a power of two no larger than
    ``1 << (INDEX_BIT_LIMIT - shift)`` so the row index only consumes
    address bits below the relabel granule.
    """

    def __init__(self, rows: int, ways: int, shift: int = 1) -> None:
        if rows < 1 or rows & (rows - 1):
            raise ValueError("rows must be a positive power of two")
        if ways < 1:
            raise ValueError("ways must be positive")
        if rows > (1 << (INDEX_BIT_LIMIT - shift)):
            raise ValueError(
                "rows would index above the relabel granule "
                f"(limit {1 << (INDEX_BIT_LIMIT - shift)})")
        self.rows = rows
        self.ways = ways
        self.shift = shift
        self._rows: list[list] = [[] for _ in range(rows)]

    @property
    def capacity(self) -> int:
        """Total entry capacity (rows × ways)."""
        return self.rows * self.ways

    def __len__(self) -> int:
        """Number of resident entries."""
        return sum(len(row) for row in self._rows)

    def row_index(self, address: int) -> int:
        """Row selected by ``address`` (bits below the relabel granule only)."""
        return (address >> self.shift) % self.rows

    def lookup(self, address: int):
        """The resident entry for ``address``, or ``None``.  Pure (no MRU update)."""
        for entry in self._rows[self.row_index(address)]:
            if entry.address == address:
                return entry
        return None

    def touch(self, address: int) -> None:
        """Promote the entry for ``address`` to MRU (no-op when absent)."""
        row = self._rows[self.row_index(address)]
        for position, entry in enumerate(row):
            if entry.address == address:
                row.insert(0, row.pop(position))
                return

    def install(self, entry):
        """Insert ``entry`` at MRU; return the evicted LRU victim or ``None``."""
        row = self._rows[self.row_index(entry.address)]
        row.insert(0, entry)
        if len(row) > self.ways:
            return row.pop()
        return None

    def entries(self):
        """Iterate every resident entry (row-major, MRU first within a row)."""
        for row in self._rows:
            yield from row

    def state_dict(self, encode: Callable) -> list:
        """Row-major snapshot; each entry serialized through ``encode``."""
        return [[encode(entry) for entry in row] for row in self._rows]

    def load_state_dict(self, state: list, decode: Callable) -> None:
        """Restore a snapshot written by :meth:`state_dict` via ``decode``."""
        if len(state) != self.rows:
            raise ValueError(
                f"snapshot has {len(state)} rows, table has {self.rows}")
        self._rows = [[decode(item) for item in row] for row in state]


class ZooPredictor(Predictor):
    """Shared sequence engine for the non-paper predictors.

    Subclasses implement four hooks — :meth:`predict` (pure direction/
    target prediction given a resident BIT entry), :meth:`train` (state
    update after resolution), :meth:`_new_entry` (BIT entry factory), and
    the ``_encode_entry``/``_decode_entry``/``tables_state``/
    ``load_tables`` checkpoint codecs — and inherit everything else:
    context-switch detection, the Figure 4 outcome taxonomy, surprise
    classification via the static-guess heuristic, penalty attribution,
    the probe/telemetry hooks, and the conservation self-check.

    Zoo predictors model a decode-coupled predictor (no asynchronous
    lookahead pipeline), so the latency surprise class never occurs: a
    branch absent from the BIT is a compulsory or capacity surprise, one
    that is resident resolves dynamically.
    """

    #: Branches between incremental self-checks when constructed with
    #: ``audit=True`` (mirrors the paper engine's periodic auditor sweep).
    AUDIT_INTERVAL = 64

    def __init__(
        self,
        config: PredictorConfig = ZEC12_CONFIG_2,
        timing: TimingParams = DEFAULT_TIMING,
        *,
        audit: bool = False,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.config = config
        self.timing = timing
        self.audit = audit
        self.telemetry = telemetry
        #: Per-branch observer ``probe(record, prediction, kind, penalty)``.
        self.probe: Callable | None = None
        self.counters = SimCounters()
        #: Branch Identification Table: which branches the front-end knows.
        #: Sized like the BTB1 so capacity pressure is comparable across
        #: the zoo and the paper stack.
        self.bit = SetAssociativeTable(rows=config.btb1_rows,
                                       ways=config.btb1_ways)
        self._cycle = 0.0
        self._started = False
        self._expected_address = 0
        self._seen: set[int] = set()
        self._taken_extra = max(
            0.0, timing.taken_branch_decode_cycles - timing.base_decode_cycles)

    # -- subclass hooks ------------------------------------------------------

    @abc.abstractmethod
    def predict(self, record: TraceRecord, entry) -> ZooPrediction | None:
        """Pure prediction for a branch resident in the BIT (``entry``)."""

    @abc.abstractmethod
    def train(self, record: TraceRecord) -> None:
        """Update all predictor state with the resolved outcome of ``record``."""

    @abc.abstractmethod
    def _new_entry(self, address: int):
        """Fresh BIT entry for a newly identified branch at ``address``."""

    @abc.abstractmethod
    def _encode_entry(self, entry) -> list:
        """JSON-safe encoding of one BIT entry."""

    @abc.abstractmethod
    def _decode_entry(self, state: list):
        """Inverse of :meth:`_encode_entry`."""

    def tables_state(self) -> dict:
        """JSON-safe snapshot of direction state outside the BIT (default none)."""
        return {}

    def load_tables(self, state: dict) -> None:
        """Restore the :meth:`tables_state` snapshot (default no-op)."""

    def _on_evict(self, victim) -> None:
        """Hook invoked when the BIT evicts ``victim`` (default no-op)."""

    # -- shared training plumbing -------------------------------------------

    def _ensure_entry(self, record: TraceRecord):
        """Allocate-or-touch the BIT entry for ``record`` and learn its target."""
        entry = self.bit.lookup(record.address)
        if entry is None:
            entry = self._new_entry(record.address)
            victim = self.bit.install(entry)
            if victim is not None:
                self._on_evict(victim)
        else:
            self.bit.touch(record.address)
        if record.taken:
            entry.target = record.target
        return entry

    # -- sequence engine -----------------------------------------------------

    def step(self, record: TraceRecord) -> None:
        """Consume one record: account cycles, resolve any branch."""
        if self._started and record.address != self._expected_address:
            self.counters.context_switches += 1
        self._started = True
        self._expected_address = record.next_address
        self.counters.instructions += 1
        self._cycle += self.timing.base_decode_cycles
        if record.kind is not None:
            self._branch(record)

    def warm_step(self, record: TraceRecord) -> None:
        """Functional warming: structures learn, nothing is accounted."""
        self._started = True
        self._expected_address = record.next_address
        if record.kind is not None:
            self.train(record)
            self._seen.add(record.address)

    def _branch(self, record: TraceRecord) -> None:
        counters = self.counters
        counters.branches += 1
        if record.taken:
            counters.taken_branches += 1
            self._cycle += self._taken_extra
        entry = self.bit.lookup(record.address)
        prediction = None if entry is None else self.predict(record, entry)
        if prediction is None:
            kind, penalty = self._classify_surprise(record)
        else:
            kind, penalty = self._classify_dynamic(record, prediction)
        counters.record_outcome(kind)
        if penalty:
            self._cycle += penalty
            cause = "mispredict" if kind.is_mispredict else "surprise"
            counters.attribute_penalty(cause, penalty)
        self.train(record)
        self._seen.add(record.address)
        if self.probe is not None:
            self.probe(record, prediction, kind, penalty)
        if self.telemetry is not None:
            self.telemetry.on_outcome(self._cycle, record, kind, penalty)
        if self.audit and counters.branches % self.AUDIT_INTERVAL == 0:
            self._raise_on_problems()

    def _classify_surprise(self, record: TraceRecord):
        """Figure 4 classification for a branch the front-end did not know."""
        backward = record.target is not None and record.target <= record.address
        guess = static_guess(record.kind, backward)
        if not guess and not record.taken:
            return OutcomeKind.GOOD_SURPRISE, 0.0
        if record.address in self._seen:
            kind = OutcomeKind.SURPRISE_CAPACITY
        else:
            kind = OutcomeKind.SURPRISE_COMPULSORY
        if guess and record.taken and not record.kind.target_changes:
            return kind, self.timing.surprise_taken_decode_penalty
        return kind, self.timing.surprise_resolution_penalty

    def _classify_dynamic(self, record: TraceRecord, prediction: ZooPrediction):
        """Figure 4 classification for a dynamically predicted branch."""
        if prediction.taken and record.taken:
            if prediction.target is not None and prediction.target == record.target:
                return OutcomeKind.GOOD_DYNAMIC, 0.0
            return (OutcomeKind.MISPREDICT_WRONG_TARGET,
                    self.timing.mispredict_penalty)
        if prediction.taken:
            return (OutcomeKind.MISPREDICT_TAKEN_NOT_TAKEN,
                    self.timing.mispredict_penalty)
        if record.taken:
            return (OutcomeKind.MISPREDICT_NOT_TAKEN_TAKEN,
                    self.timing.mispredict_penalty)
        return OutcomeKind.GOOD_DYNAMIC, 0.0

    def finish(self) -> SimulationResult:
        """Seal the run: final self-check, publish the clock, snapshot counters."""
        if self.audit:
            self._raise_on_problems()
        self.counters.cycles = self._cycle
        return SimulationResult(config_name=self.config.name,
                                counters=self.counters)

    # -- auditing ------------------------------------------------------------

    def audit_problems(self) -> list[str]:
        """Counter-conservation violations observable in the current state.

        The zoo engine has no external auditor; instead its bookkeeping is
        redundant enough to self-check: outcome counts must partition the
        branch count, the clock must reconstruct from instruction/taken/
        penalty accounting, and structurally impossible classes (latency
        surprises, BIT overflow) must stay at zero.
        """
        problems: list[str] = []
        counters = self.counters
        classified = sum(counters.outcomes.values())
        if classified != counters.branches:
            problems.append(
                f"outcome conservation: {classified} classified outcomes "
                f"!= {counters.branches} branches")
        if counters.taken_branches > counters.branches:
            problems.append(
                f"taken conservation: {counters.taken_branches} taken "
                f"> {counters.branches} branches")
        if counters.branches > counters.instructions:
            problems.append(
                f"branch conservation: {counters.branches} branches "
                f"> {counters.instructions} instructions")
        if counters.outcomes[OutcomeKind.SURPRISE_LATENCY]:
            problems.append(
                "latency surprises are impossible for a decode-coupled "
                "zoo predictor")
        expected = (counters.instructions * self.timing.base_decode_cycles
                    + counters.taken_branches * self._taken_extra
                    + sum(counters.penalty_cycles.values()))
        if not math.isclose(self._cycle, expected,
                            rel_tol=1e-6, abs_tol=1e-6):
            problems.append(
                f"cycle conservation: clock {self._cycle!r} != "
                f"reconstructed {expected!r}")
        if len(self.bit) > self.bit.capacity:
            problems.append(
                f"BIT overflow: {len(self.bit)} entries in a "
                f"{self.bit.capacity}-entry table")
        return problems

    def _raise_on_problems(self) -> None:
        from repro.audit.auditor import AuditViolation

        problems = self.audit_problems()
        if problems:
            raise AuditViolation(f"{self.name} conservation", problems)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Versioned, JSON-safe snapshot of every mutable structure."""
        return {
            "version": self.STATE_VERSION,
            "model": self.model_fingerprint(),
            "predictor": self.name,
            "cycle": self._cycle,
            "started": self._started,
            "expected_address": self._expected_address,
            "seen": sorted(self._seen),
            "counters": self.counters.state_dict(),
            "bit": self.bit.state_dict(self._encode_entry),
            "tables": self.tables_state(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot; refuse foreign models."""
        version = state.get("version")
        if version != self.STATE_VERSION:
            raise ValueError(
                f"cannot load state version {version!r} "
                f"(expected {self.STATE_VERSION})")
        if state.get("predictor") != self.name:
            raise ValueError(
                f"snapshot is for predictor {state.get('predictor')!r}, "
                f"not {self.name!r}")
        if state.get("model") != self.model_fingerprint():
            raise ValueError(
                "snapshot was produced by a different model configuration")
        self._cycle = state["cycle"]
        self._started = state["started"]
        self._expected_address = state["expected_address"]
        self._seen = set(state["seen"])
        self.counters = SimCounters()
        self.counters.load_state_dict(state["counters"])
        self.bit.load_state_dict(state["bit"], self._decode_entry)
        self.load_tables(state["tables"])


def saturate(value: int, taken: bool, maximum: int) -> int:
    """Move a saturating counter one step toward ``taken`` within [0, maximum]."""
    if taken:
        return min(maximum, value + 1)
    return max(0, value - 1)
