"""Differential oracles for the predictor zoo: lockstep vs reference models.

Every non-paper registry entry gets its own *independently written*
reference model — same specified behavior, deliberately different data
structures — and a lockstep runner that compares them branch by branch:
predicted direction, predicted target, outcome class, and charged penalty,
with first-divergence reporting (record index, branch address, field,
both values).  The paper stack already has its event-level oracle in
:mod:`repro.oracle.differential`; this module extends the same discipline
to the zoo.

Structural diversity is the point: the production engine keeps MRU-ordered
row lists in its :class:`~repro.predictors.base.SetAssociativeTable`, the
references here keep a flat dict with explicit last-use timestamps; the
production TAGE folds history with integer shift arithmetic, the reference
folds a bit *list* chunk by chunk.  A bug in either representation shows
up as a divergence instead of being faithfully mirrored.

The shared minimizer applies unchanged: :func:`repro.audit.fuzz.shrink`
with "the lockstep still diverges" as the failure predicate
(:func:`shrink_divergence`).  :func:`mutation_drill` proves the oracle has
teeth by sabotaging the production table's LRU promotion and demanding a
divergence on every zoo predictor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.config import ZEC12_CONFIG_2, PredictorConfig
from repro.core.events import OutcomeKind
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.isa.opcodes import BranchKind, static_guess
from repro.predictors.base import SetAssociativeTable
from repro.predictors.bullseye import (
    H2P_MIN_EXECS,
    H2P_MISS_DENOMINATOR,
    H2P_MISS_NUMERATOR,
    LOCAL_HISTORY_BITS,
    SPECIALIST_CAPACITY,
)
from repro.predictors.ldbp import TRIP_CONFIDENCE
from repro.predictors.registry import create_predictor
from repro.predictors.tage import (
    BIMODAL_ENTRIES,
    GHIST_LENGTHS,
    MAX_HISTORY,
    TAG_BITS,
    TAGGED_ENTRIES,
)
from repro.trace.record import TraceRecord


@dataclass(frozen=True)
class ZooDivergence:
    """First production/reference disagreement of a lockstep run."""

    record_index: int
    address: int
    field: str
    production: object
    reference: object

    def report(self) -> str:
        """One-line description of the disagreement."""
        return (
            f"divergence at record {self.record_index}, branch "
            f"{self.address:#x}: {self.field} production="
            f"{self.production!r} reference={self.reference!r}"
        )


@dataclass
class ZooLockstepResult:
    """Outcome of one lockstep run (production vs reference)."""

    predictor: str
    records: int
    branches: int
    diverged: bool
    divergence: ZooDivergence | None = None

    def report(self) -> str:
        """One-line summary for the verify gate output."""
        if not self.diverged:
            return (
                f"no divergence: {self.predictor}, {self.records} records, "
                f"{self.branches} branches in lockstep"
            )
        assert self.divergence is not None
        return f"{self.predictor}: {self.divergence.report()}"


# -- reference engine --------------------------------------------------------


class _ReferenceBit:
    """Flat-dict BIT with explicit timestamps (vs production's MRU lists).

    Same contract as :class:`SetAssociativeTable` — bounded rows, LRU
    victim, most-recent touch wins — realized as one ``dict`` keyed by
    address plus a monotonically increasing use stamp per entry.
    """

    def __init__(self, rows: int, ways: int, shift: int = 1) -> None:
        self.rows = rows
        self.ways = ways
        self.shift = shift
        self._entries: dict[int, dict] = {}
        self._stamps: dict[int, int] = {}
        self._clock = 0

    def _row(self, address: int) -> int:
        return (address >> self.shift) % self.rows

    def lookup(self, address: int) -> dict | None:
        return self._entries.get(address)

    def touch(self, address: int) -> None:
        if address in self._stamps:
            self._clock += 1
            self._stamps[address] = self._clock

    def install(self, entry: dict) -> dict | None:
        address = entry["address"]
        row = self._row(address)
        victim = None
        resident = [other for other in self._entries
                    if self._row(other) == row]
        if len(resident) >= self.ways:
            oldest = min(resident, key=lambda other: self._stamps[other])
            victim = self._entries.pop(oldest)
            del self._stamps[oldest]
        self._clock += 1
        self._entries[address] = entry
        self._stamps[address] = self._clock
        return victim


class _ZooReference:
    """Independent restatement of the zoo sequence engine.

    Subclasses supply :meth:`_direction` (predicted taken for a resident
    conditional) and :meth:`_learn` (post-resolution update); the base
    carries the BIT, the Figure 4 classification, and the clock — each
    written from the specification, not from the production source.
    """

    def __init__(self, config: PredictorConfig, timing: TimingParams) -> None:
        self.timing = timing
        self.bit = _ReferenceBit(config.btb1_rows, config.btb1_ways)
        self.seen: set[int] = set()
        self.expected: int | None = None
        self.started = False
        self.cycle = 0.0
        self.counters = {
            "instructions": 0, "branches": 0, "taken": 0,
            "context_switches": 0,
            "outcomes": {kind.value: 0 for kind in OutcomeKind},
        }
        self.taken_extra = max(
            0.0, timing.taken_branch_decode_cycles - timing.base_decode_cycles)

    # subclass hooks ---------------------------------------------------------

    def _direction(self, record: TraceRecord, entry: dict) -> bool:
        raise NotImplementedError

    def _learn(self, record: TraceRecord, entry: dict) -> None:
        raise NotImplementedError

    def _fresh_entry(self, address: int) -> dict:
        return {"address": address, "target": None}

    def _evicted(self, victim: dict) -> None:
        pass

    # engine -----------------------------------------------------------------

    def step(self, record: TraceRecord):
        """Consume one record; return the branch tuple or ``None``."""
        if self.started and record.address != self.expected:
            self.counters["context_switches"] += 1
        self.started = True
        self.expected = record.next_address
        self.counters["instructions"] += 1
        self.cycle += self.timing.base_decode_cycles
        if record.kind is None:
            return None
        return self._branch(record)

    def _branch(self, record: TraceRecord):
        self.counters["branches"] += 1
        if record.taken:
            self.counters["taken"] += 1
            self.cycle += self.taken_extra
        entry = self.bit.lookup(record.address)
        if entry is None:
            predicted = (None, None)
            kind, penalty = self._surprise(record)
        else:
            if record.kind.always_taken:
                taken = True
            else:
                taken = self._direction(record, entry)
            target = entry["target"] if taken else None
            predicted = (taken, target)
            kind, penalty = self._dynamic(record, taken, target)
        self.counters["outcomes"][kind.value] += 1
        self.cycle += penalty
        self._train(record)
        self.seen.add(record.address)
        return (*predicted, kind.value, penalty)

    def _surprise(self, record: TraceRecord):
        backward = record.target is not None and record.target <= record.address
        guess = static_guess(record.kind, backward)
        if not guess and not record.taken:
            return OutcomeKind.GOOD_SURPRISE, 0.0
        kind = (OutcomeKind.SURPRISE_CAPACITY if record.address in self.seen
                else OutcomeKind.SURPRISE_COMPULSORY)
        if guess and record.taken and not record.kind.target_changes:
            return kind, self.timing.surprise_taken_decode_penalty
        return kind, self.timing.surprise_resolution_penalty

    def _dynamic(self, record: TraceRecord, taken: bool, target: int | None):
        if taken and record.taken:
            if target is not None and target == record.target:
                return OutcomeKind.GOOD_DYNAMIC, 0.0
            return (OutcomeKind.MISPREDICT_WRONG_TARGET,
                    self.timing.mispredict_penalty)
        if taken:
            return (OutcomeKind.MISPREDICT_TAKEN_NOT_TAKEN,
                    self.timing.mispredict_penalty)
        if record.taken:
            return (OutcomeKind.MISPREDICT_NOT_TAKEN_TAKEN,
                    self.timing.mispredict_penalty)
        return OutcomeKind.GOOD_DYNAMIC, 0.0

    def _train(self, record: TraceRecord) -> None:
        entry = self.bit.lookup(record.address)
        if entry is None:
            entry = self._fresh_entry(record.address)
            victim = self.bit.install(entry)
            if victim is not None:
                self._evicted(victim)
        else:
            self.bit.touch(record.address)
        if record.taken:
            entry["target"] = record.target
        self._learn(record, entry)

    def final_counters(self) -> dict:
        return self.counters


class _TageReference(_ZooReference):
    """TAGE restated with a bit-list history and chunked list folding."""

    def __init__(self, config: PredictorConfig, timing: TimingParams) -> None:
        super().__init__(config, timing)
        self.bimodal = {}
        self.tables: list[dict[int, dict]] = [{} for _ in GHIST_LENGTHS]
        #: Outcome history as a list of bits, newest first.
        self.history: list[int] = []

    def _fold(self, length: int, bits: int) -> int:
        window = self.history[:length]
        folded = 0
        for start in range(0, len(window), bits):
            chunk = 0
            for offset, bit in enumerate(window[start:start + bits]):
                chunk |= bit << offset
            folded ^= chunk
        return folded

    def _index(self, address: int, table: int) -> int:
        length = GHIST_LENGTHS[table]
        return ((address >> 1) ^ self._fold(length, 10)
                ^ (table * 0x2545)) % TAGGED_ENTRIES

    def _tag(self, address: int, table: int) -> int:
        length = GHIST_LENGTHS[table]
        return ((address >> 11) ^ self._fold(length, TAG_BITS)
                ^ (self._fold(length, TAG_BITS - 1) << 1)) % (1 << TAG_BITS)

    def _match(self, address: int):
        """(taken, provider, alt_taken) — longest tag match provides."""
        hits = []
        for table in range(len(GHIST_LENGTHS)):
            slot = self.tables[table].get(self._index(address, table))
            if slot is not None and slot["tag"] == self._tag(address, table):
                hits.append((table, slot))
        bimodal_taken = self.bimodal.get(
            (address >> 1) % BIMODAL_ENTRIES, 1) >= 2
        if not hits:
            return bimodal_taken, None, bimodal_taken
        hits.sort(key=lambda hit: hit[0])
        provider = hits[-1]
        alt_taken = (hits[-2][1]["ctr"] >= 4 if len(hits) > 1
                     else bimodal_taken)
        return provider[1]["ctr"] >= 4, provider, alt_taken

    def _direction(self, record: TraceRecord, entry: dict) -> bool:
        taken, _, _ = self._match(record.address)
        return taken

    def _learn(self, record: TraceRecord, entry: dict) -> None:
        if record.kind is BranchKind.COND:
            self._learn_direction(record.address, record.taken)
        self.history.insert(0, int(record.taken))
        del self.history[MAX_HISTORY:]

    def _learn_direction(self, address: int, taken: bool) -> None:
        predicted, provider, alt_taken = self._match(address)
        if provider is not None:
            slot = provider[1]
            slot["ctr"] = (min(7, slot["ctr"] + 1) if taken
                           else max(0, slot["ctr"] - 1))
            if predicted != alt_taken:
                slot["useful"] = (min(3, slot["useful"] + 1)
                                  if predicted == taken
                                  else max(0, slot["useful"] - 1))
        else:
            index = (address >> 1) % BIMODAL_ENTRIES
            counter = self.bimodal.get(index, 1)
            self.bimodal[index] = (min(3, counter + 1) if taken
                                   else max(0, counter - 1))
        if predicted != taken:
            start = provider[0] + 1 if provider is not None else 0
            self._allocate(address, taken, start)

    def _allocate(self, address: int, taken: bool, start: int) -> None:
        for table in range(start, len(GHIST_LENGTHS)):
            index = self._index(address, table)
            slot = self.tables[table].get(index)
            if slot is None or slot["useful"] == 0:
                self.tables[table][index] = {
                    "tag": self._tag(address, table),
                    "ctr": 4 if taken else 3, "useful": 0}
                return
        for table in range(start, len(GHIST_LENGTHS)):
            slot = self.tables[table][self._index(address, table)]
            slot["useful"] = max(0, slot["useful"] - 1)


class _LdbpReference(_ZooReference):
    """LDBP restated: trip detector fields live in the BIT entry dict."""

    def _fresh_entry(self, address: int) -> dict:
        return {"address": address, "target": None, "counter": 1,
                "run": 0, "trip": None, "confidence": 0}

    def _direction(self, record: TraceRecord, entry: dict) -> bool:
        if (entry["trip"] is not None
                and entry["confidence"] >= TRIP_CONFIDENCE):
            return entry["run"] < entry["trip"]
        return entry["counter"] >= 2

    def _learn(self, record: TraceRecord, entry: dict) -> None:
        if record.kind is not BranchKind.COND:
            return
        entry["counter"] = (min(3, entry["counter"] + 1) if record.taken
                            else max(0, entry["counter"] - 1))
        if record.taken:
            entry["run"] += 1
            return
        if entry["run"] == entry["trip"]:
            entry["confidence"] = min(3, entry["confidence"] + 1)
        else:
            entry["trip"] = entry["run"]
            entry["confidence"] = 0
        entry["run"] = 0


class _BullseyeReference(_ZooReference):
    """Bullseye restated: specialist file as a timestamp dict, not a list."""

    def __init__(self, config: PredictorConfig, timing: TimingParams) -> None:
        super().__init__(config, timing)
        #: Promoted addresses -> last-train stamp (vs production's MRU list).
        self.specialists: dict[int, int] = {}
        self._stamp = 0

    def _fresh_entry(self, address: int) -> dict:
        return {"address": address, "target": None, "counter": 1,
                "execs": 0, "misses": 0, "history": 0, "patterns": None}

    def _direction(self, record: TraceRecord, entry: dict) -> bool:
        taken = entry["counter"] >= 2
        if entry["patterns"] is not None:
            pattern = entry["patterns"].get(entry["history"])
            if pattern is not None:
                taken = pattern >= 2
        return taken

    def _learn(self, record: TraceRecord, entry: dict) -> None:
        if record.kind is not BranchKind.COND:
            return
        base_taken = entry["counter"] >= 2
        entry["execs"] += 1
        if base_taken != record.taken:
            entry["misses"] += 1
        entry["counter"] = (min(3, entry["counter"] + 1) if record.taken
                            else max(0, entry["counter"] - 1))
        if entry["patterns"] is not None:
            pattern = entry["patterns"].get(entry["history"], 1)
            entry["patterns"][entry["history"]] = (
                min(3, pattern + 1) if record.taken else max(0, pattern - 1))
            if entry["address"] in self.specialists:
                self._stamp += 1
                self.specialists[entry["address"]] = self._stamp
        elif (entry["execs"] >= H2P_MIN_EXECS
              and entry["misses"] * H2P_MISS_DENOMINATOR
              >= entry["execs"] * H2P_MISS_NUMERATOR):
            self._promote(entry)
        entry["history"] = (((entry["history"] << 1) | int(record.taken))
                            & ((1 << LOCAL_HISTORY_BITS) - 1))

    def _promote(self, entry: dict) -> None:
        self.specialists.pop(entry["address"], None)
        while len(self.specialists) >= SPECIALIST_CAPACITY:
            oldest = min(self.specialists, key=self.specialists.get)
            del self.specialists[oldest]
            victim = self.bit.lookup(oldest)
            if victim is not None:
                victim["patterns"] = None
        entry["patterns"] = {}
        self._stamp += 1
        self.specialists[entry["address"]] = self._stamp

    def _evicted(self, victim: dict) -> None:
        if victim.get("patterns") is not None:
            self.specialists.pop(victim["address"], None)


#: Reference-model factory per zoo registry name.  The paper stack keeps
#: its event-level oracle in :mod:`repro.oracle.differential`.
ZOO_REFERENCES = {
    "tage": _TageReference,
    "ldbp": _LdbpReference,
    "bullseye": _BullseyeReference,
}


def lockstep_names() -> tuple[str, ...]:
    """Registry names covered by a zoo reference model, sorted."""
    return tuple(sorted(ZOO_REFERENCES))


def lockstep(
    name: str,
    records: list[TraceRecord],
    config: PredictorConfig = ZEC12_CONFIG_2,
    timing: TimingParams = DEFAULT_TIMING,
) -> ZooLockstepResult:
    """Run production and reference in lockstep; stop at first divergence.

    Compares, per branch: predicted direction, predicted target, outcome
    class, and charged penalty; after a clean run, the final counters
    (including the reconstructed clock, to float tolerance).
    """
    if name not in ZOO_REFERENCES:
        raise ValueError(
            f"no zoo reference model for {name!r}; available: "
            f"{', '.join(lockstep_names())} (the paper stack uses "
            f"repro.oracle.differential)")
    production = create_predictor(name, config=config, timing=timing)
    reference = ZOO_REFERENCES[name](config, timing)

    observed: list[tuple] = []

    def probe(record, prediction, kind, penalty) -> None:
        observed.append((
            None if prediction is None else prediction.taken,
            None if prediction is None else prediction.target,
            kind.value, penalty))

    production.probe = probe
    branches = 0
    for index, record in enumerate(records):
        observed.clear()
        production.step(record)
        expected = reference.step(record)
        if expected is None:
            continue
        branches += 1
        actual = observed[0] if observed else None
        if actual == expected:
            continue
        for field, got, want in zip(
                ("taken", "target", "outcome", "penalty"),
                actual or ("<no probe>",) * 4, expected):
            if got != want:
                return ZooLockstepResult(
                    predictor=name, records=index + 1, branches=branches,
                    diverged=True,
                    divergence=ZooDivergence(index, record.address,
                                             field, got, want))
        return ZooLockstepResult(
            predictor=name, records=index + 1, branches=branches,
            diverged=True,
            divergence=ZooDivergence(index, record.address, "branch",
                                     actual, expected))

    result = production.finish()
    final = reference.final_counters()
    counters = result.counters
    pairs = (
        ("instructions", counters.instructions, final["instructions"]),
        ("branches", counters.branches, final["branches"]),
        ("taken_branches", counters.taken_branches, final["taken"]),
        ("context_switches", counters.context_switches,
         final["context_switches"]),
        ("outcomes", {kind.value: count
                      for kind, count in counters.outcomes.items()},
         final["outcomes"]),
    )
    for field, got, want in pairs:
        if got != want:
            return ZooLockstepResult(
                predictor=name, records=len(records), branches=branches,
                diverged=True,
                divergence=ZooDivergence(len(records), 0,
                                         f"final {field}", got, want))
    if not math.isclose(counters.cycles, reference.cycle,
                        rel_tol=1e-9, abs_tol=1e-9):
        return ZooLockstepResult(
            predictor=name, records=len(records), branches=branches,
            diverged=True,
            divergence=ZooDivergence(len(records), 0, "final cycles",
                                     counters.cycles, reference.cycle))
    return ZooLockstepResult(predictor=name, records=len(records),
                             branches=branches, diverged=False)


def shrink_divergence(
    name: str,
    records: list[TraceRecord],
    config: PredictorConfig = ZEC12_CONFIG_2,
    timing: TimingParams = DEFAULT_TIMING,
) -> list[TraceRecord]:
    """ddmin a diverging trace to a minimal still-diverging one."""
    from repro.audit.fuzz import shrink

    return shrink(
        records, config, timing,
        fails=lambda candidate: lockstep(
            name, candidate, config, timing).diverged)


#: Small geometry for the mutation drill: heavy BIT eviction pressure so
#: replacement-order bugs become observable within a short trace.
_DRILL_CONFIG = replace(
    ZEC12_CONFIG_2, btb1_rows=8, btb1_ways=2, name="zoo mutation drill")


def mutation_drill(
    names: tuple[str, ...] | None = None,
    seed: int = 7,
    length: int = 500,
) -> list[str]:
    """Prove the lockstep oracle catches an injected replacement bug.

    Sabotages :meth:`SetAssociativeTable.touch` into a no-op (LRU stops
    promoting on hits) and demands every zoo lockstep diverge on a loopy
    random trace under eviction pressure.  Returns problems — one line per
    predictor whose oracle *failed to notice* — plus a sanity leg checking
    the unsabotaged runs stay clean.
    """
    from repro.audit.fuzz import build_trace

    names = lockstep_names() if names is None else names
    trace = build_trace(seed, length)
    problems = []
    for name in names:
        clean = lockstep(name, trace, config=_DRILL_CONFIG)
        if clean.diverged:
            problems.append(
                f"{name}: lockstep diverged before sabotage — "
                f"{clean.divergence.report()}")
    pristine = SetAssociativeTable.touch
    SetAssociativeTable.touch = lambda self, address: None
    try:
        for name in names:
            sabotaged = lockstep(name, trace, config=_DRILL_CONFIG)
            if not sabotaged.diverged:
                problems.append(
                    f"{name}: oracle missed the sabotaged LRU promotion "
                    f"({sabotaged.branches} branches in lockstep)")
    finally:
        SetAssociativeTable.touch = pristine
    return problems
