"""LDBP-style load/loop-driven predictor.

The load-driven branch predictor (LDBP) resolves hard-to-predict branches
whose outcome is a pure function of an earlier load by computing the branch
early on the load's data path.  The dominant beneficiaries are
loop-exit-style branches whose trip counts a history predictor cannot
capture.  Our traces carry no load values, so this implementation keeps the
LDBP *spirit* with the information a trace does expose: a per-branch
trip-count detector that learns "taken N times, then falls through" loop
shapes and predicts the exit exactly, with a bimodal counter as the
fallback for everything else.

Everything lives in the BIT entry — the per-branch state is exactly the
bounded per-branch tracking hardware an LDBP table would hold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import BranchKind
from repro.predictors.base import ZooPredictor, ZooPrediction, saturate
from repro.trace.record import TraceRecord

#: Confidence (consecutive identical trip counts) needed before the
#: trip-count predictor overrides the bimodal fallback.
TRIP_CONFIDENCE = 2


@dataclass(slots=True)
class LoopEntry:
    """Per-branch LDBP state: target, bimodal fallback, trip tracking."""

    address: int
    target: int | None = None
    #: 2-bit bimodal fallback counter.
    counter: int = 1
    #: Taken streak since the last not-taken resolution.
    run: int = 0
    #: Learned trip count (taken executions per loop visit), or ``None``.
    trip: int | None = None
    #: Saturating confidence in ``trip`` (0..3).
    confidence: int = 0


class LdbpPredictor(ZooPredictor):
    """Trip-count loop-exit specialist with a bimodal fallback."""

    name = "ldbp"

    def predict(self, record: TraceRecord, entry: LoopEntry):
        """Exact loop-exit prediction when confident, else bimodal."""
        if record.kind.always_taken:
            return ZooPrediction(True, entry.target)
        if entry.trip is not None and entry.confidence >= TRIP_CONFIDENCE:
            taken = entry.run < entry.trip
        else:
            taken = entry.counter >= 2
        return ZooPrediction(taken, entry.target if taken else None)

    def train(self, record: TraceRecord) -> None:
        """Update the bimodal fallback and the trip-count detector."""
        entry = self._ensure_entry(record)
        if record.kind is not BranchKind.COND:
            return
        entry.counter = saturate(entry.counter, record.taken, 3)
        if record.taken:
            entry.run += 1
            return
        trip = entry.run
        if trip == entry.trip:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.trip = trip
            entry.confidence = 0
        entry.run = 0

    def _new_entry(self, address: int) -> LoopEntry:
        return LoopEntry(address)

    def _encode_entry(self, entry: LoopEntry) -> list:
        return [entry.address, entry.target, entry.counter, entry.run,
                entry.trip, entry.confidence]

    def _decode_entry(self, state: list) -> LoopEntry:
        return LoopEntry(*state)
