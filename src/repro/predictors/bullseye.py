"""Bullseye-style hard-to-predict-branch specialist.

Bullseye (arXiv:2506.06773) spends a small, heavily specialized structure
on the few *hard-to-predict* (H2P) branches that dominate mispredictions,
leaving the easy majority to a cheap base predictor.  This implementation
keeps that shape: every branch starts on a 2-bit bimodal base; a branch
whose observed base-mispredict rate crosses a threshold after enough
executions is *promoted* into a bounded specialist file, where it gets a
private 12-bit local-history pattern table.  The file is LRU-managed —
promoting into a full file demotes the least recently trained specialist
back to its base predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import BranchKind
from repro.predictors.base import ZooPredictor, ZooPrediction, saturate
from repro.trace.record import TraceRecord

#: Executions a branch needs before it can be judged hard-to-predict.
H2P_MIN_EXECS = 64
#: Promotion threshold on the base-mispredict rate, as a ratio (3/20 = 15%).
H2P_MISS_NUMERATOR = 3
H2P_MISS_DENOMINATOR = 20
#: Specialist-file capacity (branches with a private pattern table).
SPECIALIST_CAPACITY = 64
#: Local-history length of a specialist's pattern table.
LOCAL_HISTORY_BITS = 12


@dataclass(slots=True)
class HardBranchEntry:
    """Per-branch Bullseye state: base counter, H2P stats, specialist table."""

    address: int
    target: int | None = None
    #: 2-bit bimodal base counter.
    counter: int = 1
    #: Resolved executions observed (conditionals only).
    execs: int = 0
    #: Executions the base predictor got wrong.
    misses: int = 0
    #: Local outcome history, newest bit at position 0.
    history: int = 0
    #: Pattern table (local history -> 2-bit counter) once promoted.
    patterns: dict[int, int] | None = None


class BullseyePredictor(ZooPredictor):
    """Bimodal base plus a bounded LRU file of promoted H2P specialists."""

    name = "bullseye"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Specialist file, MRU first (addresses of promoted entries).
        self._specialists: list[int] = []

    def predict(self, record: TraceRecord, entry: HardBranchEntry):
        """Pattern-table direction for specialists, bimodal otherwise."""
        if record.kind.always_taken:
            return ZooPrediction(True, entry.target)
        taken = entry.counter >= 2
        if entry.patterns is not None:
            pattern = entry.patterns.get(entry.history)
            if pattern is not None:
                taken = pattern >= 2
        return ZooPrediction(taken, entry.target if taken else None)

    def train(self, record: TraceRecord) -> None:
        """Update base stats, specialist patterns, and promotion state."""
        entry = self._ensure_entry(record)
        if record.kind is not BranchKind.COND:
            return
        base_taken = entry.counter >= 2
        entry.execs += 1
        if base_taken != record.taken:
            entry.misses += 1
        entry.counter = saturate(entry.counter, record.taken, 3)
        if entry.patterns is not None:
            pattern = entry.patterns.get(entry.history, 1)
            entry.patterns[entry.history] = saturate(pattern, record.taken, 3)
            self._touch_specialist(entry.address)
        elif (entry.execs >= H2P_MIN_EXECS
              and entry.misses * H2P_MISS_DENOMINATOR
              >= entry.execs * H2P_MISS_NUMERATOR):
            self._promote(entry)
        entry.history = (((entry.history << 1) | int(record.taken))
                         & ((1 << LOCAL_HISTORY_BITS) - 1))

    # -- specialist file management ------------------------------------------

    def _promote(self, entry: HardBranchEntry) -> None:
        if entry.address in self._specialists:
            self._specialists.remove(entry.address)
        while len(self._specialists) >= SPECIALIST_CAPACITY:
            victim_address = self._specialists.pop()
            victim = self.bit.lookup(victim_address)
            if victim is not None:
                victim.patterns = None
        entry.patterns = {}
        self._specialists.insert(0, entry.address)

    def _touch_specialist(self, address: int) -> None:
        if self._specialists and self._specialists[0] == address:
            return
        try:
            self._specialists.remove(address)
        except ValueError:
            return
        self._specialists.insert(0, address)

    def _on_evict(self, victim: HardBranchEntry) -> None:
        """A promoted branch evicted from the BIT frees its specialist slot."""
        if victim.patterns is not None:
            try:
                self._specialists.remove(victim.address)
            except ValueError:
                pass

    # -- zoo checkpoint hooks ------------------------------------------------

    def _new_entry(self, address: int) -> HardBranchEntry:
        return HardBranchEntry(address)

    def _encode_entry(self, entry: HardBranchEntry) -> list:
        patterns = (None if entry.patterns is None
                    else sorted(entry.patterns.items()))
        return [entry.address, entry.target, entry.counter, entry.execs,
                entry.misses, entry.history, patterns]

    def _decode_entry(self, state: list) -> HardBranchEntry:
        patterns = (None if state[6] is None
                    else {history: counter for history, counter in state[6]})
        return HardBranchEntry(state[0], state[1], state[2], state[3],
                               state[4], state[5], patterns)

    def tables_state(self) -> dict:
        """Specialist-file LRU order (addresses, MRU first)."""
        return {"specialists": list(self._specialists)}

    def load_tables(self, state: dict) -> None:
        """Restore the specialist-file LRU order."""
        self._specialists = list(state["specialists"])
