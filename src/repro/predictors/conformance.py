"""Predictor conformance battery: the contract every zoo member must meet.

A registry entry is only useful if the harness can trust it the way it
trusts the paper stack: deterministic replay, checkpointable state,
warm/detail parity, address-relabel invariance, and a clean self-audit.
This module states those obligations as executable checks — each one a
function returning a list of problem strings (empty = conforming) — and
:func:`conformance_problems` runs the whole battery for one registry name.

The battery is *behavioral*, driven purely through the public
:class:`~repro.predictors.base.Predictor` interface, so it applies
unchanged to the paper adapter and to any future registry entry.  It is
consumed twice: ``tests/predictors/test_conformance.py`` parametrizes it
over every registry entry, and ``repro verify --predictor`` runs it as
part of the zoo gate.

Checks (name -> meaning):

* ``determinism`` — two independent runs over the same trace end in the
  same state and counters, bit for bit.
* ``checkpoint`` — splitting a run at its midpoint through a JSON
  round-tripped ``state_dict()`` snapshot resumes to the exact end state
  of the unbroken run.
* ``warm-parity`` — ``warm_run`` is exactly a ``warm_step`` loop (no
  hidden batching effects in functional warming).
* ``relabel`` — shifting every address by a multiple of the fold-granule
  (:data:`repro.oracle.metamorphic.RELABEL_GRANULE`) leaves every counter
  unchanged: no predictor may key behavior on absolute addresses.
* ``audit-clean`` — a fully audited run of the conformance trace raises
  no invariant violation.
"""

from __future__ import annotations

import json
from typing import Callable, Sequence

from repro.core.config import ZEC12_CONFIG_2, PredictorConfig
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.predictors.registry import create_predictor
from repro.trace.record import TraceRecord

#: Relabel shift used by the battery — 64 granules, comfortably past every
#: index/tag/fold bit any conforming predictor may consume.
RELABEL_SHIFTS = 64


def conformance_trace(seed: int = 2024, length: int = 600) -> list[TraceRecord]:
    """The battery's default workload: random walk + adversarial window.

    A seeded random program walk (branch-kind variety, context-switch
    splices) concatenated with an adversarial BTB-probe window (eviction
    and aliasing pressure); the junction itself reads as one more context
    switch.  Deterministic in ``seed``.
    """
    from repro.audit.fuzz import build_trace
    from repro.workloads.adversarial import corpus_trace

    return build_trace(seed, length) + corpus_trace(seed + 1, length // 2)


def _state(predictor) -> tuple[dict, dict]:
    """Comparable snapshot: full model state plus counters."""
    return predictor.state_dict(), predictor.counters.state_dict()


def check_determinism(
    name: str, trace: Sequence[TraceRecord],
    config: PredictorConfig, timing: TimingParams,
) -> list[str]:
    """Two independent runs must agree exactly (state and counters)."""
    first = create_predictor(name, config=config, timing=timing)
    second = create_predictor(name, config=config, timing=timing)
    first.run(list(trace))
    second.run(list(trace))
    problems = []
    if first.state_dict() != second.state_dict():
        problems.append("repeated runs ended in different model state")
    if first.counters.state_dict() != second.counters.state_dict():
        problems.append("repeated runs ended with different counters")
    return problems


def check_checkpoint(
    name: str, trace: Sequence[TraceRecord],
    config: PredictorConfig, timing: TimingParams,
) -> list[str]:
    """Split-at-midpoint resume through JSON must be bit-identical."""
    records = list(trace)
    half = len(records) // 2
    full = create_predictor(name, config=config, timing=timing)
    full.run(records)

    head = create_predictor(name, config=config, timing=timing)
    for record in records[:half]:
        head.step(record)
    # The JSON round trip is part of the contract: a snapshot that only
    # works in-process (live object references, non-serializable keys)
    # cannot back the checkpoint store.
    snapshot = json.loads(json.dumps(head.state_dict()))
    tail = create_predictor(name, config=config, timing=timing)
    tail.load_state_dict(snapshot)
    for record in records[half:]:
        tail.step(record)
    tail.finish()

    problems = []
    if tail.state_dict() != full.state_dict():
        problems.append(
            "resumed run ended in different model state than unbroken run")
    if tail.counters.state_dict() != full.counters.state_dict():
        problems.append(
            "resumed run ended with different counters than unbroken run")
    return problems


def check_warm_parity(
    name: str, trace: Sequence[TraceRecord],
    config: PredictorConfig, timing: TimingParams,
) -> list[str]:
    """``warm_run`` must equal a plain ``warm_step`` loop, state for state."""
    batched = create_predictor(name, config=config, timing=timing)
    stepped = create_predictor(name, config=config, timing=timing)
    batched.warm_run(list(trace))
    for record in trace:
        stepped.warm_step(record)
    if batched.state_dict() != stepped.state_dict():
        return ["warm_run state differs from an equivalent warm_step loop"]
    return []


def check_relabel(
    name: str, trace: Sequence[TraceRecord],
    config: PredictorConfig, timing: TimingParams,
) -> list[str]:
    """Granule-aligned address relabeling must not move any counter."""
    from repro.oracle.metamorphic import RELABEL_GRANULE, relabel

    base = create_predictor(name, config=config, timing=timing)
    shifted = create_predictor(name, config=config, timing=timing)
    base.run(list(trace))
    shifted.run(relabel(list(trace), RELABEL_SHIFTS * RELABEL_GRANULE))
    if base.counters.state_dict() != shifted.counters.state_dict():
        return [
            f"counters changed under a {RELABEL_SHIFTS}-granule address "
            f"relabel — behavior depends on absolute addresses"
        ]
    return []


def check_audit_clean(
    name: str, trace: Sequence[TraceRecord],
    config: PredictorConfig, timing: TimingParams,
) -> list[str]:
    """A fully audited run must pass every internal invariant check."""
    audited = create_predictor(name, config=config, timing=timing, audit=True)
    return audited.verify_run(list(trace))


#: The battery, in report order.  Keys are the check names used in problem
#: prefixes, test ids, and the verify gate output.
CONFORMANCE_CHECKS: dict[str, Callable[..., list[str]]] = {
    "determinism": check_determinism,
    "checkpoint": check_checkpoint,
    "warm-parity": check_warm_parity,
    "relabel": check_relabel,
    "audit-clean": check_audit_clean,
}


def conformance_problems(
    name: str,
    trace: Sequence[TraceRecord] | None = None,
    config: PredictorConfig = ZEC12_CONFIG_2,
    timing: TimingParams = DEFAULT_TIMING,
) -> list[str]:
    """Run the full battery for one registry entry; return all problems.

    Every problem line is prefixed with its check name, so a gate failure
    reads ``checkpoint: resumed run ended in different model state ...``.
    """
    records = conformance_trace() if trace is None else list(trace)
    problems: list[str] = []
    for check_name, check in CONFORMANCE_CHECKS.items():
        problems.extend(
            f"{check_name}: {problem}"
            for problem in check(name, records, config, timing)
        )
    return problems
