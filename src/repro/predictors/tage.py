"""TAGE-like conditional baseline predictor.

A scaled-down TAGE (TAgged GEometric history length) conditional direction
predictor behind the shared zoo engine: a bimodal base table plus four
partially-tagged tables indexed by geometrically increasing global-history
folds.  The longest-history tag match provides the prediction; allocation
happens on mispredicts into a longer table whose entry is not useful.

This is the conventional state-of-the-art baseline the paper's bulk-preload
stack is ablated against: strong conditional direction accuracy, but only a
flat bounded target store (the BIT) — no second-level bulk preload — so
adversarial capacity/aliasing workloads hit it hard.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import BranchKind
from repro.predictors.base import ZooPredictor, ZooPrediction, saturate
from repro.trace.record import TraceRecord

#: Geometric global-history lengths of the four tagged tables.
GHIST_LENGTHS = (5, 15, 44, 130)
#: Entries per tagged table (10 index bits).
TAGGED_ENTRIES = 1024
#: Partial-tag width of the tagged tables.
TAG_BITS = 8
#: Entries in the bimodal base table.
BIMODAL_ENTRIES = 4096
#: History bits retained (longest table's requirement).
MAX_HISTORY = GHIST_LENGTHS[-1]


@dataclass(slots=True)
class TageEntry:
    """BIT entry of the TAGE predictor: identity plus last-seen target."""

    address: int
    target: int | None = None


class TagePredictor(ZooPredictor):
    """TAGE-like conditional baseline behind the zoo engine.

    Tagged entries are ``[tag, counter, useful]`` triples stored sparsely
    (``dict`` keyed by index) — behaviorally identical to a dense table
    whose untouched entries never match a tag.  Counters are 3-bit
    (taken at >= 4); usefulness is 2-bit and gates allocation.
    """

    name = "tage"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._bimodal = [1] * BIMODAL_ENTRIES
        self._tables: list[dict[int, list[int]]] = [
            {} for _ in GHIST_LENGTHS]
        #: Global outcome history, newest bit at position 0.
        self._history = 0

    # -- index/tag arithmetic (address bits below the relabel granule) -------

    @staticmethod
    def _bimodal_index(address: int) -> int:
        return (address >> 1) % BIMODAL_ENTRIES

    def _fold(self, length: int, bits: int) -> int:
        """XOR-fold the newest ``length`` history bits down to ``bits`` bits."""
        value = self._history & ((1 << length) - 1)
        mask = (1 << bits) - 1
        folded = 0
        while value:
            folded ^= value & mask
            value >>= bits
        return folded

    def _table_index(self, address: int, table: int) -> int:
        length = GHIST_LENGTHS[table]
        return ((address >> 1) ^ self._fold(length, 10)
                ^ (table * 0x2545)) % TAGGED_ENTRIES

    def _table_tag(self, address: int, table: int) -> int:
        length = GHIST_LENGTHS[table]
        return ((address >> 11) ^ self._fold(length, TAG_BITS)
                ^ (self._fold(length, TAG_BITS - 1) << 1)) % (1 << TAG_BITS)

    # -- direction machinery -------------------------------------------------

    def _direction(self, address: int):
        """Predicted direction plus (provider, alternate prediction).

        Returns ``(taken, provider, alt_taken)`` where ``provider`` is
        ``(table, entry)`` for the longest-history tag match or ``None``
        when the bimodal table provides.
        """
        provider = None
        alternate = None
        for table in reversed(range(len(GHIST_LENGTHS))):
            entry = self._tables[table].get(self._table_index(address, table))
            if entry is not None and entry[0] == self._table_tag(address, table):
                if provider is None:
                    provider = (table, entry)
                else:
                    alternate = entry
                    break
        bimodal_taken = self._bimodal[self._bimodal_index(address)] >= 2
        if provider is None:
            return bimodal_taken, None, bimodal_taken
        alt_taken = alternate[1] >= 4 if alternate is not None else bimodal_taken
        return provider[1][1] >= 4, provider, alt_taken

    def _train_direction(self, address: int, taken: bool) -> None:
        predicted, provider, alt_taken = self._direction(address)
        if provider is not None:
            table, entry = provider
            entry[1] = saturate(entry[1], taken, 7)
            if predicted != alt_taken:
                if predicted == taken:
                    entry[2] = min(3, entry[2] + 1)
                else:
                    entry[2] = max(0, entry[2] - 1)
        else:
            index = self._bimodal_index(address)
            self._bimodal[index] = saturate(self._bimodal[index], taken, 3)
        if predicted != taken:
            start = provider[0] + 1 if provider is not None else 0
            self._allocate(address, taken, start)

    def _allocate(self, address: int, taken: bool, start: int) -> None:
        """Allocate a fresh entry in the first non-useful longer table."""
        for table in range(start, len(GHIST_LENGTHS)):
            index = self._table_index(address, table)
            entry = self._tables[table].get(index)
            if entry is None or entry[2] == 0:
                self._tables[table][index] = [
                    self._table_tag(address, table), 4 if taken else 3, 0]
                return
        for table in range(start, len(GHIST_LENGTHS)):
            entry = self._tables[table][self._table_index(address, table)]
            entry[2] = max(0, entry[2] - 1)

    # -- zoo hooks -----------------------------------------------------------

    def predict(self, record: TraceRecord, entry: TageEntry):
        """TAGE direction for conditionals; always-taken kinds redirect."""
        if record.kind.always_taken:
            return ZooPrediction(True, entry.target)
        taken, _, _ = self._direction(record.address)
        return ZooPrediction(taken, entry.target if taken else None)

    def train(self, record: TraceRecord) -> None:
        """Update BIT, direction tables, and the global history."""
        self._ensure_entry(record)
        if record.kind is BranchKind.COND:
            self._train_direction(record.address, record.taken)
        self._history = (((self._history << 1) | int(record.taken))
                         & ((1 << MAX_HISTORY) - 1))

    def _new_entry(self, address: int) -> TageEntry:
        return TageEntry(address)

    def _encode_entry(self, entry: TageEntry) -> list:
        return [entry.address, entry.target]

    def _decode_entry(self, state: list) -> TageEntry:
        return TageEntry(state[0], state[1])

    def tables_state(self) -> dict:
        """Bimodal, tagged tables, and global history as JSON-safe lists."""
        return {
            "bimodal": list(self._bimodal),
            "history": self._history,
            "tagged": [sorted([index, *entry] for index, entry in table.items())
                       for table in self._tables],
        }

    def load_tables(self, state: dict) -> None:
        """Restore the :meth:`tables_state` snapshot."""
        self._bimodal = list(state["bimodal"])
        self._history = state["history"]
        self._tables = [
            {row[0]: list(row[1:]) for row in table}
            for table in state["tagged"]]
