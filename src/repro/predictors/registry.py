"""Registry of named predictor implementations.

Every implementation registers here under a stable name; the CLI
(``simulate --predictor``, ``verify --predictor``, ``repro ablation``), the
experiments layer (``RunSpec.predictor``), and the conformance suite all
resolve predictors exclusively through this registry — which is what makes
"adding a predictor without tests" impossible: the conformance battery is
parametrized over :func:`predictor_names`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.config import PredictorConfig, ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.predictors.base import Predictor
from repro.predictors.bullseye import BullseyePredictor
from repro.predictors.ldbp import LdbpPredictor
from repro.predictors.paper import PaperPredictor
from repro.predictors.tage import TagePredictor

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.telemetry.hub import Telemetry

#: The predictor every historical surface implies when none is named.
DEFAULT_PREDICTOR = "paper"


@dataclass(frozen=True)
class PredictorInfo:
    """One registry entry: name, one-line summary, and factory."""

    name: str
    summary: str
    factory: Callable[..., Predictor]


_REGISTRY: dict[str, PredictorInfo] = {}


def register_predictor(name: str, summary: str,
                       factory: Callable[..., Predictor]) -> None:
    """Register ``factory`` under ``name`` (refusing duplicates)."""
    if name in _REGISTRY:
        raise ValueError(f"predictor {name!r} is already registered")
    _REGISTRY[name] = PredictorInfo(name, summary, factory)


def predictor_names() -> tuple[str, ...]:
    """All registered predictor names, sorted."""
    return tuple(sorted(_REGISTRY))


def predictor_info(name: str) -> PredictorInfo:
    """The registry entry for ``name`` (``ValueError`` listing valid names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; registered: "
            f"{', '.join(predictor_names())}") from None


def create_predictor(
    name: str = DEFAULT_PREDICTOR,
    config: PredictorConfig = ZEC12_CONFIG_2,
    timing: TimingParams = DEFAULT_TIMING,
    *,
    audit: bool = False,
    telemetry: "Telemetry | None" = None,
    engine_mode: str = "object",
) -> Predictor:
    """Instantiate the registered predictor ``name``.

    ``engine_mode`` only influences the paper stack (the zoo has a single
    engine); ``audit`` enables the runtime auditor on the paper stack and
    the counter-conservation self-check on the zoo.
    """
    return predictor_info(name).factory(
        config, timing, audit=audit, telemetry=telemetry,
        engine_mode=engine_mode)


def _zoo_factory(cls: type) -> Callable[..., Predictor]:
    def factory(config, timing, *, audit=False, telemetry=None,
                engine_mode="object"):
        del engine_mode  # the zoo engine has no alternate modes
        return cls(config, timing, audit=audit, telemetry=telemetry)

    return factory


register_predictor(
    "paper",
    "two-level bulk-preload stack (BTB1/BTBP/BTB2, the reproduced design)",
    PaperPredictor,
)
register_predictor(
    "tage",
    "TAGE-like conditional baseline (bimodal + 4 tagged geometric tables)",
    _zoo_factory(TagePredictor),
)
register_predictor(
    "ldbp",
    "LDBP-style load/loop-driven predictor (trip-count loop exits)",
    _zoo_factory(LdbpPredictor),
)
register_predictor(
    "bullseye",
    "Bullseye-style hard-to-predict-branch specialist (bounded H2P file)",
    _zoo_factory(BullseyePredictor),
)
