"""The paper's two-level bulk-preload stack as a registered predictor.

:class:`PaperPredictor` is a thin adapter putting
:class:`repro.engine.simulator.Simulator` behind the formal
:class:`~repro.predictors.base.Predictor` contract.  It delegates every
call, so a run through the adapter is *bit-identical* to driving the
simulator directly (the registry tests assert this), and its
``model_fingerprint`` is the simulator's own — keeping every historical
result-cache slot and golden baseline valid for ``predictor="paper"``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.config import PredictorConfig, ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import SimulationResult, Simulator
from repro.predictors.base import Predictor
from repro.trace.record import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.telemetry.hub import Telemetry


class PaperPredictor(Predictor):
    """The first-level/second-level bulk-preload stack behind the contract."""

    name = "paper"
    STATE_VERSION = Simulator.STATE_VERSION

    def __init__(
        self,
        config: PredictorConfig = ZEC12_CONFIG_2,
        timing: TimingParams = DEFAULT_TIMING,
        *,
        audit: bool = False,
        telemetry: "Telemetry | None" = None,
        engine_mode: str = "object",
    ) -> None:
        from repro.audit.auditor import Auditor

        self.config = config
        self.timing = timing
        self.simulator = Simulator(
            config,
            timing,
            audit=Auditor() if audit else None,
            telemetry=telemetry,
            engine_mode=engine_mode,
        )

    @property
    def counters(self):
        """The live simulator counters."""
        return self.simulator.counters

    @property
    def probe(self):
        """The simulator's structured probe (see ``repro.oracle.differential``)."""
        return self.simulator.probe

    @probe.setter
    def probe(self, value) -> None:
        """Install an observer on the underlying simulator."""
        self.simulator.probe = value

    def step(self, record: TraceRecord) -> None:
        """Delegate one detailed step to the simulator."""
        self.simulator.step(record)

    def warm_step(self, record: TraceRecord) -> None:
        """Delegate one functional-warming step to the simulator."""
        self.simulator.warm_step(record)

    def warm_run(self, records: Iterable[TraceRecord]) -> None:
        """Delegate functional warming (the simulator batches block preloads)."""
        self.simulator.warm_run(records)

    def run(self, records: Iterable[TraceRecord]) -> SimulationResult:
        """Delegate a full run (keeps the batched engine path eligible)."""
        return self.simulator.run(records)

    def begin_interval(self, address: int) -> None:
        """Delegate a sampled-interval boundary to the simulator."""
        self.simulator.begin_interval(address)

    def finish(self) -> SimulationResult:
        """Seal the simulator run."""
        return self.simulator.finish()

    def state_dict(self) -> dict:
        """The simulator's own versioned snapshot."""
        return self.simulator.state_dict()

    def load_state_dict(self, state: dict) -> None:
        """Restore a simulator snapshot."""
        self.simulator.load_state_dict(state)

    def model_fingerprint(self) -> str:
        """The simulator's historical fingerprint (cache compatibility)."""
        return self.simulator.model_fingerprint()
