"""Statistical extrapolation and error accounting for sampled runs.

The measured intervals are treated as a sample of the trace's behavior:
point estimates are ratio-of-sums (total measured cycles over total measured
instructions — the standard ratio estimator, robust to unequal interval
weights), and per-metric 95% confidence intervals come from the spread of
the per-interval values (z·s/√n, the SMARTS error model).

The error-accounting report (:func:`error_report`) is deliberately strict:
when a metric's estimated confidence interval exceeds the configured bound,
it *refuses* to render — raising :class:`ConfidenceBoundExceeded` — instead
of printing a number that looks five digits precise and isn't.  Callers
either sample more intervals or pass a looser bound explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.runner import SampledResult

#: Two-sided 95% normal quantile.
Z_95 = 1.96

#: Default refusal bound: CPI CI half-width over the CPI estimate, and the
#: bad-outcome-fraction CI half-width (absolute), must both stay within 2%.
DEFAULT_CI_BOUND = 0.02


class ConfidenceBoundExceeded(RuntimeError):
    """A sampled estimate's confidence interval exceeds the allowed bound."""


def confidence_interval(samples: Sequence[float],
                        z: float = Z_95) -> tuple[float, float]:
    """(mean, CI half-width) of ``samples`` at confidence level ``z``.

    One sample (or none) carries no spread information: the half-width is
    ``inf`` so downstream bounds checks refuse rather than pretend.
    """
    n = len(samples)
    if n == 0:
        return (0.0, math.inf)
    mean = sum(samples) / n
    if n < 2:
        return (mean, math.inf)
    variance = sum((value - mean) ** 2 for value in samples) / (n - 1)
    return (mean, z * math.sqrt(variance / n))


def ratio_estimate(numerators: Sequence[float],
                   denominators: Sequence[float]) -> float:
    """Ratio-of-sums point estimate (Σnum / Σden)."""
    total = sum(denominators)
    return sum(numerators) / total if total else 0.0


@dataclass(frozen=True)
class MetricEstimate:
    """One sampled metric: point estimate + CI half-width."""

    name: str
    value: float
    ci_halfwidth: float
    #: The CI size the refusal bound is checked against: relative to the
    #: estimate (CPI-like metrics) or absolute (fraction metrics).
    ci_measure: float

    def within(self, bound: float) -> bool:
        """True when the CI measure respects ``bound``."""
        return self.ci_measure <= bound


def check_bounds(sampled: "SampledResult",
                 max_ci: float = DEFAULT_CI_BOUND) -> list[str]:
    """Bound violations of ``sampled``'s estimates (empty = all within)."""
    problems = []
    for metric in sampled.metric_estimates():
        if not metric.within(max_ci):
            problems.append(
                f"{metric.name}: CI measure {metric.ci_measure:.4f} exceeds "
                f"bound {max_ci:.4f} "
                f"(estimate {metric.value:.4f} ± {metric.ci_halfwidth:.4f}); "
                f"sample more intervals (shorter --period) or loosen the bound"
            )
    return problems


def error_report(sampled: "SampledResult",
                 full=None,
                 max_ci: float = DEFAULT_CI_BOUND) -> str:
    """Render the sampled-vs-full error accounting, or refuse.

    ``full`` is an optional full-run reference carrying ``cpi`` and
    ``bad_outcome_fraction`` attributes (a
    :class:`~repro.engine.simulator.SimulationResult` or a
    :class:`~repro.experiments.common.RunResult`); without it the report
    shows estimates and CIs only.

    Raises :class:`ConfidenceBoundExceeded` when any estimate's CI measure
    exceeds ``max_ci`` — the report never prints numbers it cannot back.
    """
    problems = check_bounds(sampled, max_ci)
    if problems:
        raise ConfidenceBoundExceeded(
            "refusing to report sampled estimates:\n  " + "\n  ".join(problems)
        )
    lines = [
        f"sampled-run error accounting — {sampled.config_name}",
        f"  plan: {sampled.plan.describe()}",
        f"  intervals measured: {len(sampled.measurements)} "
        f"({sampled.measured_instructions:,} of "
        f"{sampled.total_records:,} records detailed-measured)",
        f"  CI bound: {max_ci:.2%} (95% confidence)",
    ]
    references = {}
    if full is not None:
        bad = getattr(full, "bad_outcome_fraction", None)
        if bad is None:  # RunResult spells it bad_fraction
            bad = full.bad_fraction
        references = {"cpi": full.cpi, "bad_outcome_fraction": bad}
    for metric in sampled.metric_estimates():
        line = (f"  {metric.name}: {metric.value:.4f} "
                f"± {metric.ci_halfwidth:.4f}")
        reference = references.get(metric.name)
        if reference is not None:
            if metric.name == "cpi":
                error = (metric.value - reference) / reference if reference else 0.0
                line += f"  (full {reference:.4f}, error {error:+.2%})"
            else:
                error = metric.value - reference
                line += f"  (full {reference:.4f}, error {error:+.4f} abs)"
        lines.append(line)
    return "\n".join(lines)
