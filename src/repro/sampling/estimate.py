"""Statistical extrapolation and error accounting for sampled runs.

The measured intervals are treated as a sample of the trace's behavior:
point estimates are ratio-of-sums (total measured cycles over total measured
instructions — the standard ratio estimator, robust to unequal interval
weights), and per-metric 95% confidence intervals come from the spread of
the per-interval values (z·s/√n, the SMARTS error model).

The error-accounting report (:func:`error_report`) is deliberately strict:
when a metric's estimated confidence interval exceeds the configured bound,
it *refuses* to render — raising :class:`ConfidenceBoundExceeded` — instead
of printing a number that looks five digits precise and isn't.  Callers
either sample more intervals or pass a looser bound explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.runner import SampledResult

#: Two-sided 95% normal quantile.
Z_95 = 1.96

#: Default refusal bound: CPI CI half-width over the CPI estimate, and the
#: bad-outcome-fraction CI half-width (absolute), must both stay within 2%.
DEFAULT_CI_BOUND = 0.02


class ConfidenceBoundExceeded(RuntimeError):
    """A sampled estimate's confidence interval exceeds the allowed bound."""


def confidence_interval(samples: Sequence[float],
                        z: float = Z_95) -> tuple[float, float]:
    """(mean, CI half-width) of ``samples`` at confidence level ``z``.

    One sample (or none) carries no spread information: the half-width is
    ``inf`` so downstream bounds checks refuse rather than pretend.
    Non-finite samples (a degenerate interval's ``nan``/``inf`` ratio)
    would silently poison the variance into ``nan`` — which compares
    *false* against any bound and used to slip through as a spuriously
    tight interval; they are excluded from the mean and force an ``inf``
    half-width instead.
    """
    finite = [value for value in samples if math.isfinite(value)]
    n = len(finite)
    if n == 0:
        return (0.0, math.inf)
    mean = sum(finite) / n
    if n < 2 or len(finite) != len(samples):
        return (mean, math.inf)
    variance = sum((value - mean) ** 2 for value in finite) / (n - 1)
    return (mean, z * math.sqrt(variance / n))


def ratio_estimate(numerators: Sequence[float],
                   denominators: Sequence[float]) -> float:
    """Ratio-of-sums point estimate (Σnum / Σden).

    A zero denominator total is degenerate, and the two cases differ: no
    observations at all (both sums zero) estimate 0.0 — nothing happened —
    but a *nonzero* numerator over a zero denominator (cycles measured,
    no instructions retired) has no defensible point estimate.  Returning
    0.0 there, as this function once did, printed a five-digits-precise
    lie; it now returns ``nan``, which every downstream bound check
    refuses (:meth:`MetricEstimate.within` treats non-finite as out of
    bounds).
    """
    total = sum(denominators)
    if total:
        return sum(numerators) / total
    return 0.0 if not sum(numerators) else math.nan


@dataclass(frozen=True)
class MetricEstimate:
    """One sampled metric: point estimate + CI half-width."""

    name: str
    value: float
    ci_halfwidth: float
    #: The CI size the refusal bound is checked against: relative to the
    #: estimate (CPI-like metrics) or absolute (fraction metrics).
    ci_measure: float

    @property
    def degenerate(self) -> bool:
        """True when the estimate itself is unusable (non-finite value).

        A ``nan`` point estimate (zero-denominator ratio) or infinite value
        is worse than a wide CI: there is nothing to report at all.
        """
        return not math.isfinite(self.value)

    def within(self, bound: float) -> bool:
        """True when the CI measure respects ``bound``.

        ``nan`` compares false against everything, so an unguarded
        ``<=`` would *pass* a ``nan`` bound measure through ``not
        within`` checks written the other way around; both the value and
        the measure must be finite for the estimate to count as bounded.
        """
        return (math.isfinite(self.value) and math.isfinite(self.ci_measure)
                and self.ci_measure <= bound)


def check_bounds(sampled: "SampledResult",
                 max_ci: float = DEFAULT_CI_BOUND) -> list[str]:
    """Bound violations of ``sampled``'s estimates (empty = all within).

    Degenerate estimates (single measured interval, zero denominator
    deltas) report an explicit refusal naming the cause, not a number.
    """
    problems = []
    for metric in sampled.metric_estimates():
        if metric.within(max_ci):
            continue
        if metric.degenerate:
            problems.append(
                f"{metric.name}: degenerate estimate ({metric.value!r}) — "
                f"the measured intervals' denominator deltas sum to zero; "
                f"no defensible point estimate exists at any bound"
            )
        elif not math.isfinite(metric.ci_measure):
            problems.append(
                f"{metric.name}: unbounded CI (estimate {metric.value:.4f}) "
                f"— fewer than two intervals carried this metric; sample "
                f"more intervals (shorter --period) before trusting it"
            )
        else:
            problems.append(
                f"{metric.name}: CI measure {metric.ci_measure:.4f} exceeds "
                f"bound {max_ci:.4f} "
                f"(estimate {metric.value:.4f} ± {metric.ci_halfwidth:.4f}); "
                f"sample more intervals (shorter --period) or loosen the bound"
            )
    return problems


def error_report(sampled: "SampledResult",
                 full=None,
                 max_ci: float = DEFAULT_CI_BOUND) -> str:
    """Render the sampled-vs-full error accounting, or refuse.

    ``full`` is an optional full-run reference carrying ``cpi`` and
    ``bad_outcome_fraction`` attributes (a
    :class:`~repro.engine.simulator.SimulationResult` or a
    :class:`~repro.experiments.common.RunResult`); without it the report
    shows estimates and CIs only.

    Raises :class:`ConfidenceBoundExceeded` when any estimate's CI measure
    exceeds ``max_ci`` — the report never prints numbers it cannot back.
    """
    problems = check_bounds(sampled, max_ci)
    if problems:
        raise ConfidenceBoundExceeded(
            "refusing to report sampled estimates:\n  " + "\n  ".join(problems)
        )
    lines = [
        f"sampled-run error accounting — {sampled.config_name}",
        f"  plan: {sampled.plan.describe()}",
        f"  intervals measured: {len(sampled.measurements)} "
        f"({sampled.measured_instructions:,} of "
        f"{sampled.total_records:,} records detailed-measured)",
        f"  CI bound: {max_ci:.2%} (95% confidence)",
    ]
    references = {}
    if full is not None:
        bad = getattr(full, "bad_outcome_fraction", None)
        if bad is None:  # RunResult spells it bad_fraction
            bad = full.bad_fraction
        references = {"cpi": full.cpi, "bad_outcome_fraction": bad}
    for metric in sampled.metric_estimates():
        line = (f"  {metric.name}: {metric.value:.4f} "
                f"± {metric.ci_halfwidth:.4f}")
        reference = references.get(metric.name)
        if reference is not None:
            if metric.name == "cpi":
                error = (metric.value - reference) / reference if reference else 0.0
                line += f"  (full {reference:.4f}, error {error:+.2%})"
            else:
                error = metric.value - reference
                line += f"  (full {reference:.4f}, error {error:+.4f} abs)"
        lines.append(line)
    return "\n".join(lines)
