"""On-disk checkpoints of simulator architectural state.

A checkpoint is the gzip-compressed JSON of
:meth:`repro.engine.simulator.Simulator.state_dict` — pure data, no pickled
live objects — so a warmed state is created once and reused across runs,
experiments and processes.  The :class:`CheckpointStore` keys checkpoints by
(model fingerprint, trace identity, sampling plan, interval index): the full
provenance a snapshot is valid for, hashed into a filename.

Writes are atomic (scratch file + ``os.replace``) so concurrent experiment
workers can share a store the same way they share the result cache.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from pathlib import Path


def save_state(path, state: dict) -> None:
    """Atomically write ``state`` as gzip-JSON to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_suffix(f".tmp{os.getpid()}")
    # mtime=0 and an empty embedded name keep the gzip output byte-stable
    # for identical states, whatever the file is called.
    with open(scratch, "wb") as raw:
        with gzip.GzipFile(filename="", mode="wb", fileobj=raw,
                           mtime=0) as stream:
            stream.write(json.dumps(state, separators=(",", ":")).encode())
    os.replace(scratch, path)


def load_state(path) -> dict:
    """Read a checkpoint written by :func:`save_state`."""
    with gzip.open(path, "rb") as stream:
        return json.loads(stream.read().decode())


class CheckpointStore:
    """A directory of provenance-keyed simulator checkpoints."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    def path_for(self, model: str, trace_key: str, plan_key: tuple,
                 index: int) -> Path:
        """Checkpoint file for one (model, trace, plan, interval) identity."""
        digest = hashlib.sha256(
            repr((model, trace_key, plan_key, index)).encode()
        ).hexdigest()[:20]
        return self.directory / f"ckpt-{digest}.json.gz"

    def has(self, model: str, trace_key: str, plan_key: tuple,
            index: int) -> bool:
        """True when a checkpoint exists for this identity."""
        return self.path_for(model, trace_key, plan_key, index).exists()

    def load(self, model: str, trace_key: str, plan_key: tuple,
             index: int) -> dict | None:
        """The stored state, or ``None`` when absent or unreadable.

        Tolerant reads, like the result cache: a corrupt or half-written
        file (only possible outside the atomic-rename protocol) degrades to
        a recompute, never an error.
        """
        path = self.path_for(model, trace_key, plan_key, index)
        try:
            return load_state(path)
        except (OSError, ValueError):
            return None

    def save(self, model: str, trace_key: str, plan_key: tuple,
             index: int, state: dict) -> Path:
        """Store ``state`` under this identity; returns the path."""
        path = self.path_for(model, trace_key, plan_key, index)
        save_state(path, state)
        return path

    def entries(self) -> list[Path]:
        """Every checkpoint file in the store, sorted by name."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("ckpt-*.json.gz"))

    def clear(self) -> int:
        """Delete every checkpoint in the store; returns the count removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed
