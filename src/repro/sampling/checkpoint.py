"""On-disk checkpoints of simulator architectural state.

A checkpoint is the gzip-compressed JSON of
:meth:`repro.engine.simulator.Simulator.state_dict` — pure data, no pickled
live objects — so a warmed state is created once and reused across runs,
experiments and processes.  The :class:`CheckpointStore` keys checkpoints by
(model fingerprint, trace identity, sampling plan, interval index): the full
provenance a snapshot is valid for, hashed into a filename.

Writes are atomic (scratch file + ``os.replace``) so concurrent experiment
workers can share a store the same way they share the result cache.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import time
import zlib
from pathlib import Path

from repro.telemetry.metrics import REGISTRY

#: Everything a torn, truncated, or concurrently rewritten checkpoint file
#: can raise on read: filesystem errors, non-JSON / non-gzip content
#: (``ValueError`` covers ``json.JSONDecodeError`` and gzip's bad-magic
#: check), a gzip stream cut mid-member (``EOFError``), and a corrupted
#: deflate payload (``zlib.error``).  The last two escaped the original
#: tolerant-read net: a crash mid-write outside the atomic-rename protocol
#: (or a copied-in partial file) produced a checkpoint that *raised*
#: instead of degrading to a recompute.
_UNREADABLE = (OSError, ValueError, EOFError, zlib.error)


def _count(result: str) -> None:
    """Tick the process-local checkpoint-traffic counter.

    Instruments the module-global :data:`~repro.telemetry.metrics.REGISTRY`
    so orchestrator-side store traffic shows up in metrics snapshots;
    worker processes fold their own store traffic into per-slice relay
    snapshots instead (a fork-inherited global registry must never be
    exported twice).
    """
    REGISTRY.counter(
        "repro_checkpoint_store_total",
        "checkpoint store operations by result",
        ("result",),
    ).inc(result=result)


def save_state(path, state: dict) -> None:
    """Atomically write ``state`` as gzip-JSON to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_suffix(f".tmp{os.getpid()}")
    # mtime=0 and an empty embedded name keep the gzip output byte-stable
    # for identical states, whatever the file is called.
    with open(scratch, "wb") as raw:
        with gzip.GzipFile(filename="", mode="wb", fileobj=raw,
                           mtime=0) as stream:
            stream.write(json.dumps(state, separators=(",", ":")).encode())
    os.replace(scratch, path)


def load_state(path) -> dict:
    """Read a checkpoint written by :func:`save_state`.

    Raises ``ValueError`` when the payload decodes but is not a JSON
    object — a state dict is always an object, anything else is garbage
    that happens to gunzip.
    """
    with gzip.open(path, "rb") as stream:
        state = json.loads(stream.read().decode())
    if not isinstance(state, dict):
        raise ValueError(f"checkpoint {path} holds {type(state).__name__}, "
                         f"not a state dict")
    return state


class CheckpointStore:
    """A directory of provenance-keyed simulator checkpoints.

    Safe under concurrent writers and readers, like the result cache:
    writes are atomic, reads are tolerant (corrupt or vanished files are
    skipped and reported via :attr:`skipped`, never raised), and
    :meth:`clear` tolerates losing races to other deleters.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        #: Skip-and-report ledger: (path, reason) for every unreadable
        #: checkpoint this store instance encountered and degraded around.
        self.skipped: list[tuple[Path, str]] = []

    def path_for(self, model: str, trace_key: str, plan_key: tuple,
                 index: int) -> Path:
        """Checkpoint file for one (model, trace, plan, interval) identity."""
        digest = hashlib.sha256(
            repr((model, trace_key, plan_key, index)).encode()
        ).hexdigest()[:20]
        return self.directory / f"ckpt-{digest}.json.gz"

    def has(self, model: str, trace_key: str, plan_key: tuple,
            index: int) -> bool:
        """True when a checkpoint exists for this identity."""
        return self.path_for(model, trace_key, plan_key, index).exists()

    def load(self, model: str, trace_key: str, plan_key: tuple,
             index: int) -> dict | None:
        """The stored state, or ``None`` when absent or unreadable.

        Tolerant reads, like the result cache: a corrupt or half-written
        file (only possible outside the atomic-rename protocol) degrades to
        a recompute, never an error.
        """
        path = self.path_for(model, trace_key, plan_key, index)
        try:
            state = load_state(path)
        except FileNotFoundError:
            _count("miss")
            return None  # plain miss, not worth a skip report
        except _UNREADABLE as problem:
            self.skipped.append((path, f"{type(problem).__name__}: {problem}"))
            _count("skipped")
            return None
        _count("hit")
        return state

    def save(self, model: str, trace_key: str, plan_key: tuple,
             index: int, state: dict) -> Path:
        """Store ``state`` under this identity; returns the path."""
        path = self.path_for(model, trace_key, plan_key, index)
        save_state(path, state)
        _count("save")
        return path

    def entries(self) -> list[Path]:
        """Every checkpoint file in the store, sorted by name.

        Tolerates the directory vanishing mid-scan (a concurrent
        ``clear``/``rmtree``): a listing race degrades to the empty list.
        """
        try:
            return sorted(self.directory.glob("ckpt-*.json.gz"))
        except OSError:
            return []

    def prune(self, max_entries: int | None = None,
              max_age: float | None = None, *,
              now: float | None = None) -> int:
        """Bound the store: drop old checkpoints; return the count removed.

        Long-lived stores (the simulation service's suspend/resume spool,
        a shared sweep cache) grow without bound otherwise.  Two
        independent limits, either or both:

        * ``max_age`` — remove entries whose mtime is older than this many
          seconds (against ``now``, default wall clock);
        * ``max_entries`` — after the age pass, remove oldest-first until
          at most this many remain.

        Tolerant of concurrent writers and deleters exactly like
        :meth:`clear`: a vanished file is not an error and not counted,
        and an unstatable file is treated as oldest (it gets pruned
        first rather than wedging the pass).
        """
        if max_entries is None and max_age is None:
            return 0
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if max_age is not None and max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        now = time.time() if now is None else now
        aged: list[tuple[float, Path]] = []
        for path in self.entries():
            try:
                mtime = path.stat().st_mtime
            except OSError:
                mtime = float("-inf")
            aged.append((mtime, path))
        aged.sort()
        doomed: list[Path] = []
        if max_age is not None:
            cutoff = now - max_age
            doomed.extend(path for mtime, path in aged if mtime < cutoff)
            aged = [(mtime, path) for mtime, path in aged if mtime >= cutoff]
        if max_entries is not None and len(aged) > max_entries:
            excess = len(aged) - max_entries
            doomed.extend(path for _, path in aged[:excess])
        removed = 0
        for path in doomed:
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            removed += 1
        if removed:
            _count("pruned")
        return removed

    def clear(self) -> int:
        """Delete every checkpoint in the store; returns the count removed.

        Counts only files this call actually removed: losing an unlink
        race to a concurrent deleter is not an error and not a removal.
        """
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
            except FileNotFoundError:
                continue  # another process beat us to it
            removed += 1
        return removed
