"""Interval-sampling plans: which trace windows get detailed simulation.

A :class:`SamplingPlan` partitions a trace into repeating periods.  Within
each period one *measured interval* of ``interval`` records is simulated in
full detail, preceded by ``warmup`` records of detailed-but-unmeasured
simulation (so the timing machinery — lookahead search position, in-flight
transfers, pending prefetches — reaches steady state before counters are
read).  Everything else is covered in functional-warming mode
(:meth:`repro.engine.simulator.Simulator.warm_step`): predictors and caches
keep learning, no cycles are accounted.

Two selection disciplines, the standard ones from the sampling literature
(SMARTS / stratified sampling):

* ``systematic`` — one interval at a fixed offset in every period;
* ``stratified`` — one interval at a seeded-pseudorandom offset within each
  period (stratum), which guards against periodic program behavior aliasing
  with the sampling period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Interval:
    """One measured interval and its detailed-warmup prefix."""

    #: Measured-interval index (0-based).
    index: int
    #: First record of the detailed warmup (unmeasured).
    warm_start: int
    #: First measured record.
    start: int
    #: One past the last measured record.
    stop: int


@dataclass(frozen=True)
class SamplingPlan:
    """How to sample one trace: mode, period geometry, warmup."""

    #: ``systematic`` or ``stratified``.  Stratified is the safer default:
    #: systematic sampling aliases badly when the period divides a
    #: workload's internal periodicity (the catalog's mixes switch phase
    #: every 20k records; a 40k systematic period measures one phase only).
    mode: str = "stratified"
    #: Measured records per interval.
    interval: int = 1_000
    #: Records per period (one measured interval per period).
    period: int = 20_000
    #: Detailed-but-unmeasured records before each measured interval.
    warmup: int = 1_000
    #: Offset-selection seed (stratified mode only).
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.mode not in ("systematic", "stratified"):
            raise ValueError(f"unknown sampling mode {self.mode!r}")
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.period < self.interval + self.warmup:
            raise ValueError(
                f"period {self.period} shorter than warmup {self.warmup} "
                f"+ interval {self.interval}"
            )

    @property
    def detailed_fraction(self) -> float:
        """Fraction of records simulated in detail (measured + warmup)."""
        return (self.interval + self.warmup) / self.period

    def intervals(self, total_records: int) -> list[Interval]:
        """The measured intervals for a trace of ``total_records``.

        Periods start at record 0; a period too short to fit its warmup +
        interval (the trace tail) is skipped.  Systematic mode places the
        warmup at the start of every period.  Stratified mode draws each
        period's offset from a seeded PRNG — deterministic for a given
        (seed, total_records), independent of everything else.
        """
        chosen: list[Interval] = []
        rng = random.Random(f"{self.seed}:{total_records}") \
            if self.mode == "stratified" else None
        footprint = self.warmup + self.interval
        index = 0
        for period_start in range(0, total_records, self.period):
            period_len = min(self.period, total_records - period_start)
            if period_len < footprint:
                continue
            if rng is None:
                offset = 0
            else:
                offset = rng.randrange(period_len - footprint + 1)
            warm_start = period_start + offset
            start = warm_start + self.warmup
            chosen.append(
                Interval(
                    index=index,
                    warm_start=warm_start,
                    start=start,
                    stop=start + self.interval,
                )
            )
            index += 1
        return chosen

    def cache_key(self) -> tuple:
        """Stable tuple identifying this plan (result/checkpoint cache keys)."""
        return (self.mode, self.interval, self.period, self.warmup, self.seed)

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"{self.mode} sampling: {self.interval} measured "
            f"+ {self.warmup} warmup records per {self.period}-record period "
            f"({self.detailed_fraction:.1%} detailed)"
        )
