"""The sampled-simulation interval runner.

Executes a :class:`~repro.sampling.plan.SamplingPlan` over one trace:
fast-forwards between measured intervals in functional-warming mode
(:meth:`~repro.engine.simulator.Simulator.warm_step` — predictors and
caches learn, no cycles), runs each interval's detailed warmup prefix
unmeasured, snapshots the counters around the measured window, and
extrapolates whole-trace estimates from the per-interval deltas with
confidence intervals (:mod:`repro.sampling.estimate`).

With a :class:`~repro.sampling.checkpoint.CheckpointStore` attached, the
warmed state reached at each interval's warm-start is serialized once; a
rerun (same model fingerprint, trace identity and plan) loads the snapshot
and skips the fast-forward entirely.

The trace argument is anything sized: a materialized ``list[TraceRecord]``,
a :class:`~repro.trace.reader.TraceFile` (the cheap path — fixed record
size makes a checkpoint fast-forward a seek instead of a scan), or any
sized iterable.  Consumption is single-pass via :class:`_TraceCursor`:
one forward sweep over one stream, never a re-read from record 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.audit import Auditor
    from repro.telemetry import Telemetry

from repro.core.config import PredictorConfig, ZEC12_CONFIG_2
from repro.core.events import OutcomeKind
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import SimulationResult, Simulator
from repro.metrics.counters import SimCounters
from repro.sampling.checkpoint import CheckpointStore
from repro.sampling.estimate import (
    MetricEstimate,
    confidence_interval,
    ratio_estimate,
)
from repro.sampling.plan import Interval, SamplingPlan
from repro.trace.record import TraceRecord


class _TraceCursor:
    """One forward pass over a trace, whatever its access pattern.

    Interval consumption used to open a fresh window per interval, which
    on a streaming reader meant a new iteration per window (and made pure
    iterables unusable).  The cursor fixes that: it hands out
    monotonically advancing windows carved from a *single* underlying
    stream, escalating through three access modes:

    * ``iter_from`` (a :class:`~repro.trace.reader.TraceFile`): one
      open-ended generator over the backing stream is reused across
      contiguous windows; a positional jump (checkpoint fast-forward)
      re-seeks instead of scanning.  ``stream_passes`` counts generator
      (re)creations — contiguous consumption is exactly one pass.
    * sliceable sequences (a materialized ``list``): windows are slices;
      skips are free.
    * plain sized iterables: one ``iter()`` for the whole run; skips
      consume-and-discard.  (Previously a ``TypeError``.)

    Rewinding is a bug by construction and raises ``ValueError``.
    """

    def __init__(self, trace) -> None:
        self._trace = trace
        self._iter_from = getattr(trace, "iter_from", None)
        self._sliceable = (self._iter_from is None
                           and hasattr(trace, "__getitem__"))
        self._stream: Iterator[TraceRecord] | None = None
        self._position = 0
        #: Fresh stream iterations/seeks performed (regression hook).
        self.stream_passes = 0

    @property
    def position(self) -> int:
        return self._position

    def skip_to(self, position: int) -> None:
        """Advance past records ``[position_now, position)`` unread.

        Free on seekable/sliceable traces; consume-and-discard on pure
        streams.  Going backwards raises — the cursor is single-pass.
        """
        if position < self._position:
            raise ValueError(
                f"cursor cannot rewind from {self._position} to {position}"
            )
        if position == self._position:
            return
        if self._iter_from is not None:
            # Drop the current generator; the next window re-seeks.
            self._stream = None
        elif not self._sliceable:
            stream = self._ensure_stream()
            for _ in islice(stream, position - self._position):
                pass
        self._position = position

    def _ensure_stream(self) -> Iterator[TraceRecord]:
        if self._stream is None:
            self._stream = iter(self._trace)
            self.stream_passes += 1
        return self._stream

    def window(self, start: int, stop: int) -> Iterator[TraceRecord]:
        """Yield records ``[start, stop)``; ``start`` >= current position."""
        if stop <= start:
            return
        if start != self._position:
            self.skip_to(start)
        if self._iter_from is not None:
            if self._stream is None:
                self._stream = self._iter_from(start)
                self.stream_passes += 1
            for record in islice(self._stream, stop - start):
                self._position += 1
                yield record
        elif self._sliceable:
            for record in self._trace[start:stop]:
                self._position += 1
                yield record
        else:
            stream = self._ensure_stream()
            for record in islice(stream, stop - start):
                self._position += 1
                yield record


def _diff_counters(before: dict, after: dict) -> dict:
    """Per-field delta of two :meth:`SimCounters.state_dict` snapshots."""
    delta: dict = {}
    for key, value in after.items():
        previous = before[key]
        if isinstance(value, dict):
            delta[key] = {
                name: value.get(name, 0) - previous.get(name, 0)
                for name in set(value) | set(previous)
            }
        else:
            delta[key] = value - previous
    return delta


@dataclass(frozen=True)
class IntervalMeasurement:
    """Counter deltas of one measured interval."""

    index: int
    start: int
    stop: int
    #: Whether the fast-forward to this interval was skipped via checkpoint.
    from_checkpoint: bool
    #: :meth:`SimCounters.state_dict`-shaped delta (``cycles`` from the
    #: simulator clock, since counters only latch cycles at finish).
    delta: dict

    @property
    def instructions(self) -> int:
        return self.delta["instructions"]

    @property
    def cycles(self) -> float:
        return self.delta["cycles"]

    @property
    def branches(self) -> int:
        return self.delta["branches"]

    @property
    def bad_outcomes(self) -> int:
        outcomes = self.delta["outcomes"]
        return sum(outcomes.get(kind.value, 0)
                   for kind in OutcomeKind if kind.is_bad)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def bad_outcome_fraction(self) -> float:
        return self.bad_outcomes / self.branches if self.branches else 0.0


@dataclass
class SampledResult:
    """Everything a sampled run produces: estimates, CIs, provenance."""

    config_name: str
    plan: SamplingPlan
    total_records: int
    measurements: list[IntervalMeasurement]
    #: Extrapolated whole-trace result (counters scaled from the measured
    #: intervals; structure stats are the partial run's actual state).
    result: SimulationResult
    cpi: float
    cpi_ci: float
    bad_outcome_fraction: float
    bad_outcome_ci: float
    measured_instructions: int
    #: Records stepped through the full detailed model (warmup + measured).
    detailed_records: int
    checkpoints_loaded: int
    checkpoints_saved: int

    def metric_estimates(self) -> list[MetricEstimate]:
        """The bound-checked headline metrics (CPI relative, fraction abs)."""
        return [
            MetricEstimate(
                name="cpi",
                value=self.cpi,
                ci_halfwidth=self.cpi_ci,
                ci_measure=(self.cpi_ci / self.cpi
                            if self.cpi else float("inf")),
            ),
            MetricEstimate(
                name="bad_outcome_fraction",
                value=self.bad_outcome_fraction,
                ci_halfwidth=self.bad_outcome_ci,
                ci_measure=self.bad_outcome_ci,
            ),
        ]


def _extrapolate(measurements: Sequence[IntervalMeasurement],
                 total_records: int, cpi: float) -> SimCounters:
    """Whole-trace counters scaled from the measured deltas.

    Instruction count is exact (one record per instruction); cycles follow
    the ratio-estimator CPI; event counts scale by the sampled fraction and
    round to integers.
    """
    measured = sum(m.instructions for m in measurements)
    scale = total_records / measured if measured else 0.0
    counters = SimCounters()
    counters.instructions = total_records
    counters.cycles = cpi * total_records

    def scaled(field: str) -> int:
        return round(sum(m.delta[field] for m in measurements) * scale)

    counters.branches = scaled("branches")
    counters.taken_branches = scaled("taken_branches")
    counters.icache_demand_misses = scaled("icache_demand_misses")
    counters.icache_hidden_misses = scaled("icache_hidden_misses")
    counters.icache_partially_hidden_misses = scaled(
        "icache_partially_hidden_misses")
    counters.context_switches = scaled("context_switches")
    for kind in OutcomeKind:
        counters.outcomes[kind] = round(
            sum(m.delta["outcomes"].get(kind.value, 0)
                for m in measurements) * scale
        )
    causes: set[str] = set()
    for m in measurements:
        causes.update(m.delta["penalty_cycles"])
    for cause in sorted(causes):
        counters.penalty_cycles[cause] = (
            sum(m.delta["penalty_cycles"].get(cause, 0.0)
                for m in measurements) * scale
        )
    return counters


def _execute_intervals(
    sim: Simulator,
    cursor: _TraceCursor,
    intervals: Sequence[Interval],
    *,
    telemetry: "Telemetry | None" = None,
    store: CheckpointStore | None = None,
    trace_key: str | None = None,
    plan_key: tuple | None = None,
) -> tuple[list[IntervalMeasurement], int, int, int]:
    """Run a span of measured intervals over one cursor.

    The shared core of :func:`run_sampled` and the sampled-mode workers of
    :mod:`repro.sampling.parallel`: functionally warm up to each interval's
    warm-start (or load its checkpoint and seek), run the detailed
    warmup + measured window, and collect the per-interval counter deltas.

    Returns ``(measurements, detailed_records, checkpoints_loaded,
    checkpoints_saved)``.  Checkpointing engages only when ``store``,
    ``trace_key`` and ``plan_key`` are all provided; checkpoints are keyed
    by interval index under ``plan_key``.
    """
    model = sim.model_fingerprint()
    use_store = (store is not None and trace_key is not None
                 and plan_key is not None)
    detailed_records = 0
    checkpoints_loaded = 0
    checkpoints_saved = 0
    measurements: list[IntervalMeasurement] = []
    for interval in intervals:
        state = None
        if use_store:
            state = store.load(model, trace_key, plan_key, interval.index)
        from_checkpoint = False
        if state is not None:
            try:
                sim.load_state_dict(state)
            except ValueError:
                # Stale schema or foreign fingerprint: recompute.
                state = None
        if state is not None:
            from_checkpoint = True
            checkpoints_loaded += 1
            cursor.skip_to(interval.warm_start)
        else:
            if telemetry is not None and cursor.position < interval.warm_start:
                telemetry.on_interval(sim._cycle, interval.index,
                                      cursor.position, "warming")
            sim.warm_run(cursor.window(cursor.position, interval.warm_start))
            if use_store:
                store.save(model, trace_key, plan_key, interval.index,
                           sim.state_dict())
                checkpoints_saved += 1
        if telemetry is not None:
            telemetry.on_interval(sim._cycle, interval.index,
                                  interval.warm_start, "warmup")
        warmup_len = interval.start - interval.warm_start
        before: dict | None = None
        cycle_before = 0.0
        for offset, record in enumerate(
            cursor.window(interval.warm_start, interval.stop)
        ):
            if offset == 0:
                sim.begin_interval(record.address)
            if offset == warmup_len:
                before = sim.counters.state_dict()
                cycle_before = sim._cycle
                if telemetry is not None:
                    telemetry.on_interval(sim._cycle, interval.index,
                                          interval.start, "measure")
            sim.step(record)
            detailed_records += 1
        delta = _diff_counters(before, sim.counters.state_dict())
        delta["cycles"] = sim._cycle - cycle_before
        measurements.append(
            IntervalMeasurement(
                index=interval.index,
                start=interval.start,
                stop=interval.stop,
                from_checkpoint=from_checkpoint,
                delta=delta,
            )
        )
        if telemetry is not None:
            telemetry.on_interval(sim._cycle, interval.index, interval.stop,
                                  "end")
    return measurements, detailed_records, checkpoints_loaded, checkpoints_saved


def run_sampled(
    trace,
    config: PredictorConfig = ZEC12_CONFIG_2,
    timing: TimingParams = DEFAULT_TIMING,
    plan: SamplingPlan | None = None,
    *,
    audit: "Auditor | None" = None,
    telemetry: "Telemetry | None" = None,
    checkpoint_store: CheckpointStore | None = None,
    trace_key: str | None = None,
    engine_mode: str = "object",
) -> SampledResult:
    """Simulate ``trace`` under ``plan`` and extrapolate whole-trace metrics.

    ``trace`` is a ``Sequence[TraceRecord]`` or an open
    :class:`~repro.trace.reader.TraceFile`.  Checkpointing needs both
    ``checkpoint_store`` and ``trace_key`` (a stable trace identity, e.g.
    the workload's cache key); with them, each interval's warmed state is
    saved on first computation and loaded — skipping the functional
    fast-forward — on reruns.  Records after the last measured interval are
    never touched: they cannot affect any measurement.

    ``engine_mode`` selects the engine for the functional fast-forward
    (``warm_run``); measured intervals always step per record, so the
    estimates are bit-identical across modes.
    """
    if plan is None:
        plan = SamplingPlan()
    total_records = len(trace)
    intervals = plan.intervals(total_records)
    if not intervals:
        raise ValueError(
            f"trace of {total_records} records is shorter than one "
            f"warmup+interval footprint ({plan.warmup}+{plan.interval}); "
            f"run it in full instead"
        )
    sim = Simulator(config=config, timing=timing, audit=audit,
                    telemetry=telemetry, engine_mode=engine_mode)
    measurements, detailed_records, checkpoints_loaded, checkpoints_saved = \
        _execute_intervals(
            sim, _TraceCursor(trace), intervals,
            telemetry=telemetry, store=checkpoint_store,
            trace_key=trace_key, plan_key=plan.cache_key(),
        )
    raw = sim.finish()
    cpi = ratio_estimate(
        [m.cycles for m in measurements],
        [m.instructions for m in measurements],
    )
    bad_fraction = ratio_estimate(
        [m.bad_outcomes for m in measurements],
        [m.branches for m in measurements],
    )
    _, cpi_ci = confidence_interval(
        [m.cpi for m in measurements if m.instructions]
    )
    _, bad_ci = confidence_interval(
        [m.bad_outcome_fraction for m in measurements if m.branches]
    )
    counters = _extrapolate(measurements, total_records, cpi)
    result = SimulationResult(
        config_name=raw.config_name,
        counters=counters,
        search_stats=raw.search_stats,
        btbp_stats=raw.btbp_stats,
        btb2_stats=raw.btb2_stats,
        preload_stats=raw.preload_stats,
        icache_stats=raw.icache_stats,
    )
    return SampledResult(
        config_name=raw.config_name,
        plan=plan,
        total_records=total_records,
        measurements=measurements,
        result=result,
        cpi=cpi,
        cpi_ci=cpi_ci,
        bad_outcome_fraction=bad_fraction,
        bad_outcome_ci=bad_ci,
        measured_instructions=sum(m.instructions for m in measurements),
        detailed_records=detailed_records,
        checkpoints_loaded=checkpoints_loaded,
        checkpoints_saved=checkpoints_saved,
    )
