"""Sampled simulation and checkpointing (SMARTS-style interval sampling).

Public surface:

* :class:`~repro.sampling.plan.SamplingPlan` — which trace windows get
  detailed simulation (systematic or stratified selection);
* :func:`~repro.sampling.runner.run_sampled` — execute a plan: functional
  warming between intervals, detailed warmup + measurement inside them,
  counter extrapolation with confidence intervals;
* :class:`~repro.sampling.checkpoint.CheckpointStore` — on-disk warmed
  state, keyed by (model fingerprint, trace, plan, interval);
* :func:`~repro.sampling.estimate.error_report` — sampled-vs-full error
  accounting that refuses estimates whose CI exceeds the bound;
* :func:`~repro.sampling.parallel.run_parallel` — checkpoint-parallel
  interval simulation: cut one trace into K slices, fan them out over an
  execution backend, stitch the deltas (bit-identical in exact mode).
"""

from repro.sampling.checkpoint import CheckpointStore, load_state, save_state
from repro.sampling.estimate import (
    DEFAULT_CI_BOUND,
    ConfidenceBoundExceeded,
    MetricEstimate,
    check_bounds,
    confidence_interval,
    error_report,
    ratio_estimate,
)
from repro.sampling.plan import Interval, SamplingPlan
from repro.sampling.runner import IntervalMeasurement, SampledResult, run_sampled

# Imported last: parallel builds on the runner/checkpoint surface above.
from repro.sampling.parallel import (  # noqa: E402
    IntervalSlice,
    ParallelPlan,
    ParallelResult,
    SliceOutcome,
    TraceSource,
    plan_slices,
    run_parallel,
)

__all__ = [
    "CheckpointStore",
    "ConfidenceBoundExceeded",
    "DEFAULT_CI_BOUND",
    "Interval",
    "IntervalMeasurement",
    "IntervalSlice",
    "MetricEstimate",
    "ParallelPlan",
    "ParallelResult",
    "SampledResult",
    "SamplingPlan",
    "SliceOutcome",
    "TraceSource",
    "check_bounds",
    "confidence_interval",
    "error_report",
    "load_state",
    "plan_slices",
    "ratio_estimate",
    "run_parallel",
    "run_sampled",
    "save_state",
]
