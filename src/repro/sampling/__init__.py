"""Sampled simulation and checkpointing (SMARTS-style interval sampling).

Public surface:

* :class:`~repro.sampling.plan.SamplingPlan` — which trace windows get
  detailed simulation (systematic or stratified selection);
* :func:`~repro.sampling.runner.run_sampled` — execute a plan: functional
  warming between intervals, detailed warmup + measurement inside them,
  counter extrapolation with confidence intervals;
* :class:`~repro.sampling.checkpoint.CheckpointStore` — on-disk warmed
  state, keyed by (model fingerprint, trace, plan, interval);
* :func:`~repro.sampling.estimate.error_report` — sampled-vs-full error
  accounting that refuses estimates whose CI exceeds the bound.
"""

from repro.sampling.checkpoint import CheckpointStore, load_state, save_state
from repro.sampling.estimate import (
    DEFAULT_CI_BOUND,
    ConfidenceBoundExceeded,
    MetricEstimate,
    check_bounds,
    confidence_interval,
    error_report,
    ratio_estimate,
)
from repro.sampling.plan import Interval, SamplingPlan
from repro.sampling.runner import IntervalMeasurement, SampledResult, run_sampled

__all__ = [
    "CheckpointStore",
    "ConfidenceBoundExceeded",
    "DEFAULT_CI_BOUND",
    "Interval",
    "IntervalMeasurement",
    "MetricEstimate",
    "SampledResult",
    "SamplingPlan",
    "check_bounds",
    "confidence_interval",
    "error_report",
    "load_state",
    "ratio_estimate",
    "run_sampled",
    "save_state",
]
