"""Checkpoint-parallel interval simulation.

Splits one long trace into K independent interval slices and simulates
them concurrently, stitching per-slice counter deltas back together with
the same ratio-of-sums estimator the sampled runner uses.  Two modes:

* **exact** (no sampling plan): the trace is cut into K contiguous
  slices.  A checkpoint-producer pass steps the detailed model once and
  snapshots :meth:`~repro.engine.simulator.Simulator.state_dict` at each
  slice boundary; every worker then resumes from the exact state the
  serial run would have reached there, so each per-slice counter delta is
  the serial run's delta and the stitched result is **bit-identical** to
  the serial run (the last slice's cumulative state *is* the serial end
  state).  The producer pass is the cold-run cost; with a
  :class:`~repro.sampling.checkpoint.CheckpointStore` attached the
  boundary states persist, and reruns — different engine, telemetry off,
  bisection sweeps over anything downstream of the trace — pay only the
  fan-out, giving near-linear scaling in K.
* **sampled** (with a :class:`~repro.sampling.plan.SamplingPlan`): the
  plan's measured intervals are partitioned into K contiguous chunks and
  each worker functionally warms from the trace start (or its chunk's
  checkpoint) before running its share of the plan through the same
  interval core as :func:`~repro.sampling.runner.run_sampled`.  Warming
  lineage differs from the serial sampled run (a worker's prefix is
  warmed, never detailed), so the stitched estimate is CI-bounded, not
  bit-identical — the same contract as sampled-vs-full.

Workers dispatch through the pluggable
:class:`~repro.experiments.backends.Backend` seam (``serial``,
``process``), the same abstraction the experiment run-matrix pool uses.
Checkpoints never cross lineages: exact boundary states, sampled chunk
states, and the serial sampled runner's per-interval states all live
under distinct plan keys in the store.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry

from repro.core.config import PredictorConfig, ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import SimulationResult, Simulator
from repro.sampling.checkpoint import CheckpointStore
from repro.sampling.estimate import confidence_interval, ratio_estimate
from repro.sampling.plan import Interval, SamplingPlan
from repro.sampling.runner import (
    IntervalMeasurement,
    SampledResult,
    _diff_counters,
    _execute_intervals,
    _extrapolate,
    _TraceCursor,
)
from repro.telemetry.distributed import ORCHESTRATOR, TelemetryRelay
from repro.telemetry.hub import Telemetry as _Telemetry
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.monitor import StatusBoard, shutdown_sweep
from repro.telemetry.tracer import Tracer as _Tracer
from repro.trace.reader import open_trace
from repro.workloads.catalog import WorkloadSpec, default_scale

#: Records between worker heartbeat lines on the status board (a power of
#: two so the in-loop check is one mask + test when a board is attached).
_BEAT_MASK = 8191

#: Count-shaped histogram bounds for per-slice record volumes.
_RECORD_BUCKETS = (100.0, 1_000.0, 10_000.0, 100_000.0,
                   1_000_000.0, 10_000_000.0)


@dataclass(frozen=True)
class TraceSource:
    """A picklable recipe for obtaining one trace in any process.

    Workers cannot receive a live :class:`~repro.trace.reader.TraceFile`
    (open file handles don't pickle) and should not receive a
    million-record list (pickling it per task dwarfs the simulation), so
    the fan-out ships this recipe instead.  Exactly one of the three
    fields is the primary source; :meth:`open` prefers the streaming path
    so each worker decodes only its own slice.
    """

    #: Catalog workload to regenerate/stream from the trace cache.
    workload: WorkloadSpec | None = None
    #: Scale for ``workload`` (resolved, never ``None`` when workload set).
    scale: float | None = None
    #: On-disk ``.ztrc`` file to stream with :func:`open_trace`.
    path: str | None = None
    #: In-memory records (tests and tiny traces only — pickled per task).
    records: tuple = ()

    @classmethod
    def for_workload(cls, spec: WorkloadSpec,
                     scale: float | None = None) -> "TraceSource":
        """Source for a catalog workload, streaming when the cache allows.

        Ensures the on-disk trace exists up front (one generation, not one
        per worker); with the trace cache disabled there is no stable path,
        so workers fall back to regenerating the records in memory.
        """
        if scale is None:
            scale = default_scale()
        try:
            path = str(spec.trace_path(scale))
        except RuntimeError:
            path = None
        return cls(workload=spec, scale=scale, path=path)

    @classmethod
    def for_path(cls, path) -> "TraceSource":
        """Source streaming an existing trace file."""
        return cls(path=str(path))

    @classmethod
    def for_records(cls, records) -> "TraceSource":
        """In-memory source (serial backend or small traces)."""
        return cls(records=tuple(records))

    def open(self):
        """Materialize the trace: a ``TraceFile``, list, or record tuple."""
        if self.path is not None:
            try:
                return open_trace(self.path)
            except (OSError, ValueError):
                pass  # cache evicted under us; fall through to regenerate
        if self.workload is not None:
            return self.workload.trace(self.scale)
        return self.records

    def identity(self) -> str:
        """Stable trace identity for checkpoint provenance keys."""
        if self.workload is not None:
            from repro.experiments.common import trace_identity

            return trace_identity(self.workload, self.scale)
        if self.path is not None:
            return hashlib.sha256(
                repr(("path", self.path)).encode()).hexdigest()[:16]
        return hashlib.sha256(
            repr(("records", self.records)).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ParallelPlan:
    """How many independent interval slices to cut a trace into."""

    #: Worker slices (K).  The trace is cut into K contiguous slices in
    #: exact mode; a sampling plan's intervals into K chunks in sampled
    #: mode.  Short traces may yield fewer actual slices.
    intervals: int = 4

    def __post_init__(self) -> None:
        if self.intervals < 1:
            raise ValueError("parallel plan needs at least one interval")

    def cache_key(self) -> tuple:
        """Stable tuple identifying this plan (result/checkpoint keys)."""
        return ("parallel", self.intervals)

    def describe(self) -> str:
        """One-line human description."""
        return f"checkpoint-parallel: {self.intervals} interval slice(s)"


@dataclass(frozen=True)
class IntervalSlice:
    """One contiguous worker slice of the trace (exact mode)."""

    index: int
    #: First record this worker measures.
    start: int
    #: One past the last record this worker measures.
    stop: int


def plan_slices(total_records: int, workers: int) -> list[IntervalSlice]:
    """Cut ``[0, total_records)`` into up to ``workers`` contiguous slices.

    Slices are near-equal (the remainder spreads one record at a time over
    the leading slices) and never empty; a trace shorter than ``workers``
    records yields fewer slices.
    """
    if total_records <= 0:
        return []
    workers = max(1, min(workers, total_records))
    base, remainder = divmod(total_records, workers)
    slices = []
    start = 0
    for index in range(workers):
        length = base + (1 if index < remainder else 0)
        slices.append(IntervalSlice(index=index, start=start,
                                    stop=start + length))
        start += length
    return slices


#: Checkpoint plan-key prefixes.  Exact boundary states depend only on
#: (model, trace, boundary record) — they are the serial detailed state —
#: so they key by boundary, shareable across K.  Sampled chunk lineages
#: additionally depend on the sampling plan and the chunking.
_EXACT_KEY = ("parallel", "exact")


def _sampled_key(plan: "ParallelPlan", sampling: SamplingPlan) -> tuple:
    return ("parallel", "sampled", plan.intervals, sampling.cache_key())


@dataclass(frozen=True)
class _SliceTask:
    """Everything one fan-out worker needs (module-level picklable)."""

    source: TraceSource
    config: PredictorConfig
    timing: TimingParams
    slice: IntervalSlice
    mode: str  # "exact" | "sampled"
    #: The sampling-plan intervals this worker runs (sampled mode only).
    chunk: tuple = ()
    sampling: SamplingPlan | None = None
    parallel_key: tuple = _EXACT_KEY
    checkpoint_dir: str | None = None
    trace_key: str | None = None
    engine_mode: str = "object"
    #: Exact boundary state passed inline when no store is attached.
    inline_state: dict | None = None
    is_last: bool = False
    #: Telemetry relay directory this worker streams its shard into
    #: (``None`` = relay off; the zero-cost default).
    relay_dir: str | None = None
    #: Relay run id (shard filenames key on it).
    relay_run: str = "run"
    #: Human label for status-board heartbeats (defaults to the slice).
    status_label: str = ""


@dataclass
class SliceOutcome:
    """What one worker slice produced."""

    index: int
    start: int
    stop: int
    #: Whether the worker resumed from a checkpoint (or started at 0);
    #: False means it fell back to functional warming.
    from_checkpoint: bool
    #: Measured counter delta of the slice (exact mode).
    delta: dict | None = None
    #: Per-interval measurements (sampled mode).
    measurements: list[IntervalMeasurement] = field(default_factory=list)
    #: Full finished result — only the last slice carries one (its end
    #: state is the whole run's end state).
    final: SimulationResult | None = None
    detailed_records: int = 0
    checkpoints_loaded: int = 0
    checkpoints_saved: int = 0
    #: CPU seconds this worker spent (open + warm + simulate), measured
    #: inside the worker with ``time.process_time`` so concurrent slices
    #: time-sharing a core do not inflate each other.  With one core per
    #: slice, the fan-out's wall clock converges to the slowest slice.
    seconds: float = 0.0


def _warm_start_state(sim: Simulator, cursor: _TraceCursor,
                      task: _SliceTask,
                      store: CheckpointStore | None) -> bool:
    """Bring ``sim`` to the slice start; True when the state was exact.

    Tries the inline state, then the store; on a miss (or a corrupt /
    foreign checkpoint) falls back to functionally warming the whole
    prefix — CI-grade, not exact, which the caller records.
    """
    start = task.slice.start
    if start == 0:
        return True  # the serial run also starts cold here
    state = task.inline_state
    if state is None and store is not None:
        state = store.load(sim.model_fingerprint(), task.trace_key,
                           _EXACT_KEY, start)
    if state is not None:
        try:
            sim.load_state_dict(state)
            cursor.skip_to(start)
            return True
        except ValueError:
            pass
    sim.warm_run(cursor.window(0, start))
    return False


def _slice_metrics(registry, outcome: SliceOutcome) -> None:
    """Fold one finished slice into a worker-session metrics registry.

    The counters/histograms here are the relay's mergeable view of
    :class:`~repro.metrics.counters.SimCounters` and checkpoint traffic:
    summed across worker shards, ``repro_slice_instructions_total`` and
    the ``repro_slice_records`` histogram totals telescope to the serial
    run's whole-trace numbers (exact lineage), which the round-trip tests
    assert.
    """
    if outcome.delta is not None:
        deltas = [outcome.delta]
    else:
        deltas = [m.delta for m in outcome.measurements]
    instructions = sum(d.get("instructions", 0) for d in deltas)
    branches = sum(d.get("branches", 0) for d in deltas)
    registry.counter(
        "repro_slice_instructions_total",
        "instructions simulated by this worker's slices",
    ).inc(instructions)
    registry.counter(
        "repro_slice_branches_total",
        "branches simulated by this worker's slices",
    ).inc(branches)
    registry.histogram(
        "repro_slice_records",
        "records stepped in detail per slice",
        buckets=_RECORD_BUCKETS,
    ).observe(outcome.detailed_records)
    registry.histogram(
        "repro_slice_seconds",
        "CPU seconds per slice",
    ).observe(outcome.seconds)
    loads = registry.counter(
        "repro_checkpoint_loads_total",
        "checkpoint loads by result",
        ("result",),
    )
    if outcome.checkpoints_loaded:
        loads.inc(outcome.checkpoints_loaded, result="hit")
    if not outcome.from_checkpoint:
        loads.inc(result="miss")
    if outcome.checkpoints_saved:
        registry.counter(
            "repro_checkpoint_saves_total",
            "checkpoint states saved",
        ).inc(outcome.checkpoints_saved)


def _run_slice(task: _SliceTask) -> SliceOutcome:
    """Fan-out worker body: simulate one slice from its warmed state.

    Module-level so it pickles under every backend.  Opens its own trace
    (streaming where possible — a worker decodes only the records it
    touches), resumes from checkpoint/inline state or functionally warms,
    then either steps its slice in detail (exact mode) or runs its chunk
    of the sampling plan through the shared interval core (sampled mode).

    With a relay attached (``task.relay_dir``) the worker streams its
    telemetry into a per-(run, worker, slice) shard and publishes a
    metrics snapshot at exit; with ``$REPRO_STATUS`` set it heartbeats
    progress onto the shared status board.  Both default off and cost
    nothing then — the hot loop sees only ``is None`` tests, and results
    are byte-identical either way (pinned by the relay parity tests).
    """
    session = None
    if task.relay_dir is not None:
        relay = TelemetryRelay(task.relay_dir, task.relay_run)
        session = relay.worker_session(f"w{task.slice.index}",
                                       task.slice.index)
    telemetry = session.telemetry if session is not None else None
    board = StatusBoard.from_env()
    label = task.status_label or f"slice {task.slice.index}"
    try:
        outcome = _slice_body(task, telemetry, board, label)
        if session is not None:
            _slice_metrics(session.registry, outcome)
        if board is not None:
            span = outcome.stop - outcome.start
            board.beat(label, "done", done=span, total=span,
                       instructions=outcome.detailed_records,
                       seconds=outcome.seconds)
        return outcome
    finally:
        if session is not None:
            session.close()


def _slice_body(task: _SliceTask, telemetry, board, label) -> SliceOutcome:
    """The slice simulation proper (observers threaded, both optional)."""
    started = time.process_time()
    trace = task.source.open()
    close = getattr(trace, "close", None)
    try:
        sim = Simulator(config=task.config, timing=task.timing,
                        engine_mode=task.engine_mode)
        cursor = _TraceCursor(trace)
        store = (CheckpointStore(task.checkpoint_dir)
                 if task.checkpoint_dir is not None else None)
        if task.mode == "sampled":
            if board is not None:
                board.beat(label, "measuring", done=0,
                           total=task.slice.stop - task.slice.start)
            if telemetry is not None:
                sim.telemetry = telemetry
                telemetry.attach(sim)
            measurements, detailed, loaded, saved = _execute_intervals(
                sim, cursor, task.chunk,
                telemetry=telemetry,
                store=store, trace_key=task.trace_key,
                plan_key=task.parallel_key,
            )
            final = sim.finish() if task.is_last else None
            return SliceOutcome(
                index=task.slice.index,
                start=task.slice.start,
                stop=task.slice.stop,
                from_checkpoint=(measurements[0].from_checkpoint
                                 if measurements else True),
                measurements=measurements,
                final=final,
                detailed_records=detailed,
                checkpoints_loaded=loaded,
                checkpoints_saved=saved,
                seconds=time.process_time() - started,
            )
        if board is not None and task.slice.start > 0:
            board.beat(label, "warming", done=0,
                       total=task.slice.stop - task.slice.start)
        exact = _warm_start_state(sim, cursor, task, store)
        if telemetry is not None:
            # Attached after warm start so the shard carries the slice's
            # own events, not a functionally-warmed prefix's.
            sim.telemetry = telemetry
            telemetry.attach(sim)
            telemetry.on_interval(sim._cycle, task.slice.index,
                                  task.slice.start, "measure")
        span = task.slice.stop - task.slice.start
        if board is not None:
            board.beat(label, "measuring", done=0, total=span)
        before = sim.counters.state_dict()
        cycle_before = sim._cycle
        stepped = 0
        for record in cursor.window(task.slice.start, task.slice.stop):
            sim.step(record)
            stepped += 1
            if board is not None and (stepped & _BEAT_MASK) == 0:
                board.beat(label, "measuring", done=stepped, total=span)
        delta = _diff_counters(before, sim.counters.state_dict())
        delta["cycles"] = sim._cycle - cycle_before
        if telemetry is not None:
            telemetry.on_interval(sim._cycle, task.slice.index,
                                  task.slice.stop, "end")
        final = sim.finish() if task.is_last else None
        return SliceOutcome(
            index=task.slice.index,
            start=task.slice.start,
            stop=task.slice.stop,
            from_checkpoint=exact,
            delta=delta,
            final=final,
            detailed_records=stepped,
            checkpoints_loaded=1 if (exact and task.slice.start > 0) else 0,
            seconds=time.process_time() - started,
        )
    finally:
        if close is not None:
            close()


@dataclass
class ParallelResult:
    """Everything a checkpoint-parallel run produces."""

    config_name: str
    plan: ParallelPlan
    mode: str  # "exact" | "sampled"
    backend: str
    total_records: int
    outcomes: list[SliceOutcome]
    #: Stitched whole-trace result.  Exact mode: the last slice's finished
    #: result — bit-identical to serial by checkpoint lineage.  Sampled
    #: mode: the extrapolated counters over the last chunk's structures.
    result: SimulationResult
    cpi: float
    #: 95% CI half-width of the CPI (0.0 in exact mode — it is not an
    #: estimate).
    cpi_ci: float
    bad_outcome_fraction: float
    bad_outcome_ci: float
    #: Records the checkpoint producer stepped in detail this run (0 when
    #: every boundary state came from the store — the warm-rerun case).
    produced_records: int
    #: Slices that had to fall back to functional warming (exact mode:
    #: nonzero means the run degraded to CI-grade, see ``exact``).
    warm_fallbacks: int
    checkpoints_loaded: int
    checkpoints_saved: int
    #: Sampled-mode estimates in :class:`SampledResult` form (``None`` in
    #: exact mode), for :func:`~repro.sampling.estimate.error_report`.
    sampled: SampledResult | None = None
    #: Wall-clock seconds of the checkpoint-producer pass (0.0 when every
    #: boundary came from the store, or in sampled mode).
    produce_seconds: float = 0.0

    @property
    def exact(self) -> bool:
        """True when every slice resumed from exact lineage (bit-identical)."""
        return self.mode == "exact" and self.warm_fallbacks == 0

    @property
    def critical_path_seconds(self) -> float:
        """Wall-clock lower bound with one core per slice.

        The producer pass is inherently serial; the fan-out completes when
        its slowest slice does (per-slice CPU seconds, so concurrent
        slices time-sharing a core do not count each other's runtime).
        On a host with >= K idle cores the observed wall time converges
        to this; the benchmark reports serial time over this path as the
        scaling figure so the measurement is a property of the
        decomposition, not of the core count of the machine running it.
        """
        slowest = max((o.seconds for o in self.outcomes), default=0.0)
        return self.produce_seconds + slowest

    def describe(self) -> str:
        """One-line human description of how the run executed."""
        return (f"{self.plan.describe()} [{self.mode}] over "
                f"{self.backend} backend — {len(self.outcomes)} slice(s), "
                f"{self.checkpoints_loaded} checkpoint(s) loaded, "
                f"{self.checkpoints_saved} saved, "
                f"{self.warm_fallbacks} warm fallback(s), "
                f"producer stepped {self.produced_records:,} record(s)")


def _produce_checkpoints(
    trace,
    slices: list[IntervalSlice],
    config: PredictorConfig,
    timing: TimingParams,
    store: CheckpointStore | None,
    trace_key: str | None,
    telemetry: "Telemetry | None",
) -> tuple[dict[int, dict], int, int]:
    """Ensure an exact state exists for every interior slice boundary.

    One detailed pass from record 0, snapshotting at each boundary —
    except that boundaries whose state already sits in ``store`` are
    *loaded* and skipped over (a seek, not a scan), so a warmed store
    makes this pass free.  States for a store-less run are returned
    inline, keyed by boundary record.

    Returns ``(inline_states, produced_records, saved)``.
    """
    boundaries = [s.start for s in slices[1:]]
    if not boundaries:
        return {}, 0, 0
    sim = Simulator(config=config, timing=timing)
    model = sim.model_fingerprint()
    use_store = store is not None and trace_key is not None
    cursor = _TraceCursor(trace)
    inline: dict[int, dict] = {}
    produced = 0
    saved = 0
    for boundary in boundaries:
        state = None
        if use_store:
            state = store.load(model, trace_key, _EXACT_KEY, boundary)
        if state is not None:
            try:
                sim.load_state_dict(state)
                cursor.skip_to(boundary)
                continue
            except ValueError:
                state = None  # foreign/stale: recompute from position
        for record in cursor.window(cursor.position, boundary):
            sim.step(record)
            produced += 1
        snapshot = sim.state_dict()
        if use_store:
            store.save(model, trace_key, _EXACT_KEY, boundary, snapshot)
            saved += 1
        else:
            inline[boundary] = snapshot
        if telemetry is not None:
            telemetry.on_interval(sim._cycle, boundaries.index(boundary),
                                  boundary, "produce")
    return inline, produced, saved


def _chunk_intervals(intervals: list[Interval],
                     workers: int) -> list[tuple[Interval, ...]]:
    """Partition a sampling plan's intervals into contiguous chunks."""
    workers = max(1, min(workers, len(intervals)))
    base, remainder = divmod(len(intervals), workers)
    chunks = []
    start = 0
    for index in range(workers):
        length = base + (1 if index < remainder else 0)
        chunks.append(tuple(intervals[start:start + length]))
        start += length
    return chunks


def run_parallel(
    source: TraceSource,
    config: PredictorConfig = ZEC12_CONFIG_2,
    timing: TimingParams = DEFAULT_TIMING,
    plan: ParallelPlan | None = None,
    sampling: SamplingPlan | None = None,
    *,
    checkpoint_store: CheckpointStore | None = None,
    trace_key: str | None = None,
    engine_mode: str = "object",
    backend: "str | None" = None,
    jobs: int | None = None,
    telemetry: "Telemetry | None" = None,
    relay: TelemetryRelay | None = None,
    status_label: str | None = None,
) -> ParallelResult:
    """Simulate ``source`` across K parallel interval slices and stitch.

    Exact mode (``sampling is None``): produce/load exact boundary
    checkpoints, fan the slices out, and return a result bit-identical to
    the serial run.  Sampled mode: run ``sampling``'s intervals in K
    chunks and return CI-bounded estimates (also under ``.sampled``).

    ``backend`` names a :mod:`repro.experiments.backends` backend
    (default: ``$REPRO_BACKEND`` or ``process``); ``jobs`` caps in-flight
    workers (default: one per slice).  ``checkpoint_store`` plus a stable
    ``trace_key`` (default: ``source.identity()``) persist boundary/chunk
    states across runs; without a store, exact mode ships the producer's
    states to the workers inline.

    ``telemetry`` observes the orchestrator: ``interval`` events with
    phases ``produce`` (a boundary state snapshotted) and ``end`` (a slice
    stitched).  Per-record hooks do not cross process boundaries, but a
    ``relay`` carries worker-side telemetry home: each slice streams its
    events into a per-worker shard under the relay directory, the
    orchestrator's own events land in an :data:`ORCHESTRATOR` shard, and a
    manifest names every expected file so
    :func:`~repro.telemetry.distributed.aggregate` can merge the fan-out
    into one Chrome trace with a lane per worker.  With ``$REPRO_STATUS``
    set, slices additionally heartbeat progress onto the status board
    (``status_label`` prefixes their entries).
    """
    # Deferred: repro.experiments.backends is cycle-free, but importing it
    # at module scope would initialize repro.experiments while
    # repro.sampling is still mid-import.
    from repro.experiments.backends import resolve_backend

    if plan is None:
        plan = ParallelPlan()
    chosen = resolve_backend(backend)
    board = StatusBoard.from_env()
    label = status_label or "parallel"
    # With a relay but no caller telemetry, the orchestrator still records
    # its produce/stitch markers so the merged trace has a pid-0 lane.
    if relay is not None and telemetry is None:
        telemetry = _Telemetry(tracer=_Tracer())
    if trace_key is None and checkpoint_store is not None:
        trace_key = source.identity()
    trace = source.open()
    close = getattr(trace, "close", None)
    try:
        total = len(trace)
        if not total:
            raise ValueError("cannot parallel-simulate an empty trace")
        mode = "sampled" if sampling is not None else "exact"
        if mode == "sampled":
            intervals = sampling.intervals(total)
            if not intervals:
                raise ValueError(
                    f"trace of {total} records is shorter than one "
                    f"warmup+interval footprint of the sampling plan"
                )
            chunks = _chunk_intervals(intervals, plan.intervals)
            parallel_key = _sampled_key(plan, sampling)
            tasks = [
                _SliceTask(
                    source=source, config=config, timing=timing,
                    slice=IntervalSlice(index=i, start=chunk[0].warm_start,
                                        stop=chunk[-1].stop),
                    mode="sampled", chunk=chunk, sampling=sampling,
                    parallel_key=parallel_key,
                    checkpoint_dir=(str(checkpoint_store.directory)
                                    if checkpoint_store is not None else None),
                    trace_key=trace_key, engine_mode=engine_mode,
                    is_last=(i == len(chunks) - 1),
                    relay_dir=(str(relay.directory)
                               if relay is not None else None),
                    relay_run=relay.run_id if relay is not None else "run",
                    status_label=f"{label}/s{i}" if status_label else "",
                )
                for i, chunk in enumerate(chunks)
            ]
            inline_states: dict[int, dict] = {}
            produced = 0
            produced_saved = 0
            produce_seconds = 0.0
        else:
            slices = plan_slices(total, plan.intervals)
            if board is not None and len(slices) > 1:
                board.beat(label, "warming", done=0, total=total)
            produce_started = time.perf_counter()
            inline_states, produced, produced_saved = _produce_checkpoints(
                trace, slices, config, timing, checkpoint_store, trace_key,
                telemetry,
            )
            produce_seconds = time.perf_counter() - produce_started
            tasks = [
                _SliceTask(
                    source=source, config=config, timing=timing,
                    slice=s, mode="exact",
                    checkpoint_dir=(str(checkpoint_store.directory)
                                    if checkpoint_store is not None else None),
                    trace_key=trace_key, engine_mode=engine_mode,
                    inline_state=inline_states.get(s.start),
                    is_last=(s.index == len(slices) - 1),
                    relay_dir=(str(relay.directory)
                               if relay is not None else None),
                    relay_run=relay.run_id if relay is not None else "run",
                    status_label=(f"{label}/s{s.index}"
                                  if status_label else ""),
                )
                for s in slices
            ]
    finally:
        if close is not None:
            close()

    workers = len(tasks) if jobs is None else max(1, jobs)
    sweep_labels = [t.status_label for t in tasks if t.status_label]
    sweep_labels.append(label)
    with shutdown_sweep(board, sweep_labels):
        outcomes = chosen.map(_run_slice, tasks, workers)
    outcomes.sort(key=lambda o: o.index)
    if board is not None:
        board.beat(label, "stitching", done=total, total=total)
    if telemetry is not None:
        for outcome in outcomes:
            telemetry.on_interval(0.0, outcome.index, outcome.stop, "end")
    if relay is not None:
        shard = relay.shard_path(ORCHESTRATOR, 0)
        if telemetry is not None and telemetry.tracer is not None:
            telemetry.tracer.write_jsonl(shard)
        else:
            shard.write_text("")
        expected = [relay.shard_path(f"w{t.slice.index}",
                                     t.slice.index).name for t in tasks]
        expected.append(shard.name)
        relay.write_manifest(expected)
    REGISTRY.counter(
        "repro_parallel_runs_total",
        "checkpoint-parallel runs by mode and backend",
        ("mode", "backend"),
    ).inc(mode=mode, backend=chosen.name)
    if produced:
        REGISTRY.counter(
            "repro_parallel_produced_records_total",
            "records the checkpoint producer stepped in detail",
        ).inc(produced)
    slice_seconds = REGISTRY.histogram(
        "repro_parallel_slice_seconds",
        "per-slice worker CPU seconds",
    )
    for outcome in outcomes:
        slice_seconds.observe(outcome.seconds)

    last = outcomes[-1]
    warm_fallbacks = sum(1 for o in outcomes if not o.from_checkpoint)
    loaded = sum(o.checkpoints_loaded for o in outcomes)
    saved = produced_saved + sum(o.checkpoints_saved for o in outcomes)

    if mode == "sampled":
        measurements = [m for o in outcomes for m in o.measurements]
        cpi = ratio_estimate([m.cycles for m in measurements],
                             [m.instructions for m in measurements])
        bad_fraction = ratio_estimate(
            [m.bad_outcomes for m in measurements],
            [m.branches for m in measurements])
        _, cpi_ci = confidence_interval(
            [m.cpi for m in measurements if m.instructions])
        _, bad_ci = confidence_interval(
            [m.bad_outcome_fraction for m in measurements if m.branches])
        counters = _extrapolate(measurements, total, cpi)
        raw = last.final
        result = SimulationResult(
            config_name=raw.config_name,
            counters=counters,
            search_stats=raw.search_stats,
            btbp_stats=raw.btbp_stats,
            btb2_stats=raw.btb2_stats,
            preload_stats=raw.preload_stats,
            icache_stats=raw.icache_stats,
        )
        sampled = SampledResult(
            config_name=raw.config_name,
            plan=sampling,
            total_records=total,
            measurements=measurements,
            result=result,
            cpi=cpi,
            cpi_ci=cpi_ci,
            bad_outcome_fraction=bad_fraction,
            bad_outcome_ci=bad_ci,
            measured_instructions=sum(m.instructions for m in measurements),
            detailed_records=sum(o.detailed_records for o in outcomes),
            checkpoints_loaded=loaded,
            checkpoints_saved=saved,
        )
        return ParallelResult(
            config_name=raw.config_name, plan=plan, mode=mode,
            backend=chosen.name, total_records=total, outcomes=outcomes,
            result=result, cpi=cpi, cpi_ci=cpi_ci,
            bad_outcome_fraction=bad_fraction, bad_outcome_ci=bad_ci,
            produced_records=produced, warm_fallbacks=warm_fallbacks,
            checkpoints_loaded=loaded, checkpoints_saved=saved,
            sampled=sampled,
        )

    # Exact mode: the last slice's finished result is the serial result
    # (its loaded state carried the cumulative counters of every earlier
    # record), so bit-identity needs no float re-assembly.  The per-slice
    # deltas feed the same ratio-of-sums estimator as sampled mode; with
    # exact lineage the integer sums telescope to the serial totals, which
    # tests assert against the final counters.
    result = last.final
    return ParallelResult(
        config_name=result.config_name, plan=plan, mode=mode,
        backend=chosen.name, total_records=total, outcomes=outcomes,
        result=result,
        cpi=result.cpi,
        cpi_ci=0.0 if warm_fallbacks == 0 else ratio_ci_of(outcomes),
        bad_outcome_fraction=result.counters.bad_outcome_fraction,
        bad_outcome_ci=0.0,
        produced_records=produced, warm_fallbacks=warm_fallbacks,
        checkpoints_loaded=loaded, checkpoints_saved=saved,
        produce_seconds=produce_seconds,
    )


def ratio_ci_of(outcomes: list[SliceOutcome]) -> float:
    """CPI CI half-width over per-slice deltas (degraded exact runs only)."""
    cpis = []
    for outcome in outcomes:
        delta = outcome.delta or {}
        instructions = delta.get("instructions", 0)
        if instructions:
            cpis.append(delta.get("cycles", 0.0) / instructions)
    _, halfwidth = confidence_interval(cpis)
    return halfwidth


def stitch_deltas(outcomes: list[SliceOutcome]) -> dict:
    """Sum the per-slice counter deltas into one whole-trace delta.

    With exact lineage the integer fields equal the final counters of the
    last slice (the sums telescope); float cycles may differ from the
    final clock by associativity only.  Exposed for tests and the
    conformance gate.
    """
    merged: dict = {}
    for outcome in outcomes:
        for key, value in (outcome.delta or {}).items():
            if isinstance(value, dict):
                bucket = merged.setdefault(key, {})
                for name, amount in value.items():
                    bucket[name] = bucket.get(name, 0) + amount
            else:
                merged[key] = merged.get(key, 0) + value
    return merged
