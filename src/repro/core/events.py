"""Event records exchanged between the predictor pipeline and the core model.

These small immutable objects are the vocabulary of the simulator:
predictions produced by the lookahead search, miss reports feeding the BTB2
trackers, and resolved-branch outcomes flowing back for training.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.btb.entry import BTBEntry


class PredictionLevel(enum.Enum):
    """Which first-level structure supplied a prediction."""

    BTB1 = "btb1"
    BTBP = "btbp"


@dataclass(frozen=True, slots=True)
class Prediction:
    """A dynamic prediction emitted by the lookahead search pipeline.

    ``ready_cycle`` is the cycle at which the prediction has been broadcast
    to instruction fetch/decode (the end of the pipeline of Table 1); a
    branch reaching decode before then cannot use it.
    """

    branch_address: int
    taken: bool
    target: int | None
    level: PredictionLevel
    ready_cycle: int
    entry: BTBEntry
    from_mru: bool = False
    used_pht: bool = False
    used_ctb: bool = False


@dataclass(frozen=True, slots=True)
class MissReport:
    """A perceived first-level miss (3.4), reported to the BTB2 logic.

    ``search_address`` is the starting search address of the first empty
    search — the address the miss "is reported at" in Table 2.
    """

    search_address: int
    cycle: int


class OutcomeKind(enum.Enum):
    """Taxonomy of dynamic branch outcomes (Figure 4)."""

    #: Dynamically predicted, direction and target both correct.
    GOOD_DYNAMIC = "good_dynamic"
    #: Surprise branch, guessed correctly, resolved not-taken (no penalty).
    GOOD_SURPRISE = "good_surprise"
    #: Dynamically guessed taken, resolved not-taken.
    MISPREDICT_TAKEN_NOT_TAKEN = "bad_taken_resolved_not_taken"
    #: Dynamically guessed not-taken, resolved taken.
    MISPREDICT_NOT_TAKEN_TAKEN = "bad_not_taken_resolved_taken"
    #: Dynamically guessed taken, resolved taken, wrong target.
    MISPREDICT_WRONG_TARGET = "bad_wrong_target"
    #: Bad surprise: first time this branch is seen.
    SURPRISE_COMPULSORY = "surprise_compulsory"
    #: Bad surprise: prediction existed but was not available in time.
    SURPRISE_LATENCY = "surprise_latency"
    #: Bad surprise: seen before, not a latency miss — a capacity miss.
    SURPRISE_CAPACITY = "surprise_capacity"

    @property
    def is_bad(self) -> bool:
        """True for outcomes that incur a performance penalty (5.1)."""
        return self not in (OutcomeKind.GOOD_DYNAMIC, OutcomeKind.GOOD_SURPRISE)

    @property
    def is_surprise(self) -> bool:
        """True for bad *surprise* outcomes."""
        return self in (
            OutcomeKind.SURPRISE_COMPULSORY,
            OutcomeKind.SURPRISE_LATENCY,
            OutcomeKind.SURPRISE_CAPACITY,
        )

    @property
    def is_mispredict(self) -> bool:
        """True for dynamic misprediction outcomes."""
        return self in (
            OutcomeKind.MISPREDICT_TAKEN_NOT_TAKEN,
            OutcomeKind.MISPREDICT_NOT_TAKEN_TAKEN,
            OutcomeKind.MISPREDICT_WRONG_TARGET,
        )
