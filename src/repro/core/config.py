"""Predictor configurations, including the paper's Table 3.

:class:`PredictorConfig` captures every architected choice that the paper
either fixes (zEC12 geometry) or sweeps (Figures 5-7), plus the ablation
switches called out in DESIGN.md §5.  The three Table 3 configurations are
provided as module constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.btb.btb1 import BTB1_ROWS, BTB1_WAYS
from repro.btb.btb2 import BTB2_ROWS, BTB2_WAYS
from repro.btb.btbp import BTBP_ROWS, BTBP_WAYS
from repro.btb.ctb import CTB_ENTRIES
from repro.btb.fit import FIT_ENTRIES
from repro.btb.pht import PHT_ENTRIES
from repro.btb.surprise import SURPRISE_BHT_ENTRIES


class FilterMode(enum.Enum):
    """What happens to a perceived BTB1 miss without an I-cache miss (3.5)."""

    #: Implemented design: limit to a 4-row (128 B) partial BTB2 search.
    PARTIAL = "partial"
    #: Alternative: prevent filtered misses from accessing the BTB2 at all.
    BLOCK = "block"
    #: Ablation: no filtering; every perceived miss gets a full-block search.
    OFF = "off"


class ExclusivityMode(enum.Enum):
    """BTB1/BTB2 duplication management (3.3)."""

    #: Implemented design: hits made LRU, victims installed MRU in LRU column.
    SEMI_EXCLUSIVE = "semi_exclusive"
    #: Ablation: inclusive — transfer hits stay MRU, no victim write-back
    #: (stale second-level content, as the paper warns).
    INCLUSIVE = "inclusive"
    #: Ablation: victims are dropped instead of written back.
    NO_VICTIM_WRITEBACK = "no_victim_writeback"


@dataclass(frozen=True)
class PredictorConfig:
    """Complete static configuration of the branch prediction hierarchy."""

    # First level.
    btb1_rows: int = BTB1_ROWS
    btb1_ways: int = BTB1_WAYS
    btbp_rows: int = BTBP_ROWS
    btbp_ways: int = BTBP_WAYS
    btbp_enabled: bool = True
    pht_entries: int = PHT_ENTRIES
    ctb_entries: int = CTB_ENTRIES
    fit_entries: int = FIT_ENTRIES
    surprise_bht_entries: int = SURPRISE_BHT_ENTRIES

    # Second level; ``btb2_enabled = False`` disables it entirely.
    btb2_enabled: bool = True
    btb2_rows: int = BTB2_ROWS
    btb2_ways: int = BTB2_WAYS

    # Miss detection (3.4): "reporting a BTB1 miss after 4 searches without
    # predictions, up to 128 bytes, provides the best results".
    miss_search_limit: int = 4

    # BTB2 access machinery (3.5-3.7).
    filter_mode: FilterMode = FilterMode.PARTIAL
    partial_search_rows: int = 4
    tracker_count: int = 3
    steering_enabled: bool = True
    ordering_table_sets: int = 256
    ordering_table_ways: int = 2

    # Exclusivity protocol (3.3).
    exclusivity: ExclusivityMode = ExclusivityMode.SEMI_EXCLUSIVE

    # Extensions beyond the implemented zEC12 design, both described by the
    # paper (3.4 "alternative ways of defining BTB1 misses" / section 6
    # future work).  Off by default.
    #: Additionally report a BTB1 miss when a statically-guessed-taken
    #: surprise branch reaches decode (later, less speculative signal).
    decode_miss_reporting: bool = False
    #: Follow one cross-block branch target per bulk transfer into a new
    #: full-block search (bounded multi-block transfer).
    multi_block_transfer: bool = False

    # Free-form label for reports.
    name: str = field(default="custom", compare=False)

    def __post_init__(self) -> None:
        if self.miss_search_limit < 1:
            raise ValueError("miss_search_limit must be at least 1")
        if self.tracker_count < 0:
            raise ValueError("tracker_count must be non-negative")
        if self.partial_search_rows < 1:
            raise ValueError("partial_search_rows must be at least 1")

    @property
    def btb1_capacity(self) -> int:
        """Branch capacity of the BTB1."""
        return self.btb1_rows * self.btb1_ways

    @property
    def btb2_capacity(self) -> int:
        """Branch capacity of the BTB2 (0 when disabled)."""
        return self.btb2_rows * self.btb2_ways if self.btb2_enabled else 0

    def with_(self, **changes) -> "PredictorConfig":
        """Derived configuration with ``changes`` applied."""
        return replace(self, **changes)


#: Table 3, configuration 1: baseline, no BTB2.
ZEC12_CONFIG_1 = PredictorConfig(btb2_enabled=False, name="1. No BTB2")

#: Table 3, configuration 2: the implemented design, 24k BTB2 enabled.
ZEC12_CONFIG_2 = PredictorConfig(name="2. BTB2 enabled")

#: Table 3, configuration 3: unrealistically large low-latency 24k BTB1.
ZEC12_CONFIG_3 = PredictorConfig(
    btb1_rows=BTB2_ROWS,
    btb1_ways=BTB2_WAYS,
    btb2_enabled=False,
    name="3. Unrealistically large BTB1",
)

TABLE3_CONFIGS = (ZEC12_CONFIG_1, ZEC12_CONFIG_2, ZEC12_CONFIG_3)
