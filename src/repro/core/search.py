"""Asynchronous lookahead branch prediction search pipeline.

Implements section 3.2's search process and its variable throughput, plus
the BTB1 miss detection of section 3.4 (Table 2).

The search logic walks 32-byte rows asynchronously from instruction fetch.
Upon a restart both start at the same address; the searcher then either
re-indexes to the target of each predicted-taken branch, continues
sequentially past predicted-not-taken branches, or — finding nothing —
walks sequential rows at an average 16 bytes per cycle.

Timing rules reproduced from the paper (3.2):

* one prediction per cycle for a single-taken-branch loop;
* one prediction every 2 cycles under FIT control;
* one taken prediction every 3 cycles from the MRU BTB1 column;
* otherwise one taken prediction every 4 cycles;
* not-taken predictions: 2 per 5 cycles when two come from one row,
  otherwise one every 4 cycles;
* sequential search with no predictions: 16 bytes/cycle average
  (3 cycles x 32 B then 3 dead re-index cycles) => 2 cycles per empty row;
* a prediction is broadcast (usable by decode) 4 cycles after its search's
  b0 (Table 1, b4 broadcast stage);
* a BTB1 miss is detected at the b3 cycle of the ``miss_limit``-th
  consecutive empty search and reported at the *starting* search address
  (Table 2).

The driver (:class:`repro.engine.simulator.Simulator`) advances the searcher
branch-to-branch along the executed path; see DESIGN.md §7 for the wrong-path
simplification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.events import MissReport, Prediction, PredictionLevel
from repro.core.hierarchy import FirstLevelPredictor, RowHit
from repro.isa.address import ROW_BYTES, next_row, row_address

#: b0 -> b4 broadcast latency of the 7-stage pipeline (Table 1).
BROADCAST_LATENCY = 4
#: b0 -> b3 miss-detection latency (Table 2).
MISS_DETECT_LATENCY = 3
#: Cycles per empty sequential 32-byte search (16 B/cycle average).
SEQUENTIAL_CYCLES_PER_ROW = 2

#: Per-prediction re-index costs (cycles until the next search's b0).
COST_SINGLE_BRANCH_LOOP = 1
COST_FIT = 2
COST_TAKEN_MRU = 3
COST_TAKEN_NON_MRU = 4
COST_NOT_TAKEN_SECOND_IN_ROW = 1  # second of "2 every 5 cycles"
COST_NOT_TAKEN = 4


@dataclass(slots=True)
class SearchOutcome:
    """Result of advancing the searcher to one dynamic branch."""

    #: Prediction found for the branch, or ``None`` (surprise at decode).
    prediction: Prediction | None
    #: Perceived BTB1 misses emitted while covering the gap, in order.
    miss_reports: list[MissReport]


class LookaheadSearch:
    """Search-pipeline state machine with Table 1/2 timing."""

    def __init__(
        self,
        hierarchy: FirstLevelPredictor,
        miss_limit: int = 4,
        on_miss: Callable[[MissReport], None] | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.miss_limit = miss_limit
        self.on_miss = on_miss
        self.cycle = 0
        self.search_address = 0
        self._consecutive_empty = 0
        self._first_empty_address = 0
        self._last_taken_address: int | None = None
        self._last_not_taken_row: int | None = None
        self.searches = 0
        self.empty_searches = 0
        self.predictions_made = 0
        self.miss_reports_made = 0
        #: Optional :class:`repro.audit.Auditor`; ``None`` = no checking.
        self.audit = None
        #: Optional :class:`repro.telemetry.Telemetry`; ``None`` = no tracing.
        self.telemetry = None
        #: Optional lockstep observer (:mod:`repro.oracle.differential`);
        #: ``None`` = no observation.
        self.probe = None

    # -- control ------------------------------------------------------------

    def restart(self, address: int, cycle: int) -> None:
        """Reset the searcher after a pipeline restart (3.2).

        The only event allowed to move the search clock backward: the
        searcher may have run ahead of the restart point.
        """
        self.search_address = address
        self.cycle = cycle
        self._consecutive_empty = 0
        self._first_empty_address = address
        self._last_taken_address = None
        self._last_not_taken_row = None
        if self.audit is not None:
            self.audit.on_search_restart(self, address, cycle)
        if self.probe is not None:
            self.probe.on_search_restart(address, cycle)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of the searcher's position, pattern state and counters."""
        return {
            "cycle": self.cycle,
            "search_address": self.search_address,
            "consecutive_empty": self._consecutive_empty,
            "first_empty_address": self._first_empty_address,
            "last_taken_address": self._last_taken_address,
            "last_not_taken_row": self._last_not_taken_row,
            "searches": self.searches,
            "empty_searches": self.empty_searches,
            "predictions_made": self.predictions_made,
            "miss_reports_made": self.miss_reports_made,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self.cycle = state["cycle"]
        self.search_address = state["search_address"]
        self._consecutive_empty = state["consecutive_empty"]
        self._first_empty_address = state["first_empty_address"]
        self._last_taken_address = state["last_taken_address"]
        self._last_not_taken_row = state["last_not_taken_row"]
        self.searches = state["searches"]
        self.empty_searches = state["empty_searches"]
        self.predictions_made = state["predictions_made"]
        self.miss_reports_made = state["miss_reports_made"]

    # -- main advance --------------------------------------------------------

    def advance_to_branch(self, branch_address: int) -> SearchOutcome:
        """Search from the current position up to ``branch_address``.

        Covers the sequential gap row by row (emitting perceived-miss
        reports), then searches the branch's own row.  Returns the prediction
        found for exactly ``branch_address`` — or ``None`` when the first
        level does not hold it (the branch will be a surprise at decode; the
        caller restarts the searcher if the surprise redirects the pipeline).

        Three no-prediction shapes are distinguished:

        * the searcher already walked past the branch's row on this path
          segment without predicting (dense not-taken surprise code): no new
          search happens — the row was covered and found empty once;
        * the row probe finds nothing at/after the search point: one more
          empty search is counted and the searcher moves to the next row,
          just as the hardware pipeline would continue sequentially;
        * the row probe finds only a *later* branch: the searcher holds its
          position (that prediction is still pending from its perspective)
          and the demanded branch is simply a surprise.
        """
        reports: list[MissReport] = []
        if row_address(branch_address) < row_address(self.search_address):
            return SearchOutcome(prediction=None, miss_reports=[])
        self._walk_gap(branch_address, reports)
        hit = self.hierarchy.first_hit_in_row(self.search_address)
        if hit is None:
            self.searches += 1
            self.empty_searches += 1
            self._note_empty_search(reports)
            self.cycle += SEQUENTIAL_CYCLES_PER_ROW
            self.search_address = next_row(self.search_address)
            return SearchOutcome(prediction=None, miss_reports=self._flush(reports))
        if hit.entry.address != branch_address:
            return SearchOutcome(prediction=None, miss_reports=self._flush(reports))
        prediction = self._predict(hit)
        return SearchOutcome(prediction=prediction, miss_reports=self._flush(reports))

    def run_ahead(self, until_cycle: int) -> list[MissReport]:
        """Free-run sequential searches until ``until_cycle``.

        The hardware searcher keeps searching ahead of decode until a
        restart arrives; in cold code this is what detects BTB1 misses *and
        starts the BTB2 transfer* before the surprise branch even resolves.
        The simulator calls this when it knows a restart is coming (a bad
        surprise) to let the searcher cover the rows — and report the
        perceived misses — it would have covered in that window.

        Run-ahead stops early at the first row holding any first-level
        entry: past that point the hardware would follow a speculative
        prediction down a path this trace-driven model cannot replay
        (DESIGN.md §7).
        """
        reports: list[MissReport] = []
        while self.cycle + SEQUENTIAL_CYCLES_PER_ROW <= until_cycle:
            if self.hierarchy.hits_in_row(self.search_address):
                break
            self.searches += 1
            self.empty_searches += 1
            self._note_empty_search(reports)
            self.cycle += SEQUENTIAL_CYCLES_PER_ROW
            self.search_address = next_row(self.search_address)
        return self._flush(reports)

    def _walk_gap(self, branch_address: int, reports: list[MissReport]) -> None:
        """Sequentially search the (branch-free) rows before the branch's row."""
        target_row = row_address(branch_address)
        guard = 0
        while row_address(self.search_address) != target_row:
            self.searches += 1
            self.empty_searches += 1
            self._note_empty_search(reports)
            self.cycle += SEQUENTIAL_CYCLES_PER_ROW
            self.search_address = next_row(self.search_address)
            guard += 1
            if guard > 1 << 20:  # pragma: no cover - defensive
                raise RuntimeError("runaway sequential search")

    def _note_empty_search(self, reports: list[MissReport]) -> None:
        """Count one empty search; emit a miss report at the limit.

        Timing note (Table 2): callers invoke this *before* charging the
        row's ``SEQUENTIAL_CYCLES_PER_ROW``, which is deliberate — at that
        point ``self.cycle`` is the b0 cycle of the empty search just
        performed, so the report lands on its b3 cycle
        (``cycle + MISS_DETECT_LATENCY``).  The 2 sequential cycles per row
        are b0-to-b0 *throughput*, not part of the in-pipeline detection
        latency; charging them first would stamp reports 2 cycles late.
        ``tests/core/test_search_timing.py`` pins this against Table 2.
        """
        if self._consecutive_empty == 0:
            self._first_empty_address = self.search_address
        self._consecutive_empty += 1
        if self._consecutive_empty >= self.miss_limit:
            reports.append(
                MissReport(
                    search_address=self._first_empty_address,
                    cycle=self.cycle + MISS_DETECT_LATENCY,
                )
            )
            self.miss_reports_made += 1
            self._consecutive_empty = 0

    def _predict(self, hit: RowHit) -> Prediction:
        """Emit a prediction for ``hit`` and re-index the searcher."""
        self.searches += 1
        self._consecutive_empty = 0
        resolution = self.hierarchy.resolve_content(hit.entry)
        cost = self._prediction_cost(hit, resolution.taken)
        ready = self.cycle + BROADCAST_LATENCY
        prediction = Prediction(
            branch_address=hit.entry.address,
            taken=resolution.taken,
            target=resolution.target,
            level=hit.level,
            ready_cycle=ready,
            entry=hit.entry,
            from_mru=hit.from_mru,
            used_pht=resolution.used_pht,
            used_ctb=resolution.used_ctb,
        )
        self.predictions_made += 1
        if self.telemetry is not None:
            self.telemetry.on_prediction(self.cycle, prediction)
        if self.probe is not None:
            # Fired while ``search_address`` is still the probed address and
            # before the FIT trains, so an observer can replay the row probe
            # and the prediction's side effects from identical pre-state.
            self.probe.on_predict(self.search_address, prediction)
        self.cycle += cost
        if resolution.taken and resolution.target is not None:
            self._last_taken_address = hit.entry.address
            self._last_not_taken_row = None
            self.hierarchy.fit.train(
                hit.entry.address, self.hierarchy.btb1.row_index(resolution.target)
            )
            self.search_address = resolution.target
        else:
            self._last_taken_address = None
            self._last_not_taken_row = row_address(hit.entry.address)
            self.search_address = hit.entry.address + 2
        return prediction

    def _prediction_cost(self, hit: RowHit, taken: bool) -> int:
        """Re-index cost in cycles for this prediction (3.2 throughput rules)."""
        address = hit.entry.address
        if taken:
            if self._last_taken_address == address:
                return COST_SINGLE_BRANCH_LOOP
            if self.hierarchy.fit.probe(address):
                return COST_FIT
            if hit.from_mru and hit.level is PredictionLevel.BTB1:
                return COST_TAKEN_MRU
            return COST_TAKEN_NON_MRU
        if self._last_not_taken_row == row_address(address):
            return COST_NOT_TAKEN_SECOND_IN_ROW
        return COST_NOT_TAKEN

    def _flush(self, reports: list[MissReport]) -> list[MissReport]:
        if self.telemetry is not None:
            for report in reports:
                self.telemetry.on_miss_report(report)
        if self.on_miss is not None:
            for report in reports:
                self.on_miss(report)
        return reports
