"""First-level predictor wiring and the inter-level move protocol.

This module binds the structures of section 3.1 into the first-level branch
predictor and implements the content-movement protocol of sections 3.1/3.3:

* predictions are made from the BTB1 and BTBP, read in parallel;
* "Content is moved into the BTB1 upon making a branch prediction from the
  BTBP.  At that time the replaced BTB1 entry (the BTB1 victim) is moved
  into the BTBP and the second level Branch Target Buffer (BTB2)";
* surprise branches that resolve taken are installed into the BTBP *and*
  duplicated into the BTB2;
* bulk-transfer hits from the BTB2 are written into the BTBP.

The BTB2 itself is owned by the preload engine; the hierarchy holds a
reference so victim/surprise writes can flow down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btb.btb1 import BTB1
from repro.btb.btb2 import BTB2
from repro.btb.btbp import BTBP, WriteSource
from repro.btb.ctb import CTB
from repro.btb.entry import BTBEntry, WEAK_TAKEN
from repro.btb.fit import FIT
from repro.btb.history import PathHistory
from repro.btb.pht import PHT
from repro.btb.surprise import SurpriseBHT
from repro.core.config import ExclusivityMode, PredictorConfig
from repro.core.events import PredictionLevel
from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord


@dataclass(frozen=True, slots=True)
class RowHit:
    """One branch found by a row search, with its source structure."""

    entry: BTBEntry
    level: PredictionLevel
    from_mru: bool


@dataclass(frozen=True, slots=True)
class Resolution:
    """Content decision for a found branch: direction and target."""

    taken: bool
    target: int | None
    used_pht: bool
    used_ctb: bool


class FirstLevelPredictor:
    """BTB1 + BTBP + PHT + CTB + FIT + surprise BHT, wired per the paper."""

    def __init__(self, config: PredictorConfig, btb2: BTB2 | None = None) -> None:
        self.config = config
        self.btb1 = BTB1(rows=config.btb1_rows, ways=config.btb1_ways)
        self.btbp = (
            BTBP(rows=config.btbp_rows, ways=config.btbp_ways)
            if config.btbp_enabled
            else None
        )
        self.pht = PHT(entries=config.pht_entries)
        self.ctb = CTB(entries=config.ctb_entries)
        self.fit = FIT(entries=config.fit_entries)
        self.surprise_bht = SurpriseBHT(entries=config.surprise_bht_entries)
        self.history = PathHistory()
        self.btb2 = btb2
        self.btbp_promotions = 0
        self.surprise_installs = 0

    # -- search / prediction ----------------------------------------------

    def hits_in_row(self, address: int) -> list[RowHit]:
        """Branches found at or after ``address`` within its 32-byte row.

        BTB1 and BTBP are read in parallel; when a branch is duplicated the
        BTB1 copy wins (it is the trained, architected copy).  Results come
        back in ascending address order — the order the search pipeline
        reports predictions.
        """
        found: dict[int, RowHit] = {}
        if self.btbp is not None:
            for entry in self.btbp.search_row(address):
                if entry.address >= address:
                    found[entry.address] = RowHit(
                        entry, PredictionLevel.BTBP, self.btbp.is_mru(entry)
                    )
        for entry in self.btb1.search_row(address):
            if entry.address >= address:
                found[entry.address] = RowHit(
                    entry, PredictionLevel.BTB1, self.btb1.is_mru(entry)
                )
        return [found[key] for key in sorted(found)]

    def first_hit_in_row(self, address: int) -> RowHit | None:
        """The first (lowest-address) hit at or after ``address`` in its row."""
        hits = self.hits_in_row(address)
        return hits[0] if hits else None

    def resolve_content(self, entry: BTBEntry) -> Resolution:
        """Direction/target decision for a found branch.

        The bimodal counter decides unless the entry's ``use_pht`` bit is set
        and the PHT tag matches; the stored target is used unless ``use_ctb``
        is set and the CTB tag matches (3.1).
        """
        taken = entry.predict_taken
        used_pht = False
        if entry.use_pht:
            pht_direction = self.pht.predict(entry.address, self.history)
            if pht_direction is not None:
                taken = pht_direction
                used_pht = True
        target: int | None = None
        used_ctb = False
        if taken:
            target = entry.target
            if entry.trust_ctb:
                ctb_target = self.ctb.predict(entry.address, self.history)
                if ctb_target is not None:
                    target = ctb_target
                    used_ctb = True
        return Resolution(taken=taken, target=target, used_pht=used_pht, used_ctb=used_ctb)

    def use_prediction(self, hit: RowHit) -> BTBEntry | None:
        """Apply the move protocol after a structure makes a prediction.

        A BTB1 prediction refreshes MRU.  A BTBP prediction promotes the
        entry into the BTB1; the displaced BTB1 victim goes to the BTBP and
        (per the exclusivity mode) to the BTB2.  Returns the BTB1 victim
        (``None`` when no entry was displaced) so replacement decisions are
        observable.
        """
        if hit.level is PredictionLevel.BTB1:
            self.btb1.touch(hit.entry)
            return None
        assert self.btbp is not None
        self.btbp.remove(hit.entry.address)
        self.btbp_promotions += 1
        victim = self.btb1.install(hit.entry)
        if victim is not None:
            self.btbp.write(victim, WriteSource.BTB1_VICTIM)
            self._writeback_victim(victim)
        return victim

    def _writeback_victim(self, victim: BTBEntry) -> None:
        if self.btb2 is None:
            return
        if self.config.exclusivity is ExclusivityMode.NO_VICTIM_WRITEBACK:
            return
        self.btb2.write_victim(victim.clone())

    # -- installs ----------------------------------------------------------

    def surprise_install(self, record: TraceRecord) -> BTBEntry:
        """Install an ever-taken surprise branch into BTBP (and BTB2)."""
        assert record.taken and record.target is not None
        entry = BTBEntry(
            address=record.address,
            target=record.target,
            kind=record.kind,
            counter=WEAK_TAKEN,
        )
        self.surprise_installs += 1
        if self.btbp is not None:
            self.btbp.write(entry, WriteSource.SURPRISE)
        else:
            # BTBP-less ablation: surprises go straight into the BTB1.
            victim = self.btb1.install(entry)
            if victim is not None:
                self._writeback_victim(victim)
        if self.btb2 is not None:
            self.btb2.write_surprise(entry)
        return entry

    def software_preload(
        self, address: int, target: int, kind: BranchKind = BranchKind.COND
    ) -> BTBEntry:
        """Install branch metadata via a branch preload *instruction*.

        The fourth architected BTBP write source (3.1): software tells the
        predictor about a branch before it executes (e.g. ahead of a known
        cold path).  The entry lands in the BTBP like any other install.
        """
        entry = BTBEntry(address=address, target=target, kind=kind)
        if self.btbp is not None:
            self.btbp.write(entry, WriteSource.PRELOAD_INSTRUCTION)
        else:
            self.btb1.install(entry)
        return entry

    def preload_write(self, entry: BTBEntry) -> None:
        """Accept one BTB2 transfer hit into the first level."""
        if self.btbp is not None:
            self.btbp.write(entry, WriteSource.BTB2_HIT)
        else:
            victim = self.btb1.install(entry)
            if victim is not None:
                self._writeback_victim(victim)

    # -- training -----------------------------------------------------------

    def train(self, entry: BTBEntry, record: TraceRecord) -> None:
        """Update the entry, PHT and CTB with the resolved outcome.

        The PHT trains whenever the entry holds (or has just gained) PHT
        control, so the pattern table warms up before it is first consulted;
        likewise the CTB for changing-target branches.
        """
        entry.update_direction(record.taken)
        if entry.use_pht:
            self.pht.update(entry.address, self.history, record.taken)
        if record.taken and record.target is not None:
            if entry.use_ctb:
                # Grade what the CTB would have predicted for this path
                # before training it, so confidence tracks CTB quality even
                # while it is not being trusted.
                would_predict = self.ctb.peek(entry.address, self.history)
                if would_predict is not None:
                    entry.update_ctb_confidence(would_predict == record.target)
                self.ctb.update(entry.address, self.history, record.target)
            entry.update_target(record.target)

    def record_resolved_branch(self, record: TraceRecord) -> None:
        """Advance path history and the surprise BHT with a resolved branch."""
        self.surprise_bht.update(record.address, record.kind, record.taken)
        self.history.record(record.address, record.taken)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of every first-level structure and counter.

        The BTB2 is *not* included: it is owned by the preload side and the
        hierarchy only holds a reference; :class:`repro.engine.simulator.Simulator`
        serializes it once at the top level.
        """
        return {
            "btb1": self.btb1.state_dict(),
            "btbp": self.btbp.state_dict() if self.btbp is not None else None,
            "pht": self.pht.state_dict(),
            "ctb": self.ctb.state_dict(),
            "fit": self.fit.state_dict(),
            "surprise_bht": self.surprise_bht.state_dict(),
            "history": self.history.state_dict(),
            "btbp_promotions": self.btbp_promotions,
            "surprise_installs": self.surprise_installs,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self.btb1.load_state_dict(state["btb1"])
        if self.btbp is not None:
            self.btbp.load_state_dict(state["btbp"])
        self.pht.load_state_dict(state["pht"])
        self.ctb.load_state_dict(state["ctb"])
        self.fit.load_state_dict(state["fit"])
        self.surprise_bht.load_state_dict(state["surprise_bht"])
        self.history.load_state_dict(state["history"])
        self.btbp_promotions = state["btbp_promotions"]
        self.surprise_installs = state["surprise_installs"]

    # -- probes --------------------------------------------------------------

    def probe_level(self, branch_address: int) -> PredictionLevel | None:
        """Where (if anywhere) the first level currently holds this branch."""
        if self.btb1.lookup(branch_address) is not None:
            return PredictionLevel.BTB1
        if self.btbp is not None and self.btbp.lookup(branch_address) is not None:
            return PredictionLevel.BTBP
        return None
