"""Core of the paper's contribution: configs, hierarchy wiring, lookahead search."""

from repro.core.config import (
    ExclusivityMode,
    FilterMode,
    PredictorConfig,
    TABLE3_CONFIGS,
    ZEC12_CONFIG_1,
    ZEC12_CONFIG_2,
    ZEC12_CONFIG_3,
)
from repro.core.events import MissReport, OutcomeKind, Prediction, PredictionLevel
from repro.core.hierarchy import FirstLevelPredictor, Resolution, RowHit
from repro.core.search import (
    BROADCAST_LATENCY,
    LookaheadSearch,
    MISS_DETECT_LATENCY,
    SEQUENTIAL_CYCLES_PER_ROW,
    SearchOutcome,
)

__all__ = [
    "BROADCAST_LATENCY",
    "ExclusivityMode",
    "FilterMode",
    "FirstLevelPredictor",
    "LookaheadSearch",
    "MISS_DETECT_LATENCY",
    "MissReport",
    "OutcomeKind",
    "Prediction",
    "PredictionLevel",
    "PredictorConfig",
    "Resolution",
    "RowHit",
    "SEQUENTIAL_CYCLES_PER_ROW",
    "SearchOutcome",
    "TABLE3_CONFIGS",
    "ZEC12_CONFIG_1",
    "ZEC12_CONFIG_2",
    "ZEC12_CONFIG_3",
]
