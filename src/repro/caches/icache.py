"""First-level instruction cache model.

The zEC12 L1 instruction cache is 64 KB, 4-way (Table 5).  zSeries caches use
256-byte lines; the line size is configurable for sweeps.  Per the paper's
methodology (section 4), only the first-level cache is finite: every L1I miss
is an L2 hit with a fixed latency, so the model needs presence + a recent-miss
window, nothing more.

The recent-miss window exists for the BTB2 filter (section 3.5): a perceived
BTB1 miss is only treated as a likely *capacity* miss when an instruction
cache miss occurred "in the same 4 KB block".  :meth:`ICache.recent_miss_in_block`
answers exactly that question for the misses of the last ``miss_window``
cycles.
"""

from __future__ import annotations

from collections import deque

from repro.caches.setassoc import CacheGeometry, SetAssociativeCache
from repro.isa.address import block_address


class ICache:
    """Finite L1I with miss tracking by 4 KB block."""

    def __init__(
        self,
        capacity_bytes: int = 64 * 1024,
        ways: int = 4,
        line_bytes: int = 256,
        miss_window: int = 256,
    ) -> None:
        sets = capacity_bytes // (ways * line_bytes)
        self._cache = SetAssociativeCache(CacheGeometry(sets, ways, line_bytes))
        self.miss_window = miss_window
        # (cycle, block_address) of recent misses, oldest first.
        self._recent_misses: deque[tuple[int, int]] = deque()

    def fetch(self, address: int, cycle: int) -> bool:
        """Fetch the line holding ``address`` at ``cycle``; True on hit."""
        hit = self._cache.access(address)
        if not hit:
            self._recent_misses.append((cycle, block_address(address)))
            self._trim(cycle)
        return hit

    def prefetch(self, address: int) -> bool:
        """Install the line for ``address`` ahead of demand.

        Returns True when the line was already present.  Prefetches initiated
        by predicted-taken branches are how the lookahead predictor "reduces
        or completely hides the first level instruction cache miss penalty"
        (section 3.2).
        """
        present = self._cache.contains(address)
        self._cache.install(address)
        return present

    def contains(self, address: int) -> bool:
        """Presence probe for the line holding ``address`` (no LRU effect)."""
        return self._cache.contains(address)

    def recent_miss_in_block(self, address: int, cycle: int) -> bool:
        """True when a miss occurred in ``address``'s 4 KB block recently."""
        self._trim(cycle)
        block = block_address(address)
        return any(b == block for _, b in self._recent_misses)

    def _trim(self, cycle: int) -> None:
        horizon = cycle - self.miss_window
        while self._recent_misses and self._recent_misses[0][0] < horizon:
            self._recent_misses.popleft()

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot: underlying tag array + recent-miss window."""
        return {
            "cache": self._cache.state_dict(),
            "recent_misses": [[cycle, block] for cycle, block in self._recent_misses],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self._cache.load_state_dict(state["cache"])
        self._recent_misses = deque(
            (cycle, block) for cycle, block in state["recent_misses"]
        )

    @property
    def hits(self) -> int:
        """Demand fetch hits."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Demand fetch misses."""
        return self._cache.misses

    @property
    def miss_rate(self) -> float:
        """Demand miss ratio."""
        return self._cache.miss_rate
