"""Generic set-associative cache with true LRU replacement.

This is the storage substrate reused by the instruction cache model (and by
tests that need a plain cache).  It tracks *presence* only — the simulator
needs hit/miss behaviour, not data contents.

Geometry is expressed as (sets, ways, line size); addresses are mapped with
the conventional ``(address >> log2(line)) % sets`` index.  LRU state is an
ordering of ways per set, most recently used first.
"""

from __future__ import annotations

from dataclasses import dataclass


def _check_power_of_two(value: int, name: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a set-associative cache."""

    sets: int
    ways: int
    line_bytes: int

    def __post_init__(self) -> None:
        _check_power_of_two(self.sets, "sets")
        _check_power_of_two(self.line_bytes, "line_bytes")
        if self.ways <= 0:
            raise ValueError("ways must be positive")

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.sets * self.ways * self.line_bytes

    def index(self, address: int) -> int:
        """Set index for ``address``."""
        return (address // self.line_bytes) % self.sets

    def tag(self, address: int) -> int:
        """Tag (line address above the index) for ``address``."""
        return address // self.line_bytes // self.sets

    def line_address(self, address: int) -> int:
        """Align ``address`` down to its line."""
        return address & ~(self.line_bytes - 1)


class SetAssociativeCache:
    """Presence-tracking set-associative cache with true LRU."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        # Per set: list of tags ordered MRU first.  Lists are tiny (= ways),
        # so list operations beat any fancier structure in CPython.
        self._sets: list[list[int]] = [[] for _ in range(geometry.sets)]
        # Geometry scalars cached locally: contains/access/install are the
        # per-record hot path and the attribute/method chain dominates there.
        self._line_bytes = geometry.line_bytes
        self._set_count = geometry.sets
        self._way_count = geometry.ways
        self.hits = 0
        self.misses = 0

    def contains(self, address: int) -> bool:
        """Non-destructive presence probe (does not touch LRU or counters)."""
        line = address // self._line_bytes
        return line // self._set_count in self._sets[line % self._set_count]

    def access(self, address: int) -> bool:
        """Reference ``address``: return True on hit; install on miss.

        Hits are promoted to MRU; misses install the line, evicting LRU when
        the set is full.
        """
        line = address // self._line_bytes
        tag = line // self._set_count
        tags = self._sets[line % self._set_count]
        if tag in tags:
            if tags[0] != tag:
                tags.remove(tag)
                tags.insert(0, tag)
            self.hits += 1
            return True
        self.misses += 1
        tags.insert(0, tag)
        if len(tags) > self._way_count:
            tags.pop()
        return False

    def install(self, address: int) -> None:
        """Install ``address`` (MRU) without counting an access."""
        line = address // self._line_bytes
        tag = line // self._set_count
        tags = self._sets[line % self._set_count]
        if tag in tags:
            tags.remove(tag)
        tags.insert(0, tag)
        if len(tags) > self._way_count:
            tags.pop()

    def flush(self) -> None:
        """Empty the cache (counters are preserved)."""
        for tags in self._sets:
            tags.clear()

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Sparse snapshot: occupied sets as ``[index, [tags MRU-first]]``."""
        return {
            "sets": [
                [index, list(tags)]
                for index, tags in enumerate(self._sets)
                if tags
            ],
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        for tags in self._sets:
            tags.clear()
        for index, tags in state["sets"]:
            self._sets[index] = list(tags)
        self.hits = state["hits"]
        self.misses = state["misses"]

    @property
    def accesses(self) -> int:
        """Total counted accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss ratio over counted accesses."""
        return self.misses / self.accesses if self.accesses else 0.0
