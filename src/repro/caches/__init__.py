"""Cache substrate: generic set-associative storage and the L1I model."""

from repro.caches.icache import ICache
from repro.caches.setassoc import CacheGeometry, SetAssociativeCache

__all__ = ["CacheGeometry", "ICache", "SetAssociativeCache"]
