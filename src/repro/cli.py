"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — run one workload under one or more configurations and
  print the comparison report.
* ``workloads`` — list the Table 4 workload catalog (paper counters).
* ``tables`` — print the paper's structural tables (1, 2, 3, 5).
* ``figure`` — regenerate one figure (2-7) at a chosen scale, optionally
  fanning its simulation runs over ``--jobs`` worker processes.
* ``report`` — regenerate the full paper-vs-measured report (the
  ``repro.experiments.run_all`` entry point).

Everything the CLI does is also available as a library API; the CLI is a
thin argparse layer over :mod:`repro.experiments` and
:mod:`repro.engine.simulator`.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.audit import AUDIT_ENV, Auditor
from repro.core.config import (
    PredictorConfig,
    TABLE3_CONFIGS,
    ZEC12_CONFIG_1,
    ZEC12_CONFIG_2,
    ZEC12_CONFIG_3,
)
from repro.engine.simulator import Simulator
from repro.metrics.counters import cpi_improvement
from repro.metrics.report import format_result
from repro.workloads.catalog import TABLE4_WORKLOADS, workload_by_name

CONFIGS: dict[str, PredictorConfig] = {
    "1": ZEC12_CONFIG_1,
    "2": ZEC12_CONFIG_2,
    "3": ZEC12_CONFIG_3,
}


def _cmd_workloads(_args) -> int:
    print(f"{'workload':34s} {'paper uniq':>10s} {'paper taken':>11s} "
          f"{'trace len':>10s}")
    for spec in TABLE4_WORKLOADS:
        print(f"{spec.name:34s} {spec.paper_unique_branches:10,d} "
              f"{spec.paper_unique_taken:11,d} {spec.trace_length:10,d}")
    return 0


def _cmd_simulate(args) -> int:
    spec = workload_by_name(args.workload)
    print(f"workload: {spec.name} (scale {args.scale})")
    trace = spec.trace(scale=args.scale)
    print(f"{len(trace):,} records\n")
    results = []
    for key in args.configs:
        config = CONFIGS[key]
        auditor = Auditor() if args.audit else None
        result = Simulator(config, audit=auditor).run(trace)
        results.append(result)
        print(format_result(result))
        print()
    if len(results) > 1:
        base = results[0]
        for other in results[1:]:
            gain = cpi_improvement(base.cpi, other.cpi)
            print(f"{other.config_name} vs {base.config_name}: "
                  f"{gain:+.2f}% CPI")
    return 0


def _cmd_tables(_args) -> int:
    from repro.experiments.tables import (
        render_table1,
        render_table2,
        render_table3,
        render_table5,
    )

    for renderer in (render_table1, render_table2, render_table3,
                     render_table5):
        print(renderer())
        print()
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import figure2, figure3, figure4, figure5, figure6, figure7

    kwargs = {"scale": args.scale, "jobs": args.jobs}
    runners = {
        2: lambda: figure2.render(figure2.run_figure2(**kwargs)),
        3: lambda: figure3.render(figure3.run_figure3(**kwargs)),
        4: lambda: figure4.render(figure4.run_figure4(**kwargs)),
        5: lambda: figure5.render(figure5.run_figure5(**kwargs)),
        6: lambda: figure6.render(figure6.run_figure6(**kwargs)),
        7: lambda: figure7.render(figure7.run_figure7(**kwargs)),
    }
    print(runners[args.number]())
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.run_all import main as run_all_main

    argv = ["--scale", str(args.scale), "--sweep-scale", str(args.sweep_scale),
            "--output", args.output]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    return run_all_main(argv)


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for simulation runs "
             "(default: $REPRO_JOBS or serial; 0 = one per CPU)",
    )


def _add_audit_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--audit", action="store_true",
        help="run every simulation under the runtime invariant auditor "
             "(slower; fails loudly on the first violated invariant)",
    )


def _apply_audit_env(args) -> None:
    """Turn ``--audit`` into the ``REPRO_AUDIT`` environment variable.

    The env var (not a threaded flag) is what reaches ``run_workload`` in
    this process *and* in any pool worker, so one switch audits every
    simulation a figure or report performs.
    """
    if getattr(args, "audit", False):
        os.environ[AUDIT_ENV] = "1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two Level Bulk Preload Branch Prediction — reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the Table 4 workload catalog")

    simulate = sub.add_parser("simulate", help="simulate one workload")
    simulate.add_argument("workload", help="catalog name (substring match)")
    simulate.add_argument(
        "--configs", nargs="+", choices=sorted(CONFIGS), default=["1", "2"],
        help="Table 3 configurations to run (default: 1 2)",
    )
    simulate.add_argument("--scale", type=float, default=0.35)
    _add_audit_argument(simulate)

    sub.add_parser("tables", help="print tables 1, 2, 3 and 5")

    figure = sub.add_parser("figure", help="regenerate one figure")
    figure.add_argument("number", type=int, choices=range(2, 8))
    figure.add_argument("--scale", type=float, default=0.35)
    _add_jobs_argument(figure)
    _add_audit_argument(figure)

    report = sub.add_parser(
        "report", help="regenerate the full paper-vs-measured report"
    )
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--sweep-scale", type=float, default=0.35)
    report.add_argument("--output", default="EXPERIMENTS.md")
    _add_jobs_argument(report)
    _add_audit_argument(report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_audit_env(args)
    handlers = {
        "workloads": _cmd_workloads,
        "simulate": _cmd_simulate,
        "tables": _cmd_tables,
        "figure": _cmd_figure,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
