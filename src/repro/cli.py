"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — run one workload under one or more configurations and
  print the comparison report; ``--trace``/``--chrome-trace``/``--sample``/
  ``--profile`` attach the telemetry subsystem and export its artifacts;
  ``--sampled`` switches to interval sampling (``--interval``/``--period``/
  ``--warmup``/``--sampling-mode``, checkpoint reuse via
  ``--checkpoint-dir``); ``--parallel-intervals K`` cuts the trace into K
  checkpoint-parallel slices fanned out over ``--backend`` (bit-identical
  to serial in exact mode, CI-bounded when combined with ``--sampled``).
* ``checkpoint`` — create, list or clear the warmed-state checkpoints a
  sampled run reuses.  For parallel runs, ``--relay-dir`` (implied by the
  trace flags) relays worker-side telemetry home and the exported trace is
  the *merged* multi-lane timeline; ``--metrics`` writes the session
  metrics snapshot (docs/OBSERVABILITY.md).
* ``workloads`` — list the Table 4 workload catalog (paper counters) and
  the adversarial BTB-probe families (:mod:`repro.workloads.adversarial`).
* ``tables`` — print the paper's structural tables (1, 2, 3, 5).
* ``figure`` — regenerate one figure (2-7) at a chosen scale, optionally
  fanning its simulation runs over ``--jobs`` worker processes.
* ``report`` — regenerate the full paper-vs-measured report (the
  ``repro.experiments.run_all`` entry point).
* ``serve`` — run the long-lived simulation daemon (:mod:`repro.service`):
  an asyncio HTTP/JSON API multiplexing many concurrent sessions over a
  bounded worker pool, with streaming trace ingest, checkpoint
  suspend/resume via ``--spool``, Prometheus ``/metrics``, and graceful
  drain on SIGTERM (docs/SERVICE.md).
* ``session`` — client for a running daemon: create/list/status/ingest/
  reports/suspend/resume/close/result/delete/shutdown against
  ``--host``/``--port``.
* ``top`` — live monitor for a running batch session: tails the status
  board named by ``--status`` (or ``$REPRO_STATUS``) and renders per-spec
  progress, throughput, ETA and worker utilization in place.
* ``timeline`` — run one workload with the time-series sampler and print
  the ASCII occupancy/rate timeline (optionally writing the CSV).
* ``profile`` — run one workload with the per-branch profiler and print
  the top-K worst-offenders report.
* ``verify`` — the conformance gate (:mod:`repro.oracle`): mutation drill
  (prove the oracle catches a seeded LRU bug), lockstep differential runs
  against the reference model on real workload traces, the golden
  per-workload baseline under ``tests/golden/``, and the
  checkpoint-parallel gate (every workload serial vs parallel, demanding
  bit-identity); ``--update-golden`` regenerates the baseline after an
  intended behavior change.  ``--predictor NAME...|all`` extends the gate
  to the predictor zoo: the conformance battery
  (:mod:`repro.predictors.conformance`), per-predictor lockstep against
  independent reference models plus the zoo mutation drill
  (:mod:`repro.predictors.differential`), and the per-predictor golden
  baseline (``tests/golden/predictors.json``).
* ``ablation`` — run every registered predictor over a shared workload
  slate (commercial + adversarial) and print the comparison table
  (:mod:`repro.experiments.ablation`); ``--json`` writes the grid as the
  nightly CI artifact.

Everything the CLI does is also available as a library API; the CLI is a
thin argparse layer over :mod:`repro.experiments` and
:mod:`repro.engine.simulator`.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.audit import AUDIT_ENV, Auditor
from repro.core.config import (
    PredictorConfig,
    TABLE3_CONFIGS,
    ZEC12_CONFIG_1,
    ZEC12_CONFIG_2,
    ZEC12_CONFIG_3,
)
from repro.engine.batched import ENGINE_MODES
from repro.engine.simulator import Simulator
from repro.metrics.counters import cpi_improvement
from repro.metrics.report import format_result
from repro.sampling import (
    CheckpointStore,
    ConfidenceBoundExceeded,
    DEFAULT_CI_BOUND,
    SamplingPlan,
    error_report,
    run_sampled,
)
from repro.telemetry import (
    BranchProfiler,
    Sampler,
    Telemetry,
    Tracer,
    render_timeline,
)
from repro.workloads.catalog import TABLE4_WORKLOADS, workload_by_name

CONFIGS: dict[str, PredictorConfig] = {
    "1": ZEC12_CONFIG_1,
    "2": ZEC12_CONFIG_2,
    "3": ZEC12_CONFIG_3,
}


def _cmd_workloads(_args) -> int:
    from repro.workloads.adversarial import ADVERSARIAL_WORKLOADS

    print(f"{'workload':34s} {'paper uniq':>10s} {'paper taken':>11s} "
          f"{'trace len':>10s}")
    for spec in TABLE4_WORKLOADS:
        print(f"{spec.name:34s} {spec.paper_unique_branches:10,d} "
              f"{spec.paper_unique_taken:11,d} {spec.trace_length:10,d}")
    print()
    print(f"{'adversarial workload':34s} {'sites':>10s} {'stride':>11s} "
          f"{'trace len':>10s}")
    for spec in ADVERSARIAL_WORKLOADS:
        print(f"{spec.name:34s} {spec.sites:10,d} {spec.stride:11,d} "
              f"{spec.trace_length:10,d}")
    return 0


def _build_telemetry(args) -> Telemetry | None:
    """A telemetry hub matching the ``simulate`` flags, or ``None``."""
    tracer = Tracer() if (args.trace or args.chrome_trace) else None
    sampler = Sampler(args.sample_interval) if args.sample else None
    profiler = BranchProfiler() if args.profile is not None else None
    if tracer is None and sampler is None and profiler is None:
        return None
    return Telemetry(tracer=tracer, sampler=sampler, profiler=profiler)


def _suffixed(path: str, key: str, multi: bool) -> str:
    """Per-config output path: ``out.jsonl`` -> ``out.cfg2.jsonl``."""
    if not multi:
        return path
    root, dot, extension = path.rpartition(".")
    if not dot or "/" in extension:
        return f"{path}.cfg{key}"
    return f"{root}.cfg{key}.{extension}"


def _export_telemetry(args, telemetry: Telemetry, key: str,
                      multi: bool, skip_tracer: bool = False) -> None:
    """Write the artifacts the ``simulate`` telemetry flags asked for.

    ``skip_tracer`` suppresses the JSONL/Chrome exports when a relay
    aggregation already wrote the (merged, multi-lane) versions of them.
    """
    if args.trace and not skip_tracer:
        count = telemetry.tracer.write_jsonl(
            _suffixed(args.trace, key, multi))
        print(f"wrote {count:,} events to "
              f"{_suffixed(args.trace, key, multi)}")
    if args.chrome_trace and not skip_tracer:
        count = telemetry.tracer.write_chrome_trace(
            _suffixed(args.chrome_trace, key, multi))
        print(f"wrote {count:,} trace events to "
              f"{_suffixed(args.chrome_trace, key, multi)}")
    if args.sample:
        count = telemetry.sampler.write_csv(
            _suffixed(args.sample, key, multi))
        print(f"wrote {count:,} samples to "
              f"{_suffixed(args.sample, key, multi)}")
    if args.profile is not None:
        print(telemetry.profiler.render(args.profile))


def _sampling_plan(args) -> SamplingPlan:
    """The :class:`SamplingPlan` described by the ``--sampled`` flags."""
    return SamplingPlan(
        mode=args.sampling_mode,
        interval=args.interval,
        period=args.period,
        warmup=args.warmup,
        seed=args.sampling_seed,
    )


def _checkpoint_context(args, spec):
    """(store, trace_key) for ``--checkpoint-dir``, or (None, None)."""
    if getattr(args, "checkpoint_dir", None) is None:
        return None, None
    from repro.experiments.common import trace_identity

    return CheckpointStore(args.checkpoint_dir), trace_identity(spec, args.scale)


def _relay_for(args, spec, key: str, multi: bool):
    """The relay a parallel ``simulate`` should stream through, or ``None``.

    An explicit ``--relay-dir`` always builds one; the trace flags imply
    one (per-record telemetry cannot cross worker process boundaries, so
    the only way a parallel run can export a trace is shard + aggregate).
    Each config of a multi-config invocation gets its own subdirectory —
    the aggregator merges a whole directory.
    """
    if not (args.relay_dir or args.trace or args.chrome_trace):
        return None
    import tempfile

    from repro.telemetry.distributed import TelemetryRelay

    root = args.relay_dir or tempfile.mkdtemp(prefix="repro-relay-")
    directory = os.path.join(root, f"cfg{key}") if multi else root
    return TelemetryRelay(directory, run_id=f"{spec.name}-cfg{key}")


def _export_aggregate(args, relay, key: str, multi: bool) -> None:
    """Merge a parallel run's relay shards and write the asked artifacts."""
    from repro.telemetry.distributed import aggregate
    from repro.telemetry.metrics import REGISTRY

    merged = aggregate(relay.directory, relay.run_id)
    print(merged.describe())
    for path, reason in merged.skipped:
        print(f"  skipped {path}: {reason}", file=sys.stderr)
    if args.trace:
        target = _suffixed(args.trace, key, multi)
        count = merged.write_jsonl(target)
        print(f"wrote {count:,} merged events to {target}")
    if args.chrome_trace:
        target = _suffixed(args.chrome_trace, key, multi)
        count = merged.write_chrome(target)
        print(f"wrote {count:,} trace events "
              f"({len(merged.workers)} lanes) to {target}")
    if args.metrics:
        merged.registry.merge_snapshot(REGISTRY.snapshot())
        target = _suffixed(args.metrics, key, multi)
        merged.registry.write_snapshot(target)
        print(f"wrote {len(merged.registry.names())} metric(s) to {target}")


def _simulate_zoo(args, spec) -> int:
    """``simulate --predictor`` for non-paper registry entries.

    Zoo predictors are decode-coupled single-engine models: full-detail
    runs only (the sampling/parallel machinery checkpoints the paper
    stack's pipeline state), with telemetry and the internal audit
    self-check available as usual.
    """
    from repro.predictors.registry import create_predictor, predictor_info

    info = predictor_info(args.predictor)
    if args.sampled or args.parallel_intervals is not None:
        print("--sampled/--parallel-intervals are implemented for the "
              "paper stack only; zoo predictors run full detail",
              file=sys.stderr)
        return 2
    if args.engine not in ("auto", "object"):
        print(f"--engine {args.engine} is a paper-stack fast path; zoo "
              f"predictors have a single engine", file=sys.stderr)
        return 2
    print(f"workload: {spec.name} (scale {args.scale})")
    print(f"predictor: {info.name} — {info.summary}")
    trace = spec.trace(scale=args.scale)
    print(f"{len(trace):,} records\n")
    results = []
    multi = len(args.configs) > 1
    for key in args.configs:
        config = CONFIGS[key]
        telemetry = _build_telemetry(args)
        predictor = create_predictor(args.predictor, config=config,
                                     audit=args.audit, telemetry=telemetry)
        result = predictor.run(trace)
        results.append(result)
        print(format_result(result,
                            title=f"{info.name} / {config.name}"))
        if telemetry is not None:
            _export_telemetry(args, telemetry, key, multi)
        print()
    if len(results) > 1:
        base = results[0]
        for other in results[1:]:
            gain = cpi_improvement(base.cpi, other.cpi)
            print(f"{other.config_name} vs {base.config_name}: "
                  f"{gain:+.2f}% CPI")
    return 0


def _cmd_simulate(args) -> int:
    spec = workload_by_name(args.workload)
    if args.predictor != "paper":
        return _simulate_zoo(args, spec)
    print(f"workload: {spec.name} (scale {args.scale})")
    trace = spec.trace(scale=args.scale)
    print(f"{len(trace):,} records\n")
    results = []
    multi = len(args.configs) > 1
    for key in args.configs:
        config = CONFIGS[key]
        auditor = Auditor() if args.audit else None
        telemetry = _build_telemetry(args)
        relay = None
        if args.parallel_intervals is not None:
            if args.audit:
                print("--audit cannot combine with --parallel-intervals: "
                      "per-record audit hooks do not cross worker process "
                      "boundaries", file=sys.stderr)
                return 2
            from repro.sampling import ParallelPlan, TraceSource, run_parallel

            relay = _relay_for(args, spec, key, multi)
            store, trace_key = _checkpoint_context(args, spec)
            stitched = run_parallel(
                TraceSource.for_workload(spec, args.scale),
                config=config,
                plan=ParallelPlan(intervals=args.parallel_intervals),
                sampling=_sampling_plan(args) if args.sampled else None,
                checkpoint_store=store, trace_key=trace_key,
                engine_mode=args.engine, backend=args.backend,
                telemetry=telemetry, relay=relay,
            )
            result = stitched.result
            print(stitched.describe())
            if relay is not None:
                _export_aggregate(args, relay, key, multi)
            if stitched.sampled is not None:
                try:
                    print(error_report(stitched.sampled, max_ci=args.max_ci))
                except ConfidenceBoundExceeded as refusal:
                    print(refusal, file=sys.stderr)
                    return 1
            print()
        elif args.sampled:
            store, trace_key = _checkpoint_context(args, spec)
            sampled = run_sampled(
                trace, config=config, plan=_sampling_plan(args),
                audit=auditor, telemetry=telemetry,
                checkpoint_store=store, trace_key=trace_key,
                engine_mode=args.engine,
            )
            result = sampled.result
            try:
                print(error_report(sampled, max_ci=args.max_ci))
            except ConfidenceBoundExceeded as refusal:
                print(refusal, file=sys.stderr)
                return 1
            if store is not None:
                print(f"  checkpoints: {sampled.checkpoints_loaded} loaded, "
                      f"{sampled.checkpoints_saved} saved "
                      f"({args.checkpoint_dir})")
            print()
        else:
            result = Simulator(config, audit=auditor, telemetry=telemetry,
                               engine_mode=args.engine).run(trace)
        results.append(result)
        print(format_result(result))
        if telemetry is not None:
            _export_telemetry(args, telemetry, key, multi,
                              skip_tracer=relay is not None)
        if args.metrics and relay is None:
            from repro.telemetry.metrics import REGISTRY

            target = _suffixed(args.metrics, key, multi)
            REGISTRY.write_snapshot(target)
            print(f"wrote {len(REGISTRY.names())} metric(s) to {target}")
        print()
    if len(results) > 1:
        base = results[0]
        for other in results[1:]:
            gain = cpi_improvement(base.cpi, other.cpi)
            print(f"{other.config_name} vs {base.config_name}: "
                  f"{gain:+.2f}% CPI")
    return 0


def _run_with_telemetry(args, telemetry: Telemetry):
    """Shared ``timeline``/``profile`` setup: one instrumented run."""
    spec = workload_by_name(args.workload)
    trace = spec.trace(scale=args.scale)
    config = CONFIGS[args.config]
    auditor = Auditor() if args.audit else None
    result = Simulator(config, audit=auditor, telemetry=telemetry).run(trace)
    return spec, result


def _cmd_timeline(args) -> int:
    sampler = Sampler(args.interval)
    telemetry = Telemetry(sampler=sampler)
    spec, result = _run_with_telemetry(args, telemetry)
    title = (f"{spec.name} / {result.config_name} — "
             f"{result.counters.instructions:,} instructions, "
             f"CPI {result.cpi:.3f}")
    print(render_timeline(sampler, title=title, width=args.width))
    if args.csv:
        count = sampler.write_csv(args.csv)
        print(f"wrote {count:,} samples to {args.csv}")
    return 0


def _cmd_profile(args) -> int:
    profiler = BranchProfiler()
    telemetry = Telemetry(profiler=profiler)
    spec, result = _run_with_telemetry(args, telemetry)
    title = (f"{spec.name} / {result.config_name} — "
             f"per-branch penalty profile (top {args.top})")
    print(profiler.render(args.top, title=title))
    return 0


def _cmd_checkpoint(args) -> int:
    store = CheckpointStore(args.dir)
    if args.action == "list":
        # A concurrent clear/writer can unlink an entry between the listing
        # and the stat; treat a vanished file as absent, not a crash.
        listed = 0
        total = 0
        for path in store.entries():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            listed += 1
            total += size
            print(f"{size:12,d}  {path.name}")
        print(f"{listed} checkpoint(s), {total:,} bytes in {args.dir}")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} checkpoint(s) from {args.dir}")
        return 0
    # create: one sampled pass with the store attached warms every interval
    # start through the exact save/load lineage a later sampled run replays.
    if args.workload is None:
        print("checkpoint create requires a workload", file=sys.stderr)
        return 2
    spec = workload_by_name(args.workload)
    config = CONFIGS[args.config]
    trace = spec.trace(scale=args.scale)
    from repro.experiments.common import trace_identity

    auditor = Auditor() if args.audit else None
    sampled = run_sampled(
        trace, config=config, plan=_sampling_plan(args), audit=auditor,
        checkpoint_store=store, trace_key=trace_identity(spec, args.scale),
    )
    print(f"workload: {spec.name} (scale {args.scale}), "
          f"config {config.name}")
    print(f"plan: {sampled.plan.describe()}")
    print(f"checkpoints: {sampled.checkpoints_saved} saved, "
          f"{sampled.checkpoints_loaded} reused ({args.dir})")
    return 0


def _cmd_tables(_args) -> int:
    from repro.experiments.tables import (
        render_table1,
        render_table2,
        render_table3,
        render_table5,
    )

    for renderer in (render_table1, render_table2, render_table3,
                     render_table5):
        print(renderer())
        print()
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import figure2, figure3, figure4, figure5, figure6, figure7

    kwargs = {"scale": args.scale, "jobs": args.jobs}
    runners = {
        2: lambda: figure2.render(figure2.run_figure2(**kwargs)),
        3: lambda: figure3.render(figure3.run_figure3(**kwargs)),
        4: lambda: figure4.render(figure4.run_figure4(**kwargs)),
        5: lambda: figure5.render(figure5.run_figure5(**kwargs)),
        6: lambda: figure6.render(figure6.run_figure6(**kwargs)),
        7: lambda: figure7.render(figure7.run_figure7(**kwargs)),
    }
    print(runners[args.number]())
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.run_all import main as run_all_main

    argv = ["--scale", str(args.scale), "--sweep-scale", str(args.sweep_scale),
            "--output", args.output]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.progress is not None:
        argv += (["--progress", args.progress] if args.progress
                 else ["--progress"])
    return run_all_main(argv)


def _cmd_top(args) -> int:
    from repro.telemetry.monitor import STATUS_ENV, top

    path = args.status or os.environ.get(STATUS_ENV, "").strip()
    if not path:
        print("no status board: pass --status PATH or set $REPRO_STATUS "
              "(run_all --progress / repro report --progress write one)",
              file=sys.stderr)
        return 2
    return top(path, interval=args.interval, once=args.once,
               width=args.width)


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import ServiceLimits, ServiceServer

    limits = ServiceLimits(
        queue_records=args.queue_records,
        chunk_records=args.chunk_records,
        idle_timeout=args.idle_timeout,
        sweep_interval=args.sweep_interval,
        max_sessions=args.max_sessions,
    )

    async def _run() -> None:
        server = ServiceServer(
            args.host, args.port, limits=limits, backend=args.backend,
            jobs=args.jobs, spool=args.spool,
            spool_max_entries=args.spool_max_entries)
        await server.start()
        spool = args.spool or "(none: suspend/resume disabled)"
        print(f"repro service listening on http://{server.host}:"
              f"{server.port}  backend={args.backend} jobs={args.jobs} "
              f"spool={spool}", flush=True)
        await server.serve()
        print("repro service drained and stopped", flush=True)

    asyncio.run(_run())
    return 0


def _cmd_session(args) -> int:
    import json as _json

    from repro.service import ServiceClient, ServiceError, ServiceUnavailable

    client = ServiceClient(args.host, args.port)

    def _records():
        """The records named by --workload/--trace-file for ingest."""
        if args.trace_file:
            from repro.trace import open_trace

            with open_trace(args.trace_file) as trace:
                return list(trace)
        if args.workload:
            spec = workload_by_name(args.workload)
            return spec.trace(scale=args.scale)
        print("session ingest needs --workload NAME or --trace-file PATH",
              file=sys.stderr)
        raise SystemExit(2)

    def _require_id() -> str:
        if not args.id:
            print(f"session {args.action} needs a session id",
                  file=sys.stderr)
            raise SystemExit(2)
        return args.id

    try:
        if args.action == "create":
            payload = client.create_session(
                config=args.config, engine=args.engine, label=args.label)
        elif args.action == "list":
            payload = client.list_sessions()
        elif args.action == "status":
            payload = client.session(_require_id())
        elif args.action == "ingest":
            records = _records()
            sid = _require_id()
            if args.one_shot:
                payload = client.ingest(sid, records, ndjson=args.ndjson)
            else:
                payload = client.stream(sid, records,
                                        chunk_records=args.chunk_records)
            if args.wait:
                # processed_records is cumulative across the session's
                # lifetime, so wait on the cumulative ingested total —
                # this call's accepted count alone would return early
                # after any prior ingest.
                payload = client.wait_processed(
                    sid, payload["ingested"], timeout=args.timeout)
        elif args.action == "reports":
            payload = client.reports(_require_id(), since=args.since)
        elif args.action == "metrics":
            payload = client.session_metrics(_require_id())
        elif args.action == "suspend":
            payload = client.suspend(_require_id())
        elif args.action == "resume":
            payload = client.resume(_require_id())
        elif args.action == "close":
            payload = client.close_session(_require_id())
        elif args.action == "result":
            payload = client.result(_require_id())
        elif args.action == "delete":
            payload = client.delete_session(_require_id())
        else:  # shutdown
            payload = client.shutdown()
    except ServiceUnavailable as problem:
        print(problem, file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"error [{error.code}] {error.message}", file=sys.stderr)
        return 1
    print(_json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _verify_predictors(args, predictors: tuple[str, ...]) -> bool:
    """The zoo legs of ``verify --predictor``; returns True on failure.

    Three gates per selected registry entry: the conformance battery,
    the lockstep differential oracle (zoo entries with a reference model,
    plus the zoo mutation drill proving that oracle has teeth), and the
    per-predictor golden baseline.
    """
    from pathlib import Path

    from repro.predictors.conformance import (
        CONFORMANCE_CHECKS,
        conformance_problems,
    )
    from repro.predictors.differential import lockstep, lockstep_names
    from repro.predictors.differential import (
        mutation_drill as zoo_mutation_drill,
    )
    from repro.predictors.golden import (
        compare_predictor_baseline,
        load_baseline,
    )

    failed = False
    for name in predictors:
        problems = conformance_problems(name)
        if problems:
            for problem in problems:
                print(f"conformance[{name}]: {problem}", file=sys.stderr)
            failed = True
        else:
            print(f"conformance[{name}]: {len(CONFORMANCE_CHECKS)} "
                  f"checks passed")

    lockstepped = tuple(name for name in predictors
                        if name in lockstep_names())
    if not args.skip_mutation_drill and lockstepped:
        problems = zoo_mutation_drill(names=lockstepped)
        if problems:
            for problem in problems:
                print(f"zoo mutation drill: {problem}", file=sys.stderr)
            failed = True
        else:
            print(f"zoo mutation drill: {len(lockstepped)} oracle(s) "
                  f"caught the sabotaged LRU promotion")

    if not args.skip_differential:
        from repro.audit.fuzz import build_trace
        from repro.workloads.adversarial import corpus_trace

        for name in lockstepped:
            for trace in (build_trace(11, 1200), corpus_trace(13, 600)):
                result = lockstep(name, trace)
                print(f"zoo differential: {result.report()}")
                if result.diverged:
                    failed = True

    if not args.skip_golden:
        baseline = load_baseline(Path(args.predictor_golden))
        problems = compare_predictor_baseline(
            baseline, jobs=args.jobs, predictors=predictors)
        if problems:
            for problem in problems:
                print(f"predictor golden: {problem}", file=sys.stderr)
            failed = True
        else:
            cells = sum(len(block) for name, block
                        in baseline.get("predictors", {}).items()
                        if name in predictors)
            print(f"predictor golden baseline: {len(predictors)} "
                  f"predictor(s), {cells} cell(s) within tolerance "
                  f"(scale {baseline['scale']}, {args.predictor_golden})")
    return failed


def _cmd_verify(args) -> int:
    from pathlib import Path

    from repro.oracle import mutation_drill, run_campaign
    from repro.oracle.golden import (
        build_baseline,
        compare_baseline,
        compare_parallel,
        load_baseline,
        write_baseline,
    )

    predictors = None
    if args.predictor:
        from repro.predictors.registry import predictor_info, predictor_names

        if "all" in args.predictor:
            predictors = predictor_names()
        else:
            predictors = tuple(
                predictor_info(name).name for name in args.predictor)

    golden_path = Path(args.golden)
    if args.update_golden:
        if predictors is not None:
            from repro.predictors.golden import build_predictor_baseline

            baseline = build_predictor_baseline(
                scale=args.golden_scale, jobs=args.jobs)
            write_baseline(Path(args.predictor_golden), baseline)
            print(f"wrote predictor golden baseline: "
                  f"{len(baseline['predictors'])} predictors at scale "
                  f"{baseline['scale']} -> {args.predictor_golden}")
            return 0
        baseline = build_baseline(scale=args.golden_scale, jobs=args.jobs)
        write_baseline(golden_path, baseline)
        print(f"wrote golden baseline: {len(baseline['workloads'])} "
              f"workloads at scale {baseline['scale']} -> {golden_path}")
        return 0

    failed = False
    if not args.skip_mutation_drill:
        drill = mutation_drill()
        if drill is None:
            print("mutation drill: FAILED — the seeded LRU mutation went "
                  "undetected; the oracle is not checking what it claims",
                  file=sys.stderr)
            failed = True
        else:
            print("mutation drill: caught the seeded LRU mutation")
            for line in drill.report().splitlines():
                print(f"  {line}")

    if not args.skip_differential:
        for result in run_campaign(scale=args.scale, jobs=args.jobs):
            print(f"differential: {result.report()}")
            if result.diverged:
                failed = True

    workloads = (
        tuple(workload_by_name(name).name for name in args.workloads)
        if args.workloads else None
    )
    if not args.skip_golden:
        baseline = load_baseline(golden_path)
        engines = (("object", "batched") if args.engine == "both"
                   else (args.engine,))
        for engine in engines:
            problems = compare_baseline(baseline, jobs=args.jobs,
                                        workloads=workloads,
                                        engine_mode=engine)
            if problems:
                for problem in problems:
                    print(f"golden[{engine}]: {problem}", file=sys.stderr)
                failed = True
            else:
                checked = (len(baseline["workloads"])
                           if workloads is None else len(workloads))
                print(f"golden baseline[{engine}]: {checked} workload(s) "
                      f"within tolerance (scale {baseline['scale']}, "
                      f"{golden_path})")

    if not args.skip_parallel:
        problems = compare_parallel(jobs=args.jobs, workloads=workloads,
                                    intervals=args.parallel_intervals,
                                    backend=args.backend)
        if problems:
            for problem in problems:
                print(f"parallel: {problem}", file=sys.stderr)
            failed = True
        else:
            checked = len(workloads) if workloads else len(TABLE4_WORKLOADS)
            print(f"parallel gate: {checked} workload(s) bit-identical "
                  f"serial vs {args.parallel_intervals} checkpoint-parallel "
                  f"slices")

    if predictors is not None:
        failed = _verify_predictors(args, predictors) or failed

    if failed:
        print("verify: FAILED", file=sys.stderr)
        return 1
    print("verify: all gates passed")
    return 0


def _cmd_ablation(args) -> int:
    from repro.experiments.ablation import (
        ABLATION_WORKLOADS,
        ablation_payload,
        ablation_results,
        render_ablation,
    )

    workloads = (tuple(args.workloads) if args.workloads
                 else ABLATION_WORKLOADS)
    predictors = tuple(args.predictors) if args.predictors else None
    cells = ablation_results(workloads=workloads, predictors=predictors,
                             scale=args.scale, jobs=args.jobs)
    print(render_ablation(cells))
    if args.json:
        import json as _json

        with open(args.json, "w") as handle:
            _json.dump(ablation_payload(cells), handle,
                       indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote ablation grid ({len(cells)} cells) to {args.json}")
    return 0


def _add_sampling_arguments(parser: argparse.ArgumentParser) -> None:
    """Plan-geometry flags shared by ``simulate --sampled``/``checkpoint``.

    Defaults mirror :class:`repro.sampling.SamplingPlan`.
    """
    parser.add_argument(
        "--interval", type=int, default=1000, metavar="N",
        help="measured records per interval (default: 1000)",
    )
    parser.add_argument(
        "--period", type=int, default=20000, metavar="N",
        help="records per sampling period; one interval each (default: 20000)",
    )
    parser.add_argument(
        "--warmup", type=int, default=1000, metavar="N",
        help="detailed-but-unmeasured records before each interval "
             "(default: 1000)",
    )
    parser.add_argument(
        "--sampling-mode", choices=("systematic", "stratified"),
        default="stratified",
        help="interval placement within each period (default: stratified)",
    )
    parser.add_argument(
        "--sampling-seed", type=int, default=12345, metavar="SEED",
        help="stratified offset-selection seed (default: 12345)",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for simulation runs "
             "(default: $REPRO_JOBS or serial; 0 = one per CPU)",
    )


def _add_audit_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--audit", action="store_true",
        help="run every simulation under the runtime invariant auditor "
             "(slower; fails loudly on the first violated invariant)",
    )


def _apply_audit_env(args) -> None:
    """Turn ``--audit`` into the ``REPRO_AUDIT`` environment variable.

    The env var (not a threaded flag) is what reaches ``run_workload`` in
    this process *and* in any pool worker, so one switch audits every
    simulation a figure or report performs.
    """
    if getattr(args, "audit", False):
        os.environ[AUDIT_ENV] = "1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two Level Bulk Preload Branch Prediction — reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the Table 4 workload catalog")

    simulate = sub.add_parser("simulate", help="simulate one workload")
    simulate.add_argument("workload", help="catalog name (substring match)")
    simulate.add_argument(
        "--configs", nargs="+", choices=sorted(CONFIGS), default=["1", "2"],
        help="Table 3 configurations to run (default: 1 2)",
    )
    simulate.add_argument("--scale", type=float, default=0.35)
    simulate.add_argument(
        "--engine", choices=ENGINE_MODES, default="auto",
        help="simulation engine: 'object' is the per-record reference, "
             "'batched' the chunked fast path (bit-identical), 'auto' "
             "picks batched unless an observer flag needs per-record hooks "
             "(default: auto)",
    )
    _add_audit_argument(simulate)
    simulate.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the structured event trace as JSONL to PATH "
             "(suffixed per config when several run)",
    )
    simulate.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON (Perfetto-loadable) to PATH",
    )
    simulate.add_argument(
        "--sample", metavar="PATH", default=None,
        help="sample occupancy/rates every --sample-interval cycles and "
             "write the timeline CSV to PATH",
    )
    simulate.add_argument(
        "--sample-interval", type=int, default=1024, metavar="CYCLES",
        help="cycles between timeline samples (default: 1024)",
    )
    simulate.add_argument(
        "--profile", type=int, nargs="?", const=10, default=None, metavar="K",
        help="print the top-K per-branch penalty profile (default K: 10)",
    )
    simulate.add_argument(
        "--sampled", action="store_true",
        help="interval sampling: functional-warm between measured intervals "
             "and extrapolate whole-trace estimates with confidence intervals",
    )
    _add_sampling_arguments(simulate)
    simulate.add_argument(
        "--max-ci", type=float, default=DEFAULT_CI_BOUND, metavar="BOUND",
        help="refuse sampled estimates whose 95%% CI exceeds this bound "
             f"(default: {DEFAULT_CI_BOUND})",
    )
    simulate.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="checkpoint store for sampled runs: warmed interval states are "
             "saved on first run and reused afterwards",
    )
    simulate.add_argument(
        "--parallel-intervals", type=int, default=None, metavar="K",
        help="checkpoint-parallel simulation: cut the trace into K slices "
             "resumed from exact boundary checkpoints and fanned out over "
             "--backend (bit-identical to serial; with --sampled, runs the "
             "sampling plan's intervals in K chunks instead)",
    )
    simulate.add_argument(
        "--backend", choices=("serial", "thread", "process"), default=None,
        help="execution backend for the parallel fan-out "
             "(default: $REPRO_BACKEND or process)",
    )
    simulate.add_argument(
        "--relay-dir", metavar="DIR", default=None,
        help="telemetry relay directory for parallel runs: workers stream "
             "per-slice event shards there and --trace/--chrome-trace "
             "export the merged multi-lane timeline (implied by those "
             "flags under --parallel-intervals)",
    )
    simulate.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the run's metrics snapshot (merged across workers for "
             "parallel runs) as JSON to PATH",
    )
    simulate.add_argument(
        "--predictor", metavar="NAME", default="paper",
        help="predictor registry entry to simulate (default: paper — the "
             "two-level bulk-preload stack; zoo entries run full detail "
             "only: no --sampled/--parallel-intervals/--engine fast path)",
    )

    checkpoint = sub.add_parser(
        "checkpoint", help="manage warmed-state checkpoints for sampled runs"
    )
    checkpoint.add_argument(
        "action", choices=("create", "list", "clear"),
        help="create (run one sampled pass saving every interval state), "
             "list, or clear the store",
    )
    checkpoint.add_argument(
        "workload", nargs="?", default=None,
        help="catalog name (substring match; required for create)",
    )
    checkpoint.add_argument(
        "--dir", required=True, metavar="DIR",
        help="checkpoint store directory",
    )
    checkpoint.add_argument(
        "--config", choices=sorted(CONFIGS), default="2",
        help="Table 3 configuration to warm (default: 2)",
    )
    checkpoint.add_argument("--scale", type=float, default=0.35)
    _add_sampling_arguments(checkpoint)
    _add_audit_argument(checkpoint)

    sub.add_parser("tables", help="print tables 1, 2, 3 and 5")

    figure = sub.add_parser("figure", help="regenerate one figure")
    figure.add_argument("number", type=int, choices=range(2, 8))
    figure.add_argument("--scale", type=float, default=0.35)
    _add_jobs_argument(figure)
    _add_audit_argument(figure)

    report = sub.add_parser(
        "report", help="regenerate the full paper-vs-measured report"
    )
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--sweep-scale", type=float, default=0.35)
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument(
        "--progress", metavar="STATUS_FILE", nargs="?", const="",
        default=None,
        help="heartbeat run progress into a status-board file watchable "
             "with `repro top` (default file: <output>.status.jsonl)",
    )
    _add_jobs_argument(report)
    _add_audit_argument(report)

    serve = sub.add_parser(
        "serve", help="run the long-lived simulation service daemon"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8753,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: 8753)")
    serve.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default="thread",
        help="worker pool dispatching session chunks (default: thread)")
    serve.add_argument("--jobs", type=int, default=4,
                       help="worker pool width (default: 4)")
    serve.add_argument(
        "--spool", metavar="DIR", default=None,
        help="checkpoint spool directory enabling suspend/resume, idle "
             "eviction and graceful drain (default: disabled)")
    serve.add_argument(
        "--spool-max-entries", type=int, default=None, metavar="N",
        help="prune the spool to at most N checkpoints during idle sweeps")
    serve.add_argument("--queue-records", type=int, default=65536,
                       help="per-session ingest queue depth in records "
                            "(default: 65536)")
    serve.add_argument("--chunk-records", type=int, default=4096,
                       help="records advanced per dispatched chunk "
                            "(default: 4096)")
    serve.add_argument("--idle-timeout", type=float, default=300.0,
                       help="seconds of inactivity before an idle session "
                            "is evicted to the spool (default: 300)")
    serve.add_argument("--sweep-interval", type=float, default=5.0,
                       help="housekeeping period in seconds (default: 5)")
    serve.add_argument("--max-sessions", type=int, default=4096,
                       help="registered-session cap (default: 4096)")

    session = sub.add_parser(
        "session", help="talk to a running simulation service daemon"
    )
    session.add_argument(
        "action",
        choices=("create", "list", "status", "ingest", "reports", "metrics",
                 "suspend", "resume", "close", "result", "delete",
                 "shutdown"),
        help="what to do against the daemon")
    session.add_argument("id", nargs="?", default=None,
                         help="session id (required by per-session actions)")
    session.add_argument("--host", default="127.0.0.1")
    session.add_argument("--port", type=int, default=8753)
    session.add_argument("--config", choices=sorted(CONFIGS), default="2",
                         help="Table 3 configuration for create "
                              "(default: 2)")
    session.add_argument("--engine", choices=ENGINE_MODES, default="auto",
                         help="engine mode for create (default: auto)")
    session.add_argument("--label", default="",
                         help="free-form session label for create")
    session.add_argument("--workload", default=None,
                         help="catalog workload to ingest (substring match)")
    session.add_argument("--scale", type=float, default=0.35,
                         help="workload trace scale for ingest "
                              "(default: 0.35)")
    session.add_argument("--trace-file", metavar="PATH", default=None,
                         help="packed .ztrc trace file to ingest instead of "
                              "a catalog workload")
    session.add_argument("--one-shot", action="store_true",
                         help="ingest as a single body instead of a "
                              "kept-open chunked stream")
    session.add_argument("--ndjson", action="store_true",
                         help="with --one-shot: send NDJSON instead of "
                              "packed binary records")
    session.add_argument("--chunk-records", type=int, default=1024,
                         help="records per streamed chunk (default: 1024)")
    session.add_argument("--wait", action="store_true",
                         help="after ingest, poll until every accepted "
                              "record is simulated and print the status")
    session.add_argument("--timeout", type=float, default=120.0,
                         help="--wait timeout in seconds (default: 120)")
    session.add_argument("--since", type=int, default=0,
                         help="reports: return chunk reports with sequence "
                              "number above this (default: 0)")

    top = sub.add_parser(
        "top", help="live monitor of a running batch session's status board"
    )
    top.add_argument(
        "--status", metavar="PATH", default=None,
        help="status-board file to tail (default: $REPRO_STATUS)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between redraws (default: 1.0)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render the current state once and exit",
    )
    top.add_argument(
        "--width", type=int, default=100,
        help="panel width in characters (default: 100)",
    )

    timeline = sub.add_parser(
        "timeline", help="ASCII time-series of one instrumented run"
    )
    timeline.add_argument("workload", help="catalog name (substring match)")
    timeline.add_argument(
        "--config", choices=sorted(CONFIGS), default="2",
        help="Table 3 configuration to run (default: 2)",
    )
    timeline.add_argument("--scale", type=float, default=0.35)
    timeline.add_argument(
        "--interval", type=int, default=1024, metavar="CYCLES",
        help="cycles between samples (default: 1024)",
    )
    timeline.add_argument(
        "--width", type=int, default=64,
        help="sparkline width in characters (default: 64)",
    )
    timeline.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the sampled columns as CSV to PATH",
    )
    _add_audit_argument(timeline)

    profile = sub.add_parser(
        "profile", help="top-K per-branch penalty profile of one run"
    )
    profile.add_argument("workload", help="catalog name (substring match)")
    profile.add_argument(
        "--config", choices=sorted(CONFIGS), default="2",
        help="Table 3 configuration to run (default: 2)",
    )
    profile.add_argument("--scale", type=float, default=0.35)
    profile.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="branches to show (default: 10)",
    )
    _add_audit_argument(profile)

    verify = sub.add_parser(
        "verify", help="conformance gate: mutation drill, differential "
                       "oracle, golden baseline"
    )
    verify.add_argument(
        "--scale", type=float, default=0.01,
        help="workload scale for the differential campaign (default: 0.01)",
    )
    verify.add_argument(
        "--golden", metavar="PATH", default="tests/golden/workloads.json",
        help="golden baseline file (default: tests/golden/workloads.json)",
    )
    verify.add_argument(
        "--update-golden", action="store_true",
        help="re-measure every workload and rewrite the golden baseline "
             "instead of checking against it",
    )
    verify.add_argument(
        "--golden-scale", type=float, default=0.02,
        help="scale recorded into a regenerated baseline (default: 0.02)",
    )
    verify.add_argument(
        "--workloads", nargs="+", metavar="NAME", default=None,
        help="restrict the golden gate to these workloads "
             "(substring match; default: all recorded)",
    )
    verify.add_argument(
        "--engine", choices=("object", "batched", "both"), default="both",
        help="engine(s) the golden gate re-measures with; 'both' doubles "
             "as the engine bit-identity check (default: both; the "
             "differential campaign always uses the object engine — the "
             "lockstep probe needs per-record hooks)",
    )
    verify.add_argument(
        "--skip-differential", action="store_true",
        help="skip the lockstep differential campaign",
    )
    verify.add_argument(
        "--skip-golden", action="store_true",
        help="skip the golden-baseline gate",
    )
    verify.add_argument(
        "--skip-mutation-drill", action="store_true",
        help="skip the seeded-mutation self-check of the oracle",
    )
    verify.add_argument(
        "--skip-parallel", action="store_true",
        help="skip the serial-vs-checkpoint-parallel bit-identity gate",
    )
    verify.add_argument(
        "--parallel-intervals", type=int, default=4, metavar="K",
        help="slice count the parallel gate cuts each trace into "
             "(default: 4)",
    )
    verify.add_argument(
        "--backend", choices=("serial", "thread", "process"), default=None,
        help="execution backend for the parallel gate's fan-out "
             "(default: $REPRO_BACKEND or process)",
    )
    verify.add_argument(
        "--predictor", nargs="+", metavar="NAME", default=None,
        help="extend the gate to these predictor-zoo registry entries "
             "('all' = the whole registry): conformance battery, "
             "zoo lockstep + mutation drill, per-predictor golden "
             "baseline; with --update-golden, regenerates the predictor "
             "baseline instead of the workload one",
    )
    verify.add_argument(
        "--predictor-golden", metavar="PATH",
        default="tests/golden/predictors.json",
        help="per-predictor golden baseline file "
             "(default: tests/golden/predictors.json)",
    )
    _add_jobs_argument(verify)

    ablation = sub.add_parser(
        "ablation", help="compare every registered predictor over a shared "
                         "workload slate"
    )
    ablation.add_argument(
        "--workloads", nargs="+", metavar="NAME", default=None,
        help="workload slate (catalog substring match, adversarial "
             "included; default: the standard 5-workload slate)",
    )
    ablation.add_argument(
        "--predictors", nargs="+", metavar="NAME", default=None,
        help="predictors to compare (default: every registry entry)",
    )
    ablation.add_argument(
        "--scale", type=float, default=0.02,
        help="trace scale for every cell (default: 0.02)",
    )
    ablation.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the grid + per-predictor geomeans as JSON to PATH "
             "(the nightly CI artifact)",
    )
    _add_jobs_argument(ablation)
    _add_audit_argument(ablation)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_audit_env(args)
    handlers = {
        "workloads": _cmd_workloads,
        "simulate": _cmd_simulate,
        "checkpoint": _cmd_checkpoint,
        "tables": _cmd_tables,
        "figure": _cmd_figure,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "session": _cmd_session,
        "top": _cmd_top,
        "timeline": _cmd_timeline,
        "profile": _cmd_profile,
        "verify": _cmd_verify,
        "ablation": _cmd_ablation,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
