"""Wire protocol of the simulation service.

Everything client and server must agree on, with no dependency on the
server's runtime machinery so the client library stays import-light:

* :class:`ServiceError` — the typed JSON error envelope.  Every failure a
  request can provoke maps to one ``(HTTP status, stable code)`` pair and
  renders as ``{"error": {"code": ..., "message": ...}}``; the daemon
  never answers a malformed or out-of-order request with a crash or a
  bare traceback.
* Record encodings — two content types for trace ingest:
  ``application/x-repro-trace`` is the packed 20-byte record form of
  :mod:`repro.trace.writer` (headerless: a live stream has no up-front
  count), decoded incrementally by
  :class:`repro.trace.reader.TraceStreamDecoder`;
  ``application/x-ndjson`` is one JSON object per line for hand-rolled
  clients.
* :class:`ServiceLimits` — the knobs bounding a daemon: ingest queue
  depth (backpressure), chunk size, request body caps, idle eviction.
* Session state names (:data:`SESSION_STATES`) and the subset of
  transitions the manager accepts; anything else is an
  ``invalid_state`` error, pinned by the out-of-order-operation tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord
from repro.trace.writer import pack_record

#: Content type of packed binary record streams (headerless RECORD structs).
CONTENT_TYPE_BINARY = "application/x-repro-trace"
#: Content type of newline-delimited JSON record streams.
CONTENT_TYPE_NDJSON = "application/x-ndjson"
#: Content type of every response body and JSON request body.
CONTENT_TYPE_JSON = "application/json"

#: Session lifecycle states.  ``suspending``/``closing`` are transient
#: (an operation is draining the queue); ``suspended``/``closed``/
#: ``failed`` are the stable ones clients see between operations.
SESSION_STATES = ("active", "suspending", "suspended",
                  "closing", "closed", "failed")


class ServiceError(Exception):
    """A typed, JSON-renderable request failure.

    ``status`` is the HTTP status code, ``code`` a stable machine-readable
    string (clients switch on it, tests pin it), ``message`` the human
    line.  ``retry_after`` (seconds) rides along on backpressure errors.
    """

    def __init__(self, status: int, code: str, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def payload(self) -> dict:
        """The JSON error envelope for this failure."""
        error: dict = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"error": error}

    # -- constructors for the taxonomy ------------------------------------

    @classmethod
    def bad_request(cls, message: str) -> "ServiceError":
        """400: a syntactically or semantically malformed request."""
        return cls(400, "bad_request", message)

    @classmethod
    def partial_record(cls, pending: int, kept: int) -> "ServiceError":
        """400: an ingest body ended mid-record (complete records kept)."""
        return cls(
            400, "partial_record",
            f"ingest body ended mid-record ({pending} trailing byte(s)); "
            f"{kept} complete record(s) before the tear were accepted",
        )

    @classmethod
    def unknown_session(cls, session_id: str) -> "ServiceError":
        """404: no session with this id (never created, or deleted)."""
        return cls(404, "unknown_session", f"no session {session_id!r}")

    @classmethod
    def not_found(cls, target: str) -> "ServiceError":
        """404: no such route."""
        return cls(404, "not_found", f"no route {target!r}")

    @classmethod
    def invalid_state(cls, message: str) -> "ServiceError":
        """409: the operation does not apply to the session's state."""
        return cls(409, "invalid_state", message)

    @classmethod
    def too_large(cls, message: str) -> "ServiceError":
        """413: a request or chunk exceeded the configured byte caps."""
        return cls(413, "too_large", message)

    @classmethod
    def saturated(cls, message: str, retry_after: float) -> "ServiceError":
        """429: the ingest queue is full; retry after backoff."""
        return cls(429, "saturated", message, retry_after=retry_after)

    @classmethod
    def draining(cls) -> "ServiceError":
        """503: the daemon is shutting down and takes no new work."""
        return cls(503, "draining", "daemon is draining for shutdown")

    @classmethod
    def internal(cls, message: str) -> "ServiceError":
        """500: an unexpected failure (the daemon stays up regardless)."""
        return cls(500, "internal", message)


@dataclass(frozen=True)
class ServiceLimits:
    """Resource bounds of one daemon instance.

    The defaults suit tests and a single-host deployment; production
    tuning guidance lives in docs/SERVICE.md.
    """

    #: Per-session ingest queue capacity, in records.  A one-shot ingest
    #: that finds the queue full is answered 429 + ``retry_after``; a
    #: kept-open streaming ingest blocks (TCP backpressure) instead.
    queue_records: int = 65536
    #: Records advanced per dispatched chunk — the multiplexing quantum.
    chunk_records: int = 4096
    #: Hard cap on any single request body.
    max_body_bytes: int = 8 << 20
    #: Hard cap on one transfer-encoding chunk (oversized-chunk rejection).
    max_chunk_bytes: int = 1 << 20
    #: Seconds of inactivity before an idle in-memory session is evicted
    #: (suspended) to the checkpoint spool.
    idle_timeout: float = 300.0
    #: Dispatcher housekeeping period (idle sweep, prune) in seconds.
    sweep_interval: float = 5.0
    #: Per-chunk reports kept for ``GET /sessions/{id}/reports``.
    reports_kept: int = 256
    #: Registered sessions (any state) a daemon will hold at once.
    max_sessions: int = 4096

    def __post_init__(self) -> None:
        """Reject non-positive bounds up front."""
        for name in ("queue_records", "chunk_records", "max_body_bytes",
                     "max_chunk_bytes", "reports_kept", "max_sessions"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


#: JSON names of branch kinds (``null`` means "not a branch").
_KIND_NAMES = {kind: kind.value for kind in BranchKind}
_NAME_KINDS = {kind.value: kind for kind in BranchKind}


def record_to_json(record: TraceRecord) -> dict:
    """One trace record as its NDJSON object form."""
    return {
        "address": record.address,
        "length": record.length,
        "kind": _KIND_NAMES[record.kind] if record.kind is not None else None,
        "taken": record.taken,
        "target": record.target,
    }


def record_from_json(payload: object) -> TraceRecord:
    """Parse one NDJSON record object; typed errors on malformed input."""
    if not isinstance(payload, dict):
        raise ServiceError.bad_request(
            f"record must be a JSON object, got {type(payload).__name__}")
    try:
        address = payload["address"]
        length = payload["length"]
    except KeyError as missing:
        raise ServiceError.bad_request(
            f"record is missing required field {missing.args[0]!r}"
        ) from None
    if not isinstance(address, int) or not isinstance(length, int):
        raise ServiceError.bad_request(
            "record 'address' and 'length' must be integers")
    kind_name = payload.get("kind")
    if kind_name is None:
        kind = None
    else:
        kind = _NAME_KINDS.get(kind_name)
        if kind is None:
            raise ServiceError.bad_request(
                f"unknown branch kind {kind_name!r}; "
                f"expected one of {sorted(_NAME_KINDS)} or null")
    taken = payload.get("taken", False)
    target = payload.get("target")
    if not isinstance(taken, bool):
        raise ServiceError.bad_request("record 'taken' must be a boolean")
    if target is not None and not isinstance(target, int):
        raise ServiceError.bad_request(
            "record 'target' must be an integer or null")
    record = TraceRecord(address=address, length=length, kind=kind,
                         taken=taken, target=target)
    try:
        record.validate()
    except ValueError as problem:
        raise ServiceError.bad_request(str(problem)) from None
    return record


def encode_records(records) -> bytes:
    """Pack ``records`` into the binary ingest wire form (headerless)."""
    return b"".join(pack_record(record) for record in records)


def encode_records_ndjson(records) -> bytes:
    """Encode ``records`` as NDJSON ingest bytes."""
    return "".join(
        json.dumps(record_to_json(record), separators=(",", ":")) + "\n"
        for record in records
    ).encode()
