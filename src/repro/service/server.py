"""The simulation daemon: a hand-rolled asyncio HTTP/1.1 server.

``repro serve`` binds this server.  It is deliberately stdlib-only —
:func:`asyncio.start_server` plus a small HTTP/1.1 reader supporting
``Content-Length`` bodies, ``Transfer-Encoding: chunked`` ingest streams,
and keep-alive — because the container bakes in no web framework and the
API surface is small:

====== =============================== =======================================
Method Path                            Meaning
====== =============================== =======================================
GET    ``/healthz``                    liveness + drain state
GET    ``/metrics``                    Prometheus exposition (server + all
                                       sessions, merged)
POST   ``/sessions``                   create a session
GET    ``/sessions``                   list session statuses
GET    ``/sessions/{id}``              one session's status
DELETE ``/sessions/{id}``              forget a session (any state)
POST   ``/sessions/{id}/records``      ingest trace records (binary or
                                       NDJSON; one-shot or chunked stream)
GET    ``/sessions/{id}/reports``      per-chunk reports since ``?since=N``
GET    ``/sessions/{id}/metrics``      one session's metrics JSON snapshot
POST   ``/sessions/{id}/suspend``      drain + snapshot to the spool
POST   ``/sessions/{id}/resume``       reload from the spool
POST   ``/sessions/{id}/close``        drain + ``finish()`` -> final result
GET    ``/sessions/{id}/result``       the final result of a closed session
POST   ``/admin/shutdown``             begin graceful drain (also SIGTERM)
====== =============================== =======================================

Every error is a typed JSON envelope (:class:`ServiceError`); a malformed
request, a torn ingest body, or an out-of-order lifecycle call can never
crash the daemon or leak a traceback to the wire.  Graceful drain — via
SIGTERM, SIGINT, or ``/admin/shutdown`` — stops accepting new work,
simulates every queued record, suspends live sessions to the checkpoint
spool, and only then exits.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from urllib.parse import parse_qs, urlsplit

from repro.sampling import CheckpointStore
from repro.service.protocol import (
    CONTENT_TYPE_BINARY,
    CONTENT_TYPE_JSON,
    CONTENT_TYPE_NDJSON,
    ServiceError,
    ServiceLimits,
    record_from_json,
)
from repro.service.session import SessionManager
from repro.telemetry.metrics import MetricsRegistry
from repro.trace.reader import TraceFormatError, TraceStreamDecoder

#: Reasons a client connection can die mid-request without it being a
#: server bug: TCP resets, pipes closing, and asyncio's torn-read errors.
_CONNECTION_TORN = (ConnectionError, asyncio.IncompleteReadError, BrokenPipeError)

_STATUS_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    409: "Conflict", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _Request:
    """One parsed HTTP request head (body is read by the handler)."""

    def __init__(self, method: str, target: str,
                 headers: dict[str, str]) -> None:
        self.method = method
        self.target = target
        self.headers = headers
        split = urlsplit(target)
        self.path = split.path
        self.query = {key: values[-1]
                      for key, values in parse_qs(split.query).items()}
        #: Whether the request body has been read off the socket in
        #: full.  An error raised while this is still False leaves
        #: unread body bytes on the connection, so keep-alive must be
        #: dropped or the next head parse reads garbage.
        self.body_consumed = (not self.chunked and
                              headers.get("content-length", "0").strip()
                              in ("", "0"))

    @property
    def chunked(self) -> bool:
        """True when the body uses ``Transfer-Encoding: chunked``."""
        return "chunked" in self.headers.get("transfer-encoding", "").lower()

    def content_type(self, default: str = CONTENT_TYPE_JSON) -> str:
        """The media type of the request body (parameters stripped)."""
        raw = self.headers.get("content-type", default)
        return raw.split(";", 1)[0].strip().lower() or default


class ServiceServer:
    """The daemon: HTTP front end over one :class:`SessionManager`.

    ``spool`` (a directory path) enables suspend/resume and graceful
    drain; without it those operations answer a typed 409.  ``port=0``
    binds an ephemeral port — read :attr:`port` after :meth:`start`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 limits: ServiceLimits | None = None,
                 backend: str = "thread", jobs: int = 4,
                 spool=None, spool_max_entries: int | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.host = host
        self.port = port
        self.limits = limits if limits is not None else ServiceLimits()
        self.registry = registry if registry is not None else MetricsRegistry()
        store = CheckpointStore(spool) if spool is not None else None
        self.manager = SessionManager(
            limits=self.limits, backend=backend, jobs=jobs, store=store,
            store_max_entries=spool_max_entries, registry=self.registry)
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()
        self._draining = False
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher (idempotent)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.manager.start()

    def request_shutdown(self) -> None:
        """Begin graceful drain (idempotent; signal-handler safe)."""
        self._draining = True
        self._shutdown.set()

    async def stop(self, *, drain: bool = True) -> None:
        """Close the listener and stop the manager."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.stop(drain=drain)
        # Python < 3.13 Server.close() leaves accepted connections open;
        # cancel idle keep-alive handlers so the loop can wind down clean.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    async def serve(self, *, install_signal_handlers: bool = True) -> None:
        """Run until SIGTERM/SIGINT/``/admin/shutdown``, then drain."""
        await self.start()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, ValueError, RuntimeError):
                    continue
                installed.append(signum)
        try:
            await self._shutdown.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.stop(drain=True)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Serve keep-alive requests on one connection until it closes."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                request = await self._read_head(reader)
                if request is None:
                    break
                keep_alive = await self._handle_request(
                    request, reader, writer)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass  # daemon shutdown reaping an idle keep-alive connection
        except _CONNECTION_TORN:
            self.registry.counter(
                "repro_service_connections_torn_total",
                "client connections dropped mid-request",
            ).inc()
        except ServiceError as error:
            # Head-level failures (oversized head, bad chunk framing).
            try:
                await self._respond_error(writer, error)
            except _CONNECTION_TORN:
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except _CONNECTION_TORN:
                pass

    async def _read_head(self, reader: asyncio.StreamReader) -> _Request | None:
        """Parse one request head; ``None`` on a clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as eof:
            if not eof.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            raise ServiceError.too_large("request head exceeds limit") from None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ServiceError.bad_request(f"malformed request line {lines[0]!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise ServiceError.bad_request(f"malformed header {line!r}")
            headers[name.strip().lower()] = value.strip()
        return _Request(parts[0].upper(), parts[1], headers)

    async def _handle_request(self, request: _Request,
                              reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection."""
        started = time.perf_counter()
        keep_alive = request.headers.get("connection", "").lower() != "close"
        status = 200
        try:
            handled = await self._route(request, reader, writer)
            if handled is not None:  # streaming routes respond themselves
                status, payload, content_type = handled
                await self._respond(writer, status, payload, content_type)
        except ServiceError as error:
            status = error.status
            await self._respond_error(writer, error)
            if error.code == "partial_record" or not request.body_consumed:
                keep_alive = False  # body framing is no longer trustworthy
        except _CONNECTION_TORN:
            raise
        except Exception as problem:  # noqa: BLE001 - daemon must stay up
            status = 500
            await self._respond_error(
                writer,
                ServiceError.internal(f"{type(problem).__name__}: {problem}"))
            keep_alive = False
        self.registry.counter(
            "repro_service_requests_total",
            "HTTP requests by method and status",
            ("method", "code"),
        ).inc(method=request.method, code=str(status))
        self.registry.histogram(
            "repro_service_request_seconds",
            "wall seconds per HTTP request",
        ).observe(time.perf_counter() - started)
        return keep_alive

    # -- body readers ------------------------------------------------------

    async def _read_body(self, request: _Request,
                         reader: asyncio.StreamReader) -> bytes:
        """One-shot body via ``Content-Length`` (capped)."""
        raw = request.headers.get("content-length", "0")
        try:
            length = int(raw)
        except ValueError:
            raise ServiceError.bad_request(
                f"malformed Content-Length {raw!r}") from None
        if length < 0:
            raise ServiceError.bad_request(f"negative Content-Length {length}")
        if length > self.limits.max_body_bytes:
            raise ServiceError.too_large(
                f"body of {length} bytes exceeds the "
                f"{self.limits.max_body_bytes}-byte cap")
        if length == 0:
            request.body_consumed = True
            return b""
        body = await reader.readexactly(length)
        request.body_consumed = True
        return body

    async def _iter_chunks(self, request: _Request,
                           reader: asyncio.StreamReader):
        """Yield ``Transfer-Encoding: chunked`` body chunks (capped)."""
        while True:
            line = await reader.readline()
            if not line:
                raise asyncio.IncompleteReadError(b"", None)
            try:
                size = int(line.split(b";", 1)[0].strip() or b"0", 16)
            except ValueError:
                raise ServiceError.bad_request(
                    f"malformed chunk size line {line!r}") from None
            if size == 0:
                await reader.readline()  # final CRLF; trailers unsupported
                request.body_consumed = True
                return
            if size > self.limits.max_chunk_bytes:
                raise ServiceError.too_large(
                    f"chunk of {size} bytes exceeds the "
                    f"{self.limits.max_chunk_bytes}-byte cap")
            chunk = await reader.readexactly(size)
            await reader.readexactly(2)  # trailing CRLF
            yield chunk

    async def _read_json(self, request: _Request,
                         reader: asyncio.StreamReader) -> dict:
        """A JSON-object request body (empty body -> empty object)."""
        body = await self._read_body(request, reader)
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except ValueError as problem:
            raise ServiceError.bad_request(
                f"request body is not JSON: {problem}") from None
        if not isinstance(payload, dict):
            raise ServiceError.bad_request(
                f"request body must be a JSON object, "
                f"got {type(payload).__name__}")
        return payload

    # -- responses ---------------------------------------------------------

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload, content_type: str = CONTENT_TYPE_JSON,
                       extra: dict[str, str] | None = None) -> None:
        """Write one response (JSON payloads are serialized here)."""
        if isinstance(payload, bytes):
            body = payload
        elif isinstance(payload, str):
            body = payload.encode()
        else:
            body = json.dumps(payload, separators=(",", ":")).encode()
        reason = _STATUS_REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}"]
        for name, value in (extra or {}).items():
            head.append(f"{name}: {value}")
        writer.write("\r\n".join(head).encode() + b"\r\n\r\n" + body)
        await writer.drain()

    async def _respond_error(self, writer: asyncio.StreamWriter,
                             error: ServiceError) -> None:
        """Write one typed JSON error envelope."""
        extra = {}
        if error.retry_after is not None:
            extra["Retry-After"] = f"{error.retry_after:g}"
        await self._respond(writer, error.status, error.payload(),
                            extra=extra)

    # -- routing -----------------------------------------------------------

    async def _route(self, request: _Request,
                     reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter):
        """Dispatch one request; returns ``(status, payload, ctype)``."""
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return 200, {
                "ok": True,
                "draining": self._draining,
                "sessions": len(self.manager.sessions),
            }, CONTENT_TYPE_JSON
        if path == "/metrics" and method == "GET":
            return 200, self._scrape(), "text/plain; version=0.0.4"
        if path == "/admin/shutdown" and method == "POST":
            await self._read_body(request, reader)
            self.request_shutdown()
            return 200, {"ok": True, "draining": True}, CONTENT_TYPE_JSON
        if path == "/sessions" and method == "POST":
            if self._draining:
                raise ServiceError.draining()
            payload = await self._read_json(request, reader)
            session = self.manager.create(
                config_key=payload.get("config", "2"),
                engine_mode=payload.get("engine", "auto"),
                label=payload.get("label", ""),
                session_id=payload.get("id"),
                resume=bool(payload.get("resume", False)))
            return 201, session.status(), CONTENT_TYPE_JSON
        if path == "/sessions" and method == "GET":
            statuses = [session.status()
                        for session in self.manager.sessions.values()]
            return 200, {"sessions": statuses}, CONTENT_TYPE_JSON
        if path.startswith("/sessions/"):
            return await self._route_session(request, reader)
        raise ServiceError.not_found(f"{method} {path}")

    async def _route_session(self, request: _Request,
                             reader: asyncio.StreamReader):
        """Routes under ``/sessions/{id}``."""
        parts = request.path.strip("/").split("/")
        if len(parts) < 2 or not parts[1]:
            raise ServiceError.not_found(request.path)
        session = self.manager.get(parts[1])
        action = parts[2] if len(parts) > 2 else None
        method = request.method
        if len(parts) > 3:
            raise ServiceError.not_found(request.path)
        if action is None:
            if method == "GET":
                return 200, session.status(), CONTENT_TYPE_JSON
            if method == "DELETE":
                await self._read_body(request, reader)
                self.manager.delete(session.id)
                return 200, {"deleted": session.id}, CONTENT_TYPE_JSON
            raise ServiceError.not_found(f"{method} {request.path}")
        if action == "records" and method == "POST":
            if self._draining:
                raise ServiceError.draining()
            return await self._ingest(request, reader, session)
        if action == "reports" and method == "GET":
            try:
                since = int(request.query.get("since", "0"))
            except ValueError:
                raise ServiceError.bad_request(
                    "query parameter 'since' must be an integer") from None
            return 200, self.manager.poll_reports(session, since), \
                CONTENT_TYPE_JSON
        if action == "metrics" and method == "GET":
            return 200, session.registry.snapshot(), CONTENT_TYPE_JSON
        if action == "suspend" and method == "POST":
            await self._read_body(request, reader)
            saved = await self.manager.suspend(session)
            return 200, {**session.status(), **saved}, CONTENT_TYPE_JSON
        if action == "resume" and method == "POST":
            await self._read_body(request, reader)
            await self.manager.resume(session)
            return 200, session.status(), CONTENT_TYPE_JSON
        if action == "close" and method == "POST":
            await self._read_body(request, reader)
            result = await self.manager.close(session)
            return 200, {"status": session.status(), "result": result}, \
                CONTENT_TYPE_JSON
        if action == "result" and method == "GET":
            if session.result is None:
                raise ServiceError.invalid_state(
                    f"session {session.id} is {session.state!r}; "
                    f"close it to produce a result")
            return 200, {"status": session.status(),
                         "result": session.result}, CONTENT_TYPE_JSON
        raise ServiceError.not_found(f"{method} {request.path}")

    # -- ingest ------------------------------------------------------------

    async def _ingest(self, request: _Request,
                      reader: asyncio.StreamReader, session):
        """``POST /sessions/{id}/records``: both ingest shapes.

        A ``Content-Length`` body is a one-shot ingest: decoded in full,
        enqueued all-or-nothing (429 + ``retry_after`` when the queue
        cannot take it).  A chunked body is a kept-open stream: records
        are enqueued as each chunk decodes, and a full queue exerts
        TCP backpressure by pausing the read loop instead of failing.
        A body that ends mid-record keeps every complete record and
        answers a typed ``partial_record`` error.
        """
        content_type = request.content_type(CONTENT_TYPE_BINARY)
        if content_type not in (CONTENT_TYPE_BINARY, CONTENT_TYPE_NDJSON):
            raise ServiceError.bad_request(
                f"unsupported ingest content type {content_type!r}; expected "
                f"{CONTENT_TYPE_BINARY} or {CONTENT_TYPE_NDJSON}")
        binary = content_type == CONTENT_TYPE_BINARY
        decoder = TraceStreamDecoder() if binary else _NdjsonDecoder()
        accepted = 0
        if request.chunked:
            async for chunk in self._iter_chunks(request, reader):
                records = self._decode(decoder, chunk)
                accepted += await self.manager.enqueue(
                    session, records, wait=True)
        else:
            body = await self._read_body(request, reader)
            records = self._decode(decoder, body)
            accepted += await self.manager.enqueue(
                session, records, wait=False)
        if decoder.pending:
            raise ServiceError.partial_record(decoder.pending, accepted)
        return 200, {"accepted": accepted,
                     "ingested": session.ingested,
                     "pending": len(session.pending),
                     "free": self.manager.free_capacity(session)}, \
            CONTENT_TYPE_JSON

    @staticmethod
    def _decode(decoder, data: bytes) -> list:
        """Feed ingest bytes through either decoder; typed errors out."""
        try:
            return decoder.feed(data)
        except TraceFormatError as problem:
            raise ServiceError.bad_request(str(problem)) from None

    # -- metrics -----------------------------------------------------------

    def _scrape(self) -> str:
        """The merged Prometheus exposition: server plus every session."""
        merged = MetricsRegistry()
        merged.merge(self.registry)
        for session in self.manager.sessions.values():
            merged.merge(session.registry)
        return merged.to_prometheus()


class _NdjsonDecoder:
    """Incremental NDJSON record decoder mirroring the binary decoder.

    Buffers a trailing partial line across :meth:`feed` calls; a
    non-empty buffer at end of body is the NDJSON form of a mid-record
    tear.
    """

    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> list:
        """Decode the complete lines in ``data`` (+ buffered remainder)."""
        self._buffer += data
        if b"\n" not in self._buffer:
            return []
        complete, self._buffer = self._buffer.rsplit(b"\n", 1)
        records = []
        for line in complete.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as problem:
                raise ServiceError.bad_request(
                    f"malformed NDJSON record line: {problem}") from None
            records.append(record_from_json(payload))
        return records

    @property
    def pending(self) -> int:
        """Bytes of trailing partial line held back."""
        return len(self._buffer)
