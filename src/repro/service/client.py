"""Blocking client for the simulation daemon (stdlib ``http.client``).

The library behind the ``repro session`` CLI and the service tests.  One
HTTP connection per call keeps the client trivially thread-safe; the
daemon's keep-alive support exists for long-lived streaming ingest, which
:meth:`ServiceClient.stream` uses via chunked transfer encoding.

Errors come back typed: any non-2xx response whose body carries the
service's JSON error envelope re-raises as the matching
:class:`~repro.service.protocol.ServiceError` — same status, code,
message, and ``retry_after`` the daemon produced — so callers switch on
``error.code`` exactly as server-side code does.  A daemon that cannot be
reached at all raises :class:`ServiceUnavailable` instead.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

from repro.service.protocol import (
    CONTENT_TYPE_BINARY,
    CONTENT_TYPE_JSON,
    CONTENT_TYPE_NDJSON,
    ServiceError,
    encode_records,
    encode_records_ndjson,
)


class ServiceUnavailable(ConnectionError):
    """No daemon is answering at the configured address."""


class ServiceClient:
    """A small typed client for one daemon address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str, *, body: bytes | None = None,
                 content_type: str = CONTENT_TYPE_JSON,
                 chunked: bool = False) -> dict:
        """One round trip; decodes the JSON body or raises typed errors."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": content_type}
            connection.request(method, path, body=body, headers=headers,
                               encode_chunked=chunked)
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as problem:
            raise ServiceUnavailable(
                f"no daemon at {self.host}:{self.port}: {problem}"
            ) from problem
        finally:
            connection.close()
        payload = self._decode(response, raw)
        if response.status >= 400:
            error = payload.get("error", {}) if isinstance(payload, dict) \
                else {}
            raise ServiceError(
                response.status,
                error.get("code", "internal"),
                error.get("message", raw.decode(errors="replace")),
                retry_after=error.get("retry_after"))
        return payload

    @staticmethod
    def _decode(response, raw: bytes):
        """The response body: JSON when declared, text otherwise."""
        declared = response.getheader("Content-Type", "")
        if declared.split(";", 1)[0].strip() == CONTENT_TYPE_JSON:
            try:
                return json.loads(raw) if raw else {}
            except ValueError:
                return {}
        return raw.decode(errors="replace")

    # -- server-level calls ------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the Prometheus exposition text."""
        return self._request("GET", "/metrics")

    def shutdown(self) -> dict:
        """``POST /admin/shutdown`` — begin graceful drain."""
        return self._request("POST", "/admin/shutdown")

    # -- session lifecycle -------------------------------------------------

    def create_session(self, config: str = "2", engine: str = "auto",
                       label: str = "", session_id: str | None = None,
                       resume: bool = False) -> dict:
        """Create a session; returns its status (including ``id``).

        ``session_id`` + ``resume=True`` re-registers a session a
        previous daemon suspended to the shared spool (same config and
        engine mode); follow with :meth:`resume` to reload its state.
        """
        payload: dict = {"config": config, "engine": engine, "label": label}
        if session_id is not None:
            payload["id"] = session_id
        if resume:
            payload["resume"] = True
        return self._request("POST", "/sessions",
                             body=json.dumps(payload).encode())

    def list_sessions(self) -> list[dict]:
        """Statuses of every registered session."""
        return self._request("GET", "/sessions")["sessions"]

    def session(self, session_id: str) -> dict:
        """One session's status."""
        return self._request("GET", f"/sessions/{session_id}")

    def delete_session(self, session_id: str) -> dict:
        """Forget a session in any state."""
        return self._request("DELETE", f"/sessions/{session_id}")

    def suspend(self, session_id: str) -> dict:
        """Drain and snapshot a session to the daemon's spool."""
        return self._request("POST", f"/sessions/{session_id}/suspend")

    def resume(self, session_id: str) -> dict:
        """Reload a suspended session from the spool."""
        return self._request("POST", f"/sessions/{session_id}/resume")

    def close_session(self, session_id: str) -> dict:
        """Drain, finish, and return ``{"status", "result"}``."""
        return self._request("POST", f"/sessions/{session_id}/close")

    def result(self, session_id: str) -> dict:
        """The final result of a closed session."""
        return self._request("GET", f"/sessions/{session_id}/result")

    # -- data plane --------------------------------------------------------

    def ingest(self, session_id: str, records, *,
               ndjson: bool = False) -> dict:
        """One-shot ingest (all-or-nothing; 429 + ``retry_after`` raises)."""
        if ndjson:
            body = encode_records_ndjson(records)
            content_type = CONTENT_TYPE_NDJSON
        else:
            body = encode_records(records)
            content_type = CONTENT_TYPE_BINARY
        return self._request("POST", f"/sessions/{session_id}/records",
                             body=body, content_type=content_type)

    def stream(self, session_id: str, records, *,
               chunk_records: int = 1024) -> dict:
        """Streaming ingest over one kept-open chunked request.

        The daemon enqueues each chunk as it decodes and exerts
        backpressure by pausing the read when a queue fills, so this
        call can feed arbitrarily long traces without 429 churn.
        """
        def chunks():
            batch = []
            for record in records:
                batch.append(record)
                if len(batch) >= chunk_records:
                    yield encode_records(batch)
                    batch = []
            if batch:
                yield encode_records(batch)

        return self._request("POST", f"/sessions/{session_id}/records",
                             body=chunks(), content_type=CONTENT_TYPE_BINARY,
                             chunked=True)

    def reports(self, session_id: str, since: int = 0) -> dict:
        """Per-chunk reports with sequence numbers above ``since``."""
        return self._request(
            "GET", f"/sessions/{session_id}/reports?since={since}")

    def session_metrics(self, session_id: str) -> dict:
        """One session's metrics registry snapshot."""
        return self._request("GET", f"/sessions/{session_id}/metrics")

    # -- conveniences ------------------------------------------------------

    def wait_processed(self, session_id: str, count: int, *,
                       timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Poll until ``processed_records >= count`` (or the queue empties
        into a terminal state); returns the last status seen."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.session(session_id)
            if status["processed_records"] >= count:
                return status
            if status["state"] == "failed":
                raise ServiceError.internal(
                    f"session failed while waiting: {status['error']}")
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"session {session_id} processed "
                    f"{status['processed_records']}/{count} records within "
                    f"{timeout}s")
            time.sleep(poll)

    def wait_healthy(self, *, timeout: float = 10.0,
                     poll: float = 0.05) -> dict:
        """Poll ``/healthz`` until the daemon answers (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceUnavailable:
                if time.monotonic() > deadline:
                    raise
                time.sleep(poll)


def _probe_port(host: str, port: int, timeout: float = 0.25) -> bool:
    """True when something is listening at ``host:port`` (CLI probes)."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
