"""Long-running simulation service: async daemon, sessions, client.

The production shape of the reproduction (ROADMAP item 5): instead of one
batch process per trace, ``repro serve`` runs an :mod:`asyncio` daemon that
multiplexes many concurrent *sessions* — each an independent simulation
with its own config, engine mode, and architectural state — over a bounded
worker pool dispatched through the
:class:`~repro.experiments.backends.Backend` seam.  Clients create a
session over a small HTTP/JSON API (stdlib only), stream trace records in
(packed binary or NDJSON, decoded incrementally), poll per-chunk
prediction/counter reports out, and can suspend a session to disk — a
:class:`~repro.sampling.CheckpointStore` ``state_dict`` snapshot — and
resume it later, on the same daemon or after a restart.

Layering:

* :mod:`repro.service.protocol` — wire types: typed JSON errors, record
  encodings, session states, limits;
* :mod:`repro.service.session` — :class:`SessionManager`: lifecycle,
  bounded ingest queues, the chunk dispatcher, suspend/resume, idle
  eviction;
* :mod:`repro.service.server` — the HTTP daemon (asyncio streams, no new
  dependencies) with a Prometheus ``/metrics`` endpoint and graceful
  drain on SIGTERM;
* :mod:`repro.service.client` — the blocking client library behind the
  ``repro session`` CLI.

The parity contract: a trace streamed through the service — in any
fragmentation, with any number of suspend/resume cycles — produces
``SimCounters`` bit-identical to ``repro simulate`` on the same workload
and config.  ``tests/service`` and the CI service smoke assert it.
"""

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.protocol import ServiceError, ServiceLimits
from repro.service.server import ServiceServer
from repro.service.session import Session, SessionManager

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceLimits",
    "ServiceServer",
    "ServiceUnavailable",
    "Session",
    "SessionManager",
]
