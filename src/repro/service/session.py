"""Session multiplexing: many concurrent simulations, one worker pool.

A *session* is one long-lived simulation: a config + engine mode, the
architectural state the trace streamed so far has built, a bounded queue
of not-yet-simulated records, and the per-chunk reports clients poll.
The :class:`SessionManager` owns every session and a single *dispatcher*
coroutine that repeatedly gathers ready sessions, cuts at most
``chunk_records`` off each queue, and fans the chunks out through the
:class:`~repro.experiments.backends.Backend` seam — ``thread`` (default:
chunks mutate live in-memory simulators), ``serial``, or ``process``
(chunks ship ``state_dict`` blobs across the boundary and return the
advanced state, exactly the checkpoint lineage PR 4 proved exact).

Parity contract: a session advances its simulator with the same
per-record ``step`` / batched ``feed`` paths the batch harness uses, and
suspend/resume round-trips state through
:class:`~repro.sampling.CheckpointStore` gzip-JSON snapshots — so the
counters a closed session reports are bit-identical to
:func:`repro.engine.simulator.simulate` over the same records, however
the stream was fragmented or interrupted.  ``tests/service`` pins this.

Concurrency model: every public coroutine runs on the daemon's event
loop; simulation work runs off-loop (executor thread -> backend).  A
session is in at most one in-flight chunk at a time, and the mutating
lifecycle operations (suspend/close) first wait for the queue to drain,
so the live simulator is never touched from two threads at once.
"""

from __future__ import annotations

import asyncio
import secrets
import time
from collections import deque
from dataclasses import dataclass, field

from repro.core.config import PredictorConfig, TABLE3_CONFIGS
from repro.engine.simulator import SimulationResult, Simulator
from repro.experiments.backends import Backend, resolve_backend
from repro.sampling import CheckpointStore
from repro.service.protocol import ServiceError, ServiceLimits
from repro.telemetry.metrics import MetricsRegistry
from repro.trace.record import TraceRecord

#: Table 3 configurations by their CLI key.
CONFIGS: dict[str, PredictorConfig] = {
    str(index + 1): config for index, config in enumerate(TABLE3_CONFIGS)
}

#: Checkpoint-store plan key under which session snapshots are filed
#: (distinct from sampling/parallel lineages sharing a store directory).
SESSION_PLAN_KEY = ("service-session",)


def _serialize_result(result: SimulationResult) -> dict:
    """A finished :class:`SimulationResult` as its JSON wire form."""
    return {
        "config": result.config_name,
        "cpi": result.cpi,
        "bad_outcome_fraction": result.counters.bad_outcome_fraction,
        "counters": result.counters.state_dict(),
        "search_stats": dict(result.search_stats),
        "btbp_stats": dict(result.btbp_stats),
        "btb2_stats": dict(result.btb2_stats),
        "preload_stats": dict(result.preload_stats),
        "icache_stats": dict(result.icache_stats),
    }


@dataclass
class _ChunkTask:
    """One dispatched unit: advance a session by a batch of records.

    Exactly one of ``sim`` (in-process backends: the live simulator,
    mutated in place) and ``state`` (process backend: the session's
    ``state_dict`` blob, ``None`` for a brand-new session) is meaningful;
    the other is ``None``.  Everything but ``sim`` pickles.
    """

    session_id: str
    config: PredictorConfig
    engine_mode: str
    records: list[TraceRecord]
    sim: Simulator | None = None
    state: dict | None = None


@dataclass
class _ChunkOutcome:
    """What one chunk execution produced (or the error it died on)."""

    session_id: str
    records: int = 0
    instructions: int = 0
    branches: int = 0
    bad_outcomes: int = 0
    cycles: float = 0.0
    seconds: float = 0.0
    #: Advanced state blob (process backend only; in-process chunks
    #: mutated the live simulator instead).
    state: dict | None = None
    error: str | None = None


def _advance_chunk(task: _ChunkTask) -> _ChunkOutcome:
    """Worker body: step one session's chunk; module-level so it pickles.

    Uses the object engine's per-record ``step`` or the batched engine's
    chunked ``feed`` according to the session's engine mode — both proven
    bit-identical to a whole-trace run.  Never raises: a failure comes
    back as ``error`` so one poisoned session cannot take down a batch
    of healthy ones.
    """
    started = time.perf_counter()
    try:
        sim = task.sim
        if sim is None:
            sim = Simulator(config=task.config, engine_mode=task.engine_mode)
            if task.state is not None:
                sim.load_state_dict(task.state)
        counters = sim.counters
        before = (counters.instructions, counters.branches,
                  counters.bad_outcomes, sim._cycle)
        if sim.resolved_engine_mode() == "batched":
            from repro.engine.batched import BatchedSimulator

            BatchedSimulator(sim).feed(task.records)
        else:
            step = sim.step
            for record in task.records:
                step(record)
        return _ChunkOutcome(
            session_id=task.session_id,
            records=len(task.records),
            instructions=counters.instructions - before[0],
            branches=counters.branches - before[1],
            bad_outcomes=counters.bad_outcomes - before[2],
            cycles=sim._cycle - before[3],
            seconds=time.perf_counter() - started,
            state=sim.state_dict() if task.sim is None else None,
        )
    except Exception as problem:  # noqa: BLE001 - reported, not raised
        return _ChunkOutcome(
            session_id=task.session_id,
            records=len(task.records),
            seconds=time.perf_counter() - started,
            error=f"{type(problem).__name__}: {problem}",
        )


@dataclass
class Session:
    """One multiplexed simulation and its queue, reports, and metrics."""

    id: str
    config_key: str
    config: PredictorConfig
    engine_mode: str
    label: str = ""
    state: str = "active"
    error: str | None = None
    #: Live simulator (in-process backends, while active).
    sim: Simulator | None = None
    #: Latest advanced state blob (process backend, while active).
    state_blob: dict | None = None
    pending: deque = field(default_factory=deque)
    inflight: bool = False
    created: float = field(default_factory=time.time)
    last_activity: float = field(default_factory=time.monotonic)
    ingested: int = 0
    processed: int = 0
    chunks: int = 0
    suspends: int = 0
    resumes: int = 0
    evictions: int = 0
    instructions: int = 0
    branches: int = 0
    bad_outcomes: int = 0
    cycles: float = 0.0
    result: dict | None = None
    reports: deque = field(default_factory=deque)
    next_seq: int = 0
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def __post_init__(self) -> None:
        """Create the loop-affine coordination events."""
        self._space = asyncio.Event()
        self._space.set()
        self._idle = asyncio.Event()
        self._idle.set()

    @property
    def idle(self) -> bool:
        """True when nothing is queued and nothing is in flight."""
        return not self.pending and not self.inflight

    def touch(self) -> None:
        """Record activity (defers idle eviction)."""
        self.last_activity = time.monotonic()

    def status(self) -> dict:
        """The session's JSON status document (chunk-boundary consistent)."""
        instructions = self.instructions
        return {
            "id": self.id,
            "label": self.label,
            "config": self.config_key,
            "config_name": self.config.name,
            "engine": self.engine_mode,
            "state": self.state,
            "error": self.error,
            "created": self.created,
            "ingested_records": self.ingested,
            "processed_records": self.processed,
            "pending_records": len(self.pending),
            "chunks": self.chunks,
            "suspends": self.suspends,
            "resumes": self.resumes,
            "instructions": instructions,
            "branches": self.branches,
            "bad_outcomes": self.bad_outcomes,
            "cycles": self.cycles,
            "cpi": (self.cycles / instructions) if instructions else 0.0,
        }


class SessionManager:
    """Owns every session plus the dispatcher multiplexing them.

    ``backend`` resolves through the standard registry; the ``process``
    backend switches chunk dispatch to state-shipping mode.  ``store`` is
    the suspend/resume spool (required for suspend, eviction, and
    graceful drain to do anything).  ``registry`` is the server-wide
    metrics registry the HTTP layer also records into.
    """

    def __init__(self, *, limits: ServiceLimits | None = None,
                 backend: "str | Backend | None" = "thread",
                 jobs: int = 4,
                 store: CheckpointStore | None = None,
                 store_max_entries: int | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.limits = limits if limits is not None else ServiceLimits()
        self.backend = resolve_backend(backend)
        self.jobs = max(1, jobs)
        self.store = store
        self.store_max_entries = store_max_entries
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sessions: dict[str, Session] = {}
        self._ship_state = self.backend.name == "process"
        self._work = asyncio.Event()
        self._stopping = False
        self._dispatcher: asyncio.Task | None = None
        self._housekeeping: set[asyncio.Task] = set()

    # -- lifecycle operations (called from request handlers) ---------------

    def _model_fingerprint(self, session: Session) -> str:
        """The checkpoint model key of this session's config/timing."""
        if session.sim is not None:
            return session.sim.model_fingerprint()
        return Simulator(config=session.config,
                         engine_mode=session.engine_mode).model_fingerprint()

    def get(self, session_id: str) -> Session:
        """The session for ``session_id``; typed 404 when unknown."""
        session = self.sessions.get(session_id)
        if session is None:
            raise ServiceError.unknown_session(session_id)
        return session

    def create(self, config_key: str = "2", engine_mode: str = "auto",
               label: str = "", session_id: str | None = None,
               resume: bool = False) -> Session:
        """Register a new session; returns it.

        ``session_id`` pins the identity instead of minting one —
        combined with ``resume=True`` it re-registers a session that a
        previous daemon suspended to the shared spool: the session is
        created directly in the ``suspended`` state (same config and
        engine mode required — the checkpoint key covers them) and a
        normal ``resume`` call reloads its state.
        """
        if self._stopping:
            raise ServiceError.draining()
        if len(self.sessions) >= self.limits.max_sessions:
            raise ServiceError.saturated(
                f"session table full ({self.limits.max_sessions})",
                retry_after=self.limits.sweep_interval,
            )
        config = CONFIGS.get(str(config_key))
        if config is None:
            raise ServiceError.bad_request(
                f"unknown config {config_key!r}; expected one of "
                f"{sorted(CONFIGS)}")
        from repro.engine.batched import ENGINE_MODES

        if engine_mode not in ENGINE_MODES:
            raise ServiceError.bad_request(
                f"unknown engine mode {engine_mode!r}; expected one of "
                f"{sorted(ENGINE_MODES)}")
        if resume and not session_id:
            raise ServiceError.bad_request(
                "resume-create needs the original session id")
        requested = str(session_id) if session_id else secrets.token_hex(8)
        if requested in self.sessions:
            raise ServiceError.invalid_state(
                f"session {requested} already exists")
        session = Session(
            id=requested,
            config_key=str(config_key),
            config=config,
            engine_mode=engine_mode,
            label=str(label or ""),
        )
        if resume:
            session.state = "suspended"
        elif not self._ship_state:
            session.sim = Simulator(config=config, engine_mode=engine_mode)
        session.reports = deque(maxlen=self.limits.reports_kept)
        self.sessions[session.id] = session
        self._count_sessions()
        return session

    def free_capacity(self, session: Session) -> int:
        """Ingest-queue records this session can still accept."""
        return max(0, self.limits.queue_records - len(session.pending))

    def retry_after(self, session: Session) -> float:
        """Suggested client backoff when ``session``'s queue is full."""
        mean = session.registry.histogram(
            "repro_session_chunk_seconds",
            "seconds per dispatched chunk",
        ).mean()
        pending_chunks = max(1, len(session.pending)
                             // self.limits.chunk_records)
        return round(max(0.05, min(30.0, mean * pending_chunks or 1.0)), 3)

    def _require_active(self, session: Session, operation: str) -> None:
        """Typed 409 unless ``session`` accepts ``operation`` right now."""
        if session.state != "active":
            detail = f" ({session.error})" if session.error else ""
            raise ServiceError.invalid_state(
                f"cannot {operation} session {session.id} in state "
                f"{session.state!r}{detail}")

    async def enqueue(self, session: Session, records: list[TraceRecord],
                      *, wait: bool) -> int:
        """Append ``records`` to the session's ingest queue.

        ``wait=False`` (one-shot ingest) is all-or-nothing: a typed 429
        with ``retry_after`` when the whole batch does not fit, so a
        retry never double-ingests.  ``wait=True`` (kept-open streaming
        ingest) blocks until the dispatcher makes room — the natural
        TCP backpressure for a live feed.  Returns the records accepted.

        A draining daemon refuses new records (typed 503), including
        from a kept-open stream that was mid-flight when shutdown began
        — otherwise a live feed could outrun the dispatcher's exit and
        deadlock the graceful drain.
        """
        if self._stopping:
            raise ServiceError.draining()
        self._require_active(session, "ingest into")
        if not records:
            return 0
        session.touch()
        ingested_counter = session.registry.counter(
            "repro_session_ingested_records_total",
            "trace records accepted into the ingest queue",
        )
        if not wait:
            if self.free_capacity(session) < len(records):
                self.registry.counter(
                    "repro_service_backpressure_total",
                    "ingest requests rejected for a full queue",
                ).inc()
                raise ServiceError.saturated(
                    f"session {session.id} ingest queue cannot take "
                    f"{len(records)} record(s) "
                    f"({self.free_capacity(session)} of "
                    f"{self.limits.queue_records} free)",
                    retry_after=self.retry_after(session),
                )
            session.pending.extend(records)
            session.ingested += len(records)
            ingested_counter.inc(len(records))
            session._idle.clear()
            self._work.set()
        else:
            position = 0
            while position < len(records):
                if self._stopping:
                    raise ServiceError.draining()
                free = self.free_capacity(session)
                if free <= 0:
                    session._space.clear()
                    await session._space.wait()
                    self._require_active(session, "ingest into")
                    continue
                batch = records[position:position + free]
                session.pending.extend(batch)
                position += len(batch)
                session.ingested += len(batch)
                ingested_counter.inc(len(batch))
                session._idle.clear()
                self._work.set()
        return len(records)

    def _dispatcher_alive(self) -> bool:
        """Whether the dispatcher task exists and is still running."""
        return self._dispatcher is not None and not self._dispatcher.done()

    async def _wait_drained(self, session: Session) -> None:
        """Block until the session has no queued or in-flight records.

        Fails fast (typed 500) instead of waiting forever when the
        dispatcher that would drain the queue is not running — e.g. a
        suspend racing the final phase of a graceful shutdown.
        """
        while not session.idle:
            if not self._dispatcher_alive():
                raise ServiceError.internal(
                    f"cannot drain session {session.id}: "
                    f"the dispatcher is not running")
            dispatcher = self._dispatcher
            session._idle.clear()
            self._work.set()
            waiter = asyncio.ensure_future(session._idle.wait())
            done, _ = await asyncio.wait(
                {waiter, dispatcher}, return_when=asyncio.FIRST_COMPLETED)
            if waiter not in done:
                waiter.cancel()

    async def _snapshot_state(self, session: Session) -> dict:
        """The session's current ``state_dict`` (off-loop when live)."""
        if session.sim is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, session.sim.state_dict)
        if session.state_blob is not None:
            return session.state_blob
        # Never advanced: snapshot a fresh simulator's initial state.
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            lambda: Simulator(config=session.config,
                              engine_mode=session.engine_mode).state_dict(),
        )

    async def suspend(self, session: Session, *,
                      evicted: bool = False) -> dict:
        """Drain, snapshot to the checkpoint spool, and release memory."""
        self._require_active(session, "suspend")
        if self.store is None:
            raise ServiceError.invalid_state(
                "daemon has no checkpoint spool; suspend is unavailable")
        session.state = "suspending"
        try:
            await self._wait_drained(session)
            if session.error:
                raise ServiceError.invalid_state(
                    f"session {session.id} failed while draining: "
                    f"{session.error}")
            state = await self._snapshot_state(session)
            loop = asyncio.get_running_loop()
            path = await loop.run_in_executor(
                None,
                lambda: self.store.save(
                    self._model_fingerprint(session),
                    f"session:{session.id}", SESSION_PLAN_KEY, 0, state),
            )
        except ServiceError:
            session.state = "failed" if session.error else "active"
            raise
        except Exception as problem:  # noqa: BLE001 - typed to the client
            session.state = "active"
            raise ServiceError.internal(
                f"suspend failed: {type(problem).__name__}: {problem}"
            ) from problem
        session.sim = None
        session.state_blob = None
        session.state = "suspended"
        session.suspends += 1
        session.touch()
        if evicted:
            session.evictions += 1
        session.registry.counter(
            "repro_session_suspends_total",
            "suspend cycles by trigger",
            ("trigger",),
        ).inc(trigger="evicted" if evicted else "requested")
        self.registry.counter(
            "repro_service_suspends_total",
            "session suspends by trigger",
            ("trigger",),
        ).inc(trigger="evicted" if evicted else "requested")
        self._count_sessions()
        return {"checkpoint": str(path)}

    async def resume(self, session: Session) -> None:
        """Reload a suspended session's state from the spool."""
        if session.state != "suspended":
            raise ServiceError.invalid_state(
                f"cannot resume session {session.id} in state "
                f"{session.state!r} (suspend it first)")
        loop = asyncio.get_running_loop()
        state = await loop.run_in_executor(
            None,
            lambda: self.store.load(
                self._model_fingerprint(session),
                f"session:{session.id}", SESSION_PLAN_KEY, 0),
        ) if self.store is not None else None
        if state is None:
            raise ServiceError.invalid_state(
                f"session {session.id} has no readable checkpoint in the "
                f"spool (pruned, cleared, or corrupt)")

        def _rebuild() -> Simulator:
            sim = Simulator(config=session.config,
                            engine_mode=session.engine_mode)
            sim.load_state_dict(state)
            return sim

        try:
            if self._ship_state:
                session.state_blob = state
            else:
                session.sim = await loop.run_in_executor(None, _rebuild)
        except ValueError as problem:
            raise ServiceError.invalid_state(
                f"checkpoint rejected on load: {problem}") from problem
        session.state = "active"
        session.resumes += 1
        session.touch()
        self._count_sessions()
        if session.pending:
            self._work.set()

    async def close(self, session: Session) -> dict:
        """Drain, finish the simulation, and store the final result."""
        if session.state == "suspended":
            await self.resume(session)
        self._require_active(session, "close")
        session.state = "closing"
        try:
            await self._wait_drained(session)
            if session.error:
                raise ServiceError.invalid_state(
                    f"session {session.id} failed while draining: "
                    f"{session.error}")
            loop = asyncio.get_running_loop()

            def _finish() -> SimulationResult:
                sim = session.sim
                if sim is None:
                    sim = Simulator(config=session.config,
                                    engine_mode=session.engine_mode)
                    if session.state_blob is not None:
                        sim.load_state_dict(session.state_blob)
                return sim.finish()

            result = await loop.run_in_executor(None, _finish)
        except ServiceError:
            session.state = "failed" if session.error else "active"
            raise
        except Exception as problem:  # noqa: BLE001 - typed to the client
            session.state = "failed"
            session.error = f"{type(problem).__name__}: {problem}"
            self._count_sessions()
            raise ServiceError.internal(
                f"close failed: {session.error}") from problem
        session.result = _serialize_result(result)
        session.sim = None
        session.state_blob = None
        session.state = "closed"
        session.touch()
        self._count_sessions()
        return session.result

    def delete(self, session_id: str) -> None:
        """Forget a session in any state; drop its spool entry if present."""
        session = self.get(session_id)
        del self.sessions[session_id]
        session.state = "closed"
        session._space.set()
        session._idle.set()
        if self.store is not None:
            path = self.store.path_for(
                self._model_fingerprint(session),
                f"session:{session.id}", SESSION_PLAN_KEY, 0)
            try:
                path.unlink()
            except OSError:
                pass
        self._count_sessions()

    def poll_reports(self, session: Session, since: int = 0) -> dict:
        """Per-chunk reports with ``seq > since`` (the polling stream)."""
        reports = [r for r in session.reports if r["seq"] > since]
        return {"reports": reports, "next": session.next_seq}

    # -- the dispatcher ----------------------------------------------------

    def _has_work(self) -> bool:
        """Whether any session has queued records and a free lane."""
        return any(
            s.state in ("active", "suspending", "closing")
            and s.pending and not s.inflight
            for s in self.sessions.values()
        )

    def _gather_tasks(self) -> list[tuple[Session, _ChunkTask]]:
        """Cut one chunk off every ready session (round-robin fairness)."""
        gathered = []
        for session in self.sessions.values():
            if session.inflight or not session.pending:
                continue
            if session.state not in ("active", "suspending", "closing"):
                continue
            take = min(len(session.pending), self.limits.chunk_records)
            records = [session.pending.popleft() for _ in range(take)]
            session.inflight = True
            task = _ChunkTask(
                session_id=session.id,
                config=session.config,
                engine_mode=session.engine_mode,
                records=records,
            )
            if self._ship_state:
                task.state = session.state_blob
            else:
                task.sim = session.sim
            gathered.append((session, task))
        return gathered

    def _apply(self, session: Session, outcome: _ChunkOutcome) -> None:
        """Fold one finished chunk back into its session."""
        session.inflight = False
        session._space.set()
        if session.idle:
            session._idle.set()
        if outcome.error is not None:
            session.state = "failed"
            session.error = outcome.error
            session.pending.clear()
            session._space.set()
            session._idle.set()
            self.registry.counter(
                "repro_service_session_failures_total",
                "sessions driven to the failed state by a chunk error",
            ).inc()
            self._count_sessions()
            return
        if outcome.state is not None:
            session.state_blob = outcome.state
        session.processed += outcome.records
        session.chunks += 1
        session.instructions += outcome.instructions
        session.branches += outcome.branches
        session.bad_outcomes += outcome.bad_outcomes
        session.cycles += outcome.cycles
        session.touch()
        seq = session.next_seq = session.next_seq + 1
        session.reports.append({
            "seq": seq,
            "records": outcome.records,
            "instructions": outcome.instructions,
            "branches": outcome.branches,
            "bad_outcomes": outcome.bad_outcomes,
            "cycles": outcome.cycles,
            "cpi": (session.cycles / session.instructions
                    if session.instructions else 0.0),
        })
        session.registry.counter(
            "repro_session_processed_records_total",
            "trace records advanced through the engine",
        ).inc(outcome.records)
        session.registry.counter(
            "repro_session_chunks_total", "chunks dispatched",
        ).inc()
        session.registry.histogram(
            "repro_session_chunk_seconds", "seconds per dispatched chunk",
        ).observe(outcome.seconds)
        self.registry.counter(
            "repro_service_records_total",
            "trace records simulated across all sessions",
        ).inc(outcome.records)
        self.registry.counter(
            "repro_service_chunks_total",
            "chunks dispatched across all sessions",
        ).inc()
        self.registry.histogram(
            "repro_service_chunk_seconds",
            "seconds per dispatched chunk",
        ).observe(outcome.seconds)

    async def _dispatch_once(self) -> int:
        """Run one fan-out round; returns the number of chunks executed."""
        gathered = self._gather_tasks()
        if not gathered:
            return 0
        tasks = [task for _, task in gathered]
        loop = asyncio.get_running_loop()
        outcomes = await loop.run_in_executor(
            None, lambda: self.backend.map(_advance_chunk, tasks, self.jobs))
        by_session = {session.id: session for session, _ in gathered}
        for outcome in outcomes:
            session = by_session.get(outcome.session_id)
            if session is not None and session.id in self.sessions:
                self._apply(session, outcome)
        return len(outcomes)

    def _sweep(self) -> None:
        """Housekeeping: evict idle sessions, prune the spool."""
        if self.store is None or self._stopping:
            return
        now = time.monotonic()
        for session in list(self.sessions.values()):
            if (session.state == "active" and session.idle
                    and now - session.last_activity
                    > self.limits.idle_timeout):
                task = asyncio.get_running_loop().create_task(
                    self._evict(session))
                self._housekeeping.add(task)
                task.add_done_callback(self._housekeeping.discard)
        if self.store_max_entries is not None:
            self.store.prune(max_entries=self.store_max_entries)

    async def _evict(self, session: Session) -> None:
        """Suspend one idle session; a losing race is not an error."""
        try:
            await self.suspend(session, evicted=True)
            self.registry.counter(
                "repro_service_evictions_total",
                "idle sessions suspended to the spool",
            ).inc()
        except ServiceError:
            pass

    def _count_sessions(self) -> None:
        """Refresh the per-state session gauge."""
        gauge = self.registry.gauge(
            "repro_service_sessions", "registered sessions by state",
            ("state",),
        )
        counts: dict[str, int] = {state: 0 for state in
                                  ("active", "suspending", "suspended",
                                   "closing", "closed", "failed")}
        for session in self.sessions.values():
            counts[session.state] = counts.get(session.state, 0) + 1
        for state, count in counts.items():
            gauge.set(count, state=state)

    async def run(self) -> None:
        """The dispatcher loop; runs until :meth:`stop` drains it."""
        while True:
            if not self._has_work():
                if self._stopping:
                    return
                try:
                    await asyncio.wait_for(
                        self._work.wait(),
                        timeout=self.limits.sweep_interval)
                except (asyncio.TimeoutError, TimeoutError):
                    pass
                self._work.clear()
                if not self._has_work():
                    self._sweep()
                    continue
            await self._dispatch_once()

    def start(self) -> None:
        """Spawn the dispatcher task on the running loop."""
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self.run())

    async def stop(self, *, drain: bool = True) -> None:
        """Graceful shutdown: drain queues, suspend live sessions.

        With ``drain`` every queued record is simulated first, then every
        active session with a spool is suspended — its state survives the
        daemon and a later ``resume`` continues exactly where the stream
        stopped.  Without ``drain`` the dispatcher is cancelled and
        in-memory state is dropped.
        """
        self._stopping = True
        self._work.set()
        if self._dispatcher is not None:
            if drain:
                await self._dispatcher
            else:
                self._dispatcher.cancel()
                try:
                    await self._dispatcher
                except asyncio.CancelledError:
                    pass
            self._dispatcher = None
        for task in list(self._housekeeping):
            task.cancel()
        if drain:
            # A kept-open stream already past the draining gate can have
            # queued records in the window where the dispatcher saw an
            # empty table and exited; flush them here.  The gate rejects
            # anything newer, so this converges.
            while self._has_work():
                await self._dispatch_once()
            if self.store is not None:
                for session in list(self.sessions.values()):
                    if session.state == "active":
                        try:
                            await self.suspend(session)
                        except ServiceError:
                            pass
