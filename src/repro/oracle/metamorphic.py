"""Metamorphic conformance transforms: model invariances as tests.

Some properties of the model are known *a priori*, independent of any
reference implementation: the simulator computes nothing from absolute
address values except structure indices, tags and folded path hashes, all
of which live in address bits below bit 22.  Relabeling a program by a
multiple of :data:`RELABEL_GRANULE` therefore must not change a single
counter — any drift is an address-handling bug (an absolute-address
comparison, a bit leaking into an index, a cache keyed on raw addresses).

Provided transforms:

* :func:`relabel` — shift every address/target by one aligned offset;
* :func:`permute_regions` — permute the coarse address regions (modules)
  of a multi-region trace, each region moving by its own aligned offset;
* :func:`run_counters` — a full comparable fingerprint of a simulation
  (every counter, penalty and structure statistic), for exact equality
  assertions between transformed runs.

The pytest suite (``tests/oracle/test_metamorphic.py``) combines these
with two further invariances: trace concatenation behaves as a context
switch (simulate(A+B) == resume(snapshot(simulate(A)), B)) and sampled
runs agree with full runs within their reported confidence intervals.
"""

from __future__ import annotations

from repro.core.config import PredictorConfig, ZEC12_CONFIG_2
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import Simulator
from repro.trace.record import TraceRecord

#: Required alignment of relabeling offsets: bit 22 is above every index,
#: tag and fold bit any architected structure consumes (BTB rows ≤ 4096 →
#: address bits 5..16; PHT/CTB tags and folds fold halfword bits 1..16;
#: 32k surprise BHT → bits 1..15; icache sets well below bit 22), so an
#: aligned shift leaves all low-order address arithmetic untouched.
RELABEL_GRANULE = 1 << 22


def relabel(trace: list[TraceRecord], offset: int) -> list[TraceRecord]:
    """Shift every address and target by ``offset`` (granule-aligned)."""
    if offset % RELABEL_GRANULE:
        raise ValueError(
            f"relabel offset must be a multiple of {RELABEL_GRANULE:#x}, "
            f"got {offset:#x}"
        )
    return [
        TraceRecord(
            address=record.address + offset,
            length=record.length,
            kind=record.kind,
            taken=record.taken,
            target=(
                record.target + offset if record.target is not None else None
            ),
        )
        for record in trace
    ]


def permute_regions(
    trace: list[TraceRecord], region_bits: int = 30
) -> list[TraceRecord]:
    """Reverse the order of the trace's coarse address regions (modules).

    Every distinct region (address ``>> region_bits``), in first-seen
    order, is remapped to the reversed region list; low bits are preserved,
    so each region moves by a multiple of the relabel granule.  With one
    region this is the identity; conditional branches must stay within
    their region (calls/returns/indirects are always-taken, so the
    backward-branch heuristic never sees their cross-region targets).
    """
    if region_bits < 22:
        raise ValueError("region_bits below 22 would disturb index bits")
    regions: list[int] = []
    for record in trace:
        for address in (record.address, record.target):
            if address is not None and (address >> region_bits) not in regions:
                regions.append(address >> region_bits)
    mapping = dict(zip(regions, reversed(regions)))
    mask = (1 << region_bits) - 1

    def move(address: int | None) -> int | None:
        if address is None:
            return None
        return (mapping[address >> region_bits] << region_bits) | (
            address & mask
        )

    return [
        TraceRecord(
            address=move(record.address),
            length=record.length,
            kind=record.kind,
            taken=record.taken,
            target=move(record.target),
        )
        for record in trace
    ]


def run_counters(
    trace: list[TraceRecord],
    config: PredictorConfig = ZEC12_CONFIG_2,
    timing: TimingParams = DEFAULT_TIMING,
) -> dict:
    """Address-free fingerprint of one simulation, for exact comparison.

    Everything counted — cycles, outcome taxonomy, penalties, search and
    preload traffic, structure statistics — none of which embeds an
    absolute address, so two behaviorally identical runs of relabeled
    traces produce equal fingerprints.
    """
    simulator = Simulator(config=config, timing=timing)
    result = simulator.run(trace)
    return {
        "counters": result.counters.state_dict(),
        "search": dict(result.search_stats),
        "btbp": dict(result.btbp_stats),
        "btb2": {
            key: value
            for key, value in result.btb2_stats.items()
        },
        "preload": dict(result.preload_stats),
        "icache": dict(result.icache_stats),
    }


def check_relabel_invariance(
    trace: list[TraceRecord],
    config: PredictorConfig = ZEC12_CONFIG_2,
    timing: TimingParams = DEFAULT_TIMING,
    offset: int = 64 * RELABEL_GRANULE,
) -> list[str]:
    """Run ``trace`` and its relabeled twin; return any counter drift."""
    base = run_counters(trace, config, timing)
    moved = run_counters(relabel(trace, offset), config, timing)
    problems = []
    for section in sorted(set(base) | set(moved)):
        if base.get(section) != moved.get(section):
            problems.append(
                f"relabel(+{offset:#x}) changed '{section}': "
                f"{base.get(section)!r} != {moved.get(section)!r}"
            )
    return problems
