"""Golden-baseline regression gate over the workload catalog.

A golden baseline is a JSON snapshot of per-workload end-to-end metrics
(CPI, prediction accuracy, preload traffic) for the full BTB2 configuration
at a pinned scale.  ``repro verify`` re-measures every workload and fails
on any drift outside the recorded tolerances; ``repro verify
--update-golden`` regenerates the file after an *intended* behavior change.

The simulator is deterministic, so the default tolerances are essentially
exact (a relative epsilon absorbs only float-serialization round-trips).
Intentional looseness can be recorded in the file itself — the tolerances
travel with the baseline, not with the checking code.

Measurement goes through :func:`repro.experiments.pool.run_many`, so a
verify pass reuses the shared on-disk result cache and parallelizes across
workloads.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import ZEC12_CONFIG_2, PredictorConfig
from repro.experiments.common import RunResult
from repro.workloads.catalog import TABLE4_WORKLOADS

#: Schema version of the baseline file.
GOLDEN_SCHEMA = 1
#: Scale the baseline is recorded at: floors every catalog workload to its
#: 50k-record minimum, keeping a full verify pass in seconds.
GOLDEN_SCALE = 0.02
#: Default on-repo location of the baseline.
GOLDEN_PATH = Path("tests") / "golden" / "workloads.json"
#: Default tolerances: relative slack on floats (serialization round-trip
#: headroom only — the simulator is deterministic), exact integers.
DEFAULT_TOLERANCES = {"relative": 1e-9}

#: Integer preload counters pinned per workload.
_PRELOAD_KEYS = ("rows_read", "entries_transferred")


def workload_metrics(run: RunResult) -> dict:
    """The per-workload metric block stored in (and checked against) gold."""
    return {
        "cpi": run.cpi,
        "accuracy": 1.0 - run.bad_fraction,
        "bad_outcome_fraction": run.bad_fraction,
        "instructions": run.instructions,
        "branches": run.branches,
        "preload": {
            key: run.preload_stats.get(key, 0) for key in _PRELOAD_KEYS
        },
    }


def measure_workloads(
    scale: float = GOLDEN_SCALE,
    config: PredictorConfig = ZEC12_CONFIG_2,
    jobs: int | None = None,
    workloads: tuple[str, ...] | None = None,
    engine_mode: str = "object",
) -> dict[str, dict]:
    """Measure every catalog workload (cached, parallel); name -> metrics.

    ``engine_mode`` selects the simulation engine; the golden gate run
    under ``batched`` doubles as the engine-equivalence check, since the
    baseline file is recorded by the object engine.
    """
    from repro.experiments.pool import RunSpec, run_many

    specs = [
        RunSpec(workload=spec, config=config, scale=scale,
                engine_mode=engine_mode)
        for spec in TABLE4_WORKLOADS
        if workloads is None or spec.name in workloads
    ]
    runs = run_many(specs, jobs=jobs)
    return {run.workload: workload_metrics(run) for run in runs}


def build_baseline(
    scale: float = GOLDEN_SCALE,
    config: PredictorConfig = ZEC12_CONFIG_2,
    jobs: int | None = None,
) -> dict:
    """Measure all workloads and assemble a complete baseline document."""
    return {
        "schema": GOLDEN_SCHEMA,
        "config": config.name,
        "scale": scale,
        "tolerances": dict(DEFAULT_TOLERANCES),
        "workloads": measure_workloads(scale=scale, config=config, jobs=jobs),
    }


def write_baseline(path: Path, baseline: dict) -> None:
    """Serialize deterministically (sorted keys, stable layout)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")


def load_baseline(path: Path) -> dict:
    """Load and schema-check a baseline file."""
    baseline = json.loads(path.read_text())
    schema = baseline.get("schema")
    if schema != GOLDEN_SCHEMA:
        raise ValueError(
            f"golden baseline schema {schema!r} != supported {GOLDEN_SCHEMA} "
            f"({path}); regenerate with 'repro verify --update-golden'"
        )
    return baseline


def _within(measured, golden, relative: float) -> bool:
    if isinstance(golden, float) or isinstance(measured, float):
        scale = max(abs(measured), abs(golden), 1.0)
        return abs(measured - golden) <= relative * scale
    return measured == golden


def _compare_block(
    workload: str, measured: dict, golden: dict, relative: float
) -> list[str]:
    problems = []
    for key in sorted(set(measured) | set(golden)):
        if key not in golden:
            problems.append(f"{workload}: metric '{key}' not in baseline")
            continue
        if key not in measured:
            problems.append(f"{workload}: metric '{key}' not measured")
            continue
        if isinstance(golden[key], dict):
            problems.extend(
                _compare_block(
                    f"{workload}.{key}", measured[key], golden[key], relative
                )
            )
        elif not _within(measured[key], golden[key], relative):
            problems.append(
                f"{workload}: {key} measured {measured[key]!r} != "
                f"golden {golden[key]!r} (relative tolerance {relative})"
            )
    return problems


def compare_baseline(
    baseline: dict,
    jobs: int | None = None,
    workloads: tuple[str, ...] | None = None,
    config: PredictorConfig = ZEC12_CONFIG_2,
    engine_mode: str = "object",
) -> list[str]:
    """Re-measure and diff against ``baseline``; return all problems.

    Re-measurement happens at the baseline's own recorded scale, so the
    file is self-describing.  ``workloads`` restricts the check (smoke
    runs); a full gate checks every workload recorded in the file.
    ``engine_mode="batched"`` re-measures with the batched engine, making
    the gate a bit-identity check of the engines against each other.
    """
    relative = float(baseline.get("tolerances", {}).get("relative", 0.0))
    golden_workloads = baseline.get("workloads", {})
    selected = {
        name: golden
        for name, golden in golden_workloads.items()
        if workloads is None or name in workloads
    }
    if not selected:
        return ["no workloads selected from the golden baseline"]
    measured = measure_workloads(
        scale=float(baseline["scale"]), config=config, jobs=jobs,
        workloads=tuple(selected), engine_mode=engine_mode,
    )
    problems = []
    for name in sorted(selected):
        if name not in measured:
            problems.append(f"{name}: workload missing from the catalog")
            continue
        problems.extend(
            _compare_block(name, measured[name], selected[name], relative)
        )
    return problems


def compare_parallel(
    scale: float = GOLDEN_SCALE,
    config: PredictorConfig = ZEC12_CONFIG_2,
    jobs: int | None = None,
    workloads: tuple[str, ...] | None = None,
    intervals: int = 4,
    backend: str | None = None,
) -> list[str]:
    """Prove exact-mode checkpoint-parallel runs equal their serial twins.

    Runs every selected catalog workload twice — serially and cut into
    ``intervals`` checkpoint-parallel slices over ``backend`` — and
    demands the :class:`RunResult` pairs compare **equal**: same counters,
    same CPI, same outcome fractions, bit for bit.  Exact-mode parallelism
    is a pure execution-strategy change; any drift here is a stitching or
    checkpoint-lineage bug, so there is no tolerance to configure.

    Returns a list of problems (empty = every workload is bit-identical).
    The two run families live in distinct result-cache slots, so a cached
    serial result can never satisfy (or poison) the parallel side of the
    comparison.
    """
    from repro.experiments.pool import RunSpec, run_many
    from repro.sampling import ParallelPlan

    selected = [
        spec for spec in TABLE4_WORKLOADS
        if workloads is None or spec.name in workloads
    ]
    if not selected:
        return ["no workloads selected for the parallel gate"]
    plan = ParallelPlan(intervals=intervals)
    serial_specs = [
        RunSpec(workload=spec, config=config, scale=scale, audit=False)
        for spec in selected
    ]
    parallel_specs = [
        RunSpec(workload=spec, config=config, scale=scale, audit=False,
                parallel=plan, backend=backend)
        for spec in selected
    ]
    runs = run_many(serial_specs + parallel_specs, jobs=jobs)
    problems = []
    for spec, serial, parallel in zip(
        selected, runs[:len(selected)], runs[len(selected):]
    ):
        info = parallel.parallel or {}
        if not info.get("exact", False):
            problems.append(
                f"{spec.name}: parallel run degraded to functional warming "
                f"({info.get('warm_fallbacks', '?')} fallback slice(s)) — "
                f"not exact, cannot gate on bit-identity"
            )
        if serial != parallel:
            problems.append(
                f"{spec.name}: parallel({intervals}) result differs from "
                f"serial (cpi {parallel.cpi!r} vs {serial.cpi!r}, "
                f"instructions {parallel.instructions} vs "
                f"{serial.instructions})"
            )
    return problems
