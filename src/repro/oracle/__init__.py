"""Independent verification of the production engine (the oracle layer).

Three cooperating pieces:

* :mod:`repro.oracle.reference` — :class:`ReferencePredictor`, a
  deliberately slow, obviously-correct reimplementation of the
  BTB1/BTBP/PHT/CTB/FIT content semantics and the bulk-preload transfer
  rules, sharing only :mod:`repro.core.config` (plus the passive trace
  vocabulary) with the production engine;
* :mod:`repro.oracle.differential` — :class:`DifferentialRunner`, stepping
  the real :class:`~repro.engine.simulator.Simulator` and the reference
  model in lockstep over any trace and reporting the first divergence
  (cycle, branch address, structure), with ddmin trace shrinking reused
  from :mod:`repro.audit.fuzz`;
* :mod:`repro.oracle.golden` / :mod:`repro.oracle.metamorphic` — the
  pinned per-workload metric baselines under ``tests/golden/`` and the
  model-invariance transforms (address relabeling, region permutation),
  both enforced by ``repro verify``.
"""

from repro.oracle.differential import (
    DifferentialResult,
    DifferentialRunner,
    Divergence,
    DivergenceError,
    mutation_drill,
    run_campaign,
    shrink_divergence,
)
from repro.oracle.reference import ReferencePredictor

__all__ = [
    "DifferentialResult",
    "DifferentialRunner",
    "Divergence",
    "DivergenceError",
    "ReferencePredictor",
    "mutation_drill",
    "run_campaign",
    "shrink_divergence",
]
