"""Lockstep differential testing of the production engine.

The production :class:`~repro.engine.simulator.Simulator` exposes optional
``probe`` observers on its three semantic actors (the simulator itself, the
lookahead searcher, the transfer engine).  :class:`DifferentialRunner`
attaches one probe to all three, replays every semantic event — row probe
and prediction, move protocol, surprise guess and install, training,
bulk-transfer row delivery — against an independent
:class:`~repro.oracle.reference.ReferencePredictor`, and raises on the
*first* output or state divergence, reporting the cycle, branch address and
the structure that disagreed.

The comparison layers, cheapest first:

* **per-event outputs** — predicted direction/target/level/MRU, replacement
  victims, surprise guesses, outcome taxonomy, delivered transfer rows;
* **per-branch row state** — the resolved branch's BTB1/BTBP row contents
  in exact replacement order, so LRU bugs surface on the branch that
  exposes them;
* **periodic + final full state** — a dict-walk diff of the complete
  production snapshot (every table, every counter) against the reference
  model's production-schema snapshot.

A diverging trace is minimized with the ddmin shrinker shared with the
property-fuzz harness (:func:`repro.audit.fuzz.shrink`), using "a fresh
differential run still diverges" as the failure predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.audit.fuzz import FUZZ_CONFIGS, build_trace, shrink
from repro.core.config import PredictorConfig, TABLE3_CONFIGS
from repro.core.events import OutcomeKind, Prediction
from repro.engine.params import DEFAULT_TIMING, TimingParams
from repro.engine.simulator import Simulator
from repro.oracle.reference import (
    GOOD_DYNAMIC,
    GOOD_SURPRISE,
    MISPREDICT_NOT_TAKEN_TAKEN,
    MISPREDICT_TAKEN_NOT_TAKEN,
    MISPREDICT_WRONG_TARGET,
    ReferencePredictor,
    RefEntry,
    RefResolution,
)
from repro.trace.record import TraceRecord

#: Branches between full-state snapshot comparisons.  Row-level compares
#: run on every branch; the full dict walk is O(occupancy) and amortized.
DEFAULT_COMPARE_INTERVAL = 256


@dataclass(frozen=True)
class Divergence:
    """First disagreement between the engine and the reference model."""

    #: The structure (or comparison layer) that disagreed, e.g. ``"BTB1
    #: row"``, ``"surprise BHT"``, ``"hierarchy.fit.table"``.
    structure: str
    #: Human-readable engine-vs-reference detail.
    detail: str
    #: Index of the trace record being resolved when the divergence fired.
    record_index: int
    #: Branch address involved (``None`` for end-of-run state diffs).
    branch_address: int | None
    #: Production search-pipeline cycle at the divergence.
    cycle: int

    def report(self) -> str:
        address = (
            f"0x{self.branch_address:x}"
            if self.branch_address is not None else "<end of run>"
        )
        return (
            f"divergence at record {self.record_index}, branch {address}, "
            f"cycle {self.cycle}: structure '{self.structure}'\n"
            f"  {self.detail}"
        )


class DivergenceError(Exception):
    """Raised by the probe at the first engine/reference disagreement."""

    def __init__(self, divergence: Divergence) -> None:
        super().__init__(divergence.report())
        self.divergence = divergence


@dataclass
class DifferentialResult:
    """Outcome of one differential run."""

    config_name: str
    records: int
    branches: int
    diverged: bool
    divergence: Divergence | None = None
    #: Comparison volume, for "the oracle actually checked things" asserts.
    events_compared: int = 0
    full_compares: int = 0

    def report(self) -> str:
        if not self.diverged:
            return (
                f"no divergence: {self.records} records, {self.branches} "
                f"branches, {self.events_compared} events compared, "
                f"{self.full_compares} full-state compares "
                f"[{self.config_name}]"
            )
        assert self.divergence is not None
        return self.divergence.report()


def _diff_state(production, reference, path: str = "") -> tuple[str, str] | None:
    """First differing path between two snapshot trees, or ``None``.

    Returns ``(path, detail)`` — the path doubles as the divergence's
    structure name (e.g. ``hierarchy.btb1.rows``).
    """
    if isinstance(production, dict) and isinstance(reference, dict):
        for key in sorted(set(production) | set(reference), key=str):
            here = f"{path}.{key}" if path else str(key)
            if key not in production:
                return here, f"only the reference has {here}"
            if key not in reference:
                return here, f"only the engine has {here}"
            found = _diff_state(production[key], reference[key], here)
            if found is not None:
                return found
        return None
    if isinstance(production, (list, tuple)) and isinstance(
        reference, (list, tuple)
    ):
        if len(production) != len(reference):
            return path, (
                f"length {len(production)} (engine) != "
                f"{len(reference)} (reference)"
            )
        for position, (left, right) in enumerate(zip(production, reference)):
            found = _diff_state(left, right, f"{path}[{position}]")
            if found is not None:
                return found
        return None
    if production != reference:
        return path, f"engine {production!r} != reference {reference!r}"
    return None


class _Probe:
    """The observer attached to the simulator, searcher and transfer engine.

    Replays each semantic event on the reference model and compares; all
    hooks raise :class:`DivergenceError` on the first disagreement.
    """

    def __init__(
        self,
        simulator: Simulator,
        oracle: ReferencePredictor,
        compare_interval: int,
    ) -> None:
        self.simulator = simulator
        self.oracle = oracle
        self.compare_interval = compare_interval
        self.record_index = 0
        self.events_compared = 0
        self.full_compares = 0
        #: Prediction in flight between ``on_predict`` and its resolution.
        self._pending: tuple[RefEntry, RefResolution] | None = None
        self._surprise_outcome: str | None = None

    # -- comparison plumbing ------------------------------------------------

    def _fail(self, structure: str, detail: str,
              branch_address: int | None) -> None:
        raise DivergenceError(
            Divergence(
                structure=structure,
                detail=detail,
                record_index=self.record_index,
                branch_address=branch_address,
                cycle=self.simulator.search.cycle,
            )
        )

    def _check(self, structure: str, engine, reference,
               branch_address: int | None) -> None:
        self.events_compared += 1
        if engine != reference:
            self._fail(
                structure,
                f"engine {engine!r} != reference {reference!r}",
                branch_address,
            )

    def _production_state(self) -> dict:
        simulator = self.simulator
        return {
            "hierarchy": simulator.hierarchy.state_dict(),
            "btb2": (
                simulator.btb2.state_dict()
                if simulator.btb2 is not None else None
            ),
        }

    def compare_full_state(self, branch_address: int | None = None) -> None:
        """Dict-walk diff of complete production vs reference snapshots."""
        self.full_compares += 1
        found = _diff_state(self._production_state(), self.oracle.state_dict())
        if found is not None:
            structure, detail = found
            self._fail(structure, detail, branch_address)

    def compare_final_counters(self) -> None:
        """End-of-run totals: branch counts and the outcome taxonomy."""
        counters = self.simulator.counters
        self._check("branch count", counters.branches,
                    self.oracle.branches, None)
        self._check("taken branch count", counters.taken_branches,
                    self.oracle.taken_branches, None)
        for kind, count in counters.outcomes.items():
            self._check(
                f"outcome total '{kind.value}'",
                count, self.oracle.outcomes.get(kind.value, 0), None,
            )

    def _after_branch(self, record: TraceRecord) -> None:
        """Row-level state compare after every resolved branch."""
        simulator = self.simulator
        engine_row = [
            entry.state_dict()
            for entry in simulator.hierarchy.btb1.row_ways(record.address)
        ]
        reference_row = [
            entry.state_dict()
            for entry in self.oracle.btb1.mru_first(record.address)
        ]
        self._check("BTB1 row", engine_row, reference_row, record.address)
        if simulator.hierarchy.btbp is not None:
            engine_row = [
                entry.state_dict()
                for entry in simulator.hierarchy.btbp.row_ways(record.address)
            ]
            reference_row = [
                entry.state_dict()
                for entry in self.oracle.btbp.mru_first(record.address)
            ]
            self._check("BTBP row", engine_row, reference_row, record.address)
        if (
            self.compare_interval
            and self.oracle.branches % self.compare_interval == 0
        ):
            self.compare_full_state(record.address)

    # -- search-side hooks ----------------------------------------------------

    def on_search_restart(self, address: int, cycle: int) -> None:
        self.oracle.on_search_restart()

    def on_predict(self, search_address: int, prediction: Prediction) -> None:
        oracle = self.oracle
        hits = oracle.hits_in_row(search_address)
        if not hits:
            self._fail(
                "BTB1/BTBP row search",
                f"engine predicted branch 0x{prediction.branch_address:x} "
                f"from row 0x{search_address:x}; reference row is empty",
                prediction.branch_address,
            )
        entry, level, from_mru = hits[0]
        self._check("BTB1/BTBP row search", prediction.branch_address,
                    entry.address, prediction.branch_address)
        self._check("prediction level", prediction.level.name, level,
                    prediction.branch_address)
        self._check(f"{level} MRU state", prediction.from_mru, from_mru,
                    prediction.branch_address)
        resolution = oracle.resolve(entry)
        self._check("predicted direction", prediction.taken,
                    resolution.taken, prediction.branch_address)
        self._check("predicted target", prediction.target,
                    resolution.target, prediction.branch_address)
        self._check("PHT consultation", prediction.used_pht,
                    resolution.used_pht, prediction.branch_address)
        self._check("CTB consultation", prediction.used_ctb,
                    resolution.used_ctb, prediction.branch_address)
        oracle.apply_prediction(entry, resolution)
        self._pending = (entry, resolution)

    # -- resolution hooks ------------------------------------------------------

    def on_dynamic_resolve(
        self,
        record: TraceRecord,
        prediction: Prediction,
        kind: OutcomeKind,
        victim,
    ) -> None:
        if self._pending is None:
            self._fail(
                "probe protocol",
                "engine resolved a dynamic prediction the reference never "
                "saw predicted",
                record.address,
            )
        entry, resolution = self._pending
        self._pending = None
        self._check("resolved branch address", record.address, entry.address,
                    record.address)
        oracle = self.oracle
        reference_victim = oracle.use_prediction(entry, prediction.level.name)
        self._check(
            "BTB1 victim",
            victim.address if victim is not None else None,
            (reference_victim.address
             if reference_victim is not None else None),
            record.address,
        )
        if resolution.taken == record.taken and (
            not record.taken or resolution.target == record.target
        ):
            reference_kind = GOOD_DYNAMIC
        elif resolution.taken and record.taken:
            reference_kind = MISPREDICT_WRONG_TARGET
        elif resolution.taken:
            reference_kind = MISPREDICT_TAKEN_NOT_TAKEN
        else:
            reference_kind = MISPREDICT_NOT_TAKEN_TAKEN
        self._check("outcome taxonomy", kind.value, reference_kind,
                    record.address)
        oracle.train(entry, record)
        oracle.record_resolved(record)
        oracle.count_branch(record, reference_kind)
        self._after_branch(record)

    def on_surprise(
        self,
        record: TraceRecord,
        guess_taken: bool,
        late_predicted: bool,
        kind: OutcomeKind,
    ) -> None:
        oracle = self.oracle
        if self._pending is not None:
            # A prediction arrived too late to be used; its search-side
            # side effects already happened in both models.
            entry, _ = self._pending
            self._pending = None
            self._check("late prediction address", record.address,
                        entry.address, record.address)
            if not late_predicted:
                self._fail(
                    "probe protocol",
                    "engine saw no late prediction; the reference predicted "
                    f"0x{entry.address:x}",
                    record.address,
                )
        elif late_predicted:
            self._fail(
                "probe protocol",
                "engine used a late prediction the reference never made",
                record.address,
            )
        resident = oracle.probe_level(record.address)
        seen_before = record.address in oracle.seen
        reference_guess = oracle.guess_surprise(record)
        self._check("surprise BHT", guess_taken, reference_guess,
                    record.address)
        if reference_guess or record.taken:
            reference_kind = oracle.classify_surprise(
                seen_before, resident, late_predicted
            )
        else:
            reference_kind = GOOD_SURPRISE
        self._check("outcome taxonomy", kind.value, reference_kind,
                    record.address)
        self._surprise_outcome = reference_kind

    def on_surprise_commit(self, record: TraceRecord) -> None:
        oracle = self.oracle
        outcome = self._surprise_outcome
        self._surprise_outcome = None
        if outcome is None:
            self._fail(
                "probe protocol",
                "surprise commit without a preceding surprise event",
                record.address,
            )
        if record.taken and record.target is not None:
            oracle.surprise_install(record)
        oracle.train_resident(record)
        oracle.record_resolved(record)
        oracle.count_branch(record, outcome)
        self._after_branch(record)

    # -- preload hooks ---------------------------------------------------------

    def on_row_delivered(
        self, row_address: int, delivered_addresses: list[int]
    ) -> None:
        reference_addresses = self.oracle.deliver_row(row_address)
        self._check(
            "BTB2 transfer row", delivered_addresses, reference_addresses,
            row_address,
        )


class DifferentialRunner:
    """Run the production simulator and the reference model in lockstep."""

    def __init__(
        self,
        config: PredictorConfig,
        timing: TimingParams = DEFAULT_TIMING,
        compare_interval: int = DEFAULT_COMPARE_INTERVAL,
    ) -> None:
        self.config = config
        self.timing = timing
        self.compare_interval = compare_interval

    def run(self, records: list[TraceRecord]) -> DifferentialResult:
        """Differentially simulate ``records``; stop at first divergence."""
        simulator = Simulator(config=self.config, timing=self.timing)
        oracle = ReferencePredictor(self.config)
        probe = _Probe(simulator, oracle, self.compare_interval)
        simulator.probe = probe
        simulator.search.probe = probe
        if simulator.preload is not None:
            simulator.preload.transfer.probe = probe
        divergence: Divergence | None = None
        try:
            for index, record in enumerate(records):
                probe.record_index = index
                simulator.step(record)
            probe.record_index = len(records)
            simulator.finish()
            probe.compare_full_state()
            probe.compare_final_counters()
        except DivergenceError as error:
            divergence = error.divergence
        return DifferentialResult(
            config_name=self.config.name,
            records=len(records),
            branches=oracle.branches,
            diverged=divergence is not None,
            divergence=divergence,
            events_compared=probe.events_compared,
            full_compares=probe.full_compares,
        )


def shrink_divergence(
    trace: list[TraceRecord],
    config: PredictorConfig,
    timing: TimingParams = DEFAULT_TIMING,
) -> list[TraceRecord]:
    """ddmin-minimize a diverging trace (shared shrinker, oracle predicate)."""

    def still_diverges(candidate: list[TraceRecord]) -> bool:
        return DifferentialRunner(config, timing).run(candidate).diverged

    return shrink(trace, config, timing, fails=still_diverges)


#: Default differential campaign: one workload per Table 3 configuration,
#: spanning BTB2-less, full-hierarchy, and big-BTB1 geometries.
DEFAULT_CAMPAIGN_PAIRS: tuple[tuple[str, str], ...] = (
    ("TPF airline reservations", TABLE3_CONFIGS[0].name),
    ("Z/OS DayTrader DBServ", TABLE3_CONFIGS[1].name),
    ("zLinux Informix", TABLE3_CONFIGS[2].name),
)


@dataclass(frozen=True)
class CampaignCase:
    """One (workload, config) differential run specification."""

    workload: str
    config_name: str
    scale: float
    compare_interval: int = DEFAULT_COMPARE_INTERVAL


def differential_case(case: CampaignCase) -> DifferentialResult:
    """Run one campaign case (module-level, so it is pool-picklable)."""
    from repro.workloads.catalog import workload_by_name

    configs = {config.name: config for config in TABLE3_CONFIGS}
    config = configs[case.config_name]
    spec = workload_by_name(case.workload)
    trace = spec.trace(case.scale)
    return DifferentialRunner(
        config, compare_interval=case.compare_interval
    ).run(trace)


def run_campaign(
    pairs: tuple[tuple[str, str], ...] = DEFAULT_CAMPAIGN_PAIRS,
    scale: float = 0.01,
    jobs: int | None = None,
    compare_interval: int = DEFAULT_COMPARE_INTERVAL,
) -> list[DifferentialResult]:
    """Differentially verify real workload traces across configurations."""
    from repro.experiments.pool import parallel_map

    cases = [
        CampaignCase(
            workload=workload, config_name=config_name, scale=scale,
            compare_interval=compare_interval,
        )
        for workload, config_name in pairs
    ]
    return parallel_map(differential_case, cases, jobs=jobs)


def mutation_drill(
    cases: int = 8,
    seed: int = 7,
    config: PredictorConfig | None = None,
) -> DifferentialResult | None:
    """Prove the oracle catches a seeded semantic mutation.

    Temporarily sabotages the production LRU (a used prediction *demotes*
    its BTB entry instead of refreshing it — a classic inverted-touch bug)
    and runs small fuzz traces differentially.  Returns the first diverging
    result, or ``None`` if the sabotage went undetected — the verify gate
    treats ``None`` as a failure of the oracle itself.
    """
    from repro.btb.storage import BranchTargetBuffer

    if config is None:
        config = FUZZ_CONFIGS["small baseline"]
    original_touch = BranchTargetBuffer.touch
    BranchTargetBuffer.touch = BranchTargetBuffer.demote
    try:
        for case in range(cases):
            trace = build_trace((seed << 20) ^ case, length=400)
            result = DifferentialRunner(config).run(trace)
            if result.diverged:
                return result
    finally:
        BranchTargetBuffer.touch = original_touch
    return None
