"""Reference model of the branch-prediction content semantics.

A second, independent implementation of everything the paper specifies
about prediction *content*: the BTB1/BTBP row search and move protocol
(3.1/3.3), PHT/CTB tagged overrides and their enable heuristics, the FIT
recency table, the surprise BHT and static guess rules, the path-history
folds, and the BTB2 bulk-transfer semantics (semi-exclusive demote +
clone-install).  Timing is deliberately out of scope — the production
:class:`~repro.engine.simulator.Simulator` owns the clocks, and the
differential runner feeds this model the *timing facts* (which branch was
predicted dynamically, which transfer rows completed) through probe hooks
while re-deriving every content decision here.

Design rules, the point of the exercise:

* **slow and obvious beats fast and clever** — LRU is explicit recency
  stamps sorted per query, history folds are recomputed from scratch at
  every index (independently cross-checking the production incremental
  folds), tables are plain dicts;
* **share nothing with the production engine** except
  :mod:`repro.core.config` and the passive vocabulary
  (:class:`~repro.trace.record.TraceRecord`,
  :class:`~repro.isa.opcodes.BranchKind`).  The opcode classification
  rules are restated here from the spec rather than imported;
* **snapshots speak the production schema** — ``state_dict()`` emits the
  exact shape of the production structures' ``state_dict()``, so the
  differential runner can diff the two models with a plain dict walk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ExclusivityMode, PredictorConfig
from repro.isa.opcodes import BranchKind
from repro.trace.record import TraceRecord

#: 32-byte search rows: "each row covers 32 bytes of instruction space".
ROW_BYTES = 32

#: 2-bit bimodal counter states and the WEAK_TAKEN init of new entries.
STRONG_NOT_TAKEN = 0
WEAK_TAKEN = 2
STRONG_TAKEN = 3
#: Accumulated bimodal mispredicts before delegating direction to the PHT.
PHT_THRESHOLD = 2
#: Accumulated target mispredicts before delegating the target to the CTB.
CTB_THRESHOLD = 1
#: Branch-address tag width of the PHT/CTB.
TAG_BITS = 10
#: Path history depths: 12 directions, 6 (PHT) / 12 (CTB) taken addresses.
PHT_ADDRESS_DEPTH = 6
CTB_ADDRESS_DEPTH = 12

#: BTBP write sources, by their architected names (production
#: ``WriteSource`` values — restated, not imported).
SURPRISE = "surprise"
PRELOAD_INSTRUCTION = "preload_instruction"
BTB2_HIT = "btb2_hit"
BTB1_VICTIM = "btb1_victim"
WRITE_SOURCES = (SURPRISE, PRELOAD_INSTRUCTION, BTB2_HIT, BTB1_VICTIM)

#: Outcome-taxonomy labels (production ``OutcomeKind`` values, restated).
GOOD_DYNAMIC = "good_dynamic"
GOOD_SURPRISE = "good_surprise"
MISPREDICT_TAKEN_NOT_TAKEN = "bad_taken_resolved_not_taken"
MISPREDICT_NOT_TAKEN_TAKEN = "bad_not_taken_resolved_taken"
MISPREDICT_WRONG_TARGET = "bad_wrong_target"
SURPRISE_COMPULSORY = "surprise_compulsory"
SURPRISE_LATENCY = "surprise_latency"
SURPRISE_CAPACITY = "surprise_capacity"


def always_taken(kind: BranchKind) -> bool:
    """Opcode rule: every kind but a conditional branch must be taken."""
    return kind is not BranchKind.COND


def target_changes(kind: BranchKind) -> bool:
    """Opcode rule: returns and indirect branches have changing targets."""
    return kind in (BranchKind.RETURN, BranchKind.INDIRECT)


def static_guess(kind: BranchKind, backward: bool) -> bool:
    """Opcode static direction rule: always-taken kinds, else BTFNT."""
    return True if always_taken(kind) else backward


def _row_start(address: int) -> int:
    return address & ~(ROW_BYTES - 1)


@dataclass
class RefEntry:
    """One branch's prediction metadata (the BTB entry content)."""

    address: int
    target: int
    kind: BranchKind
    counter: int = WEAK_TAKEN
    use_pht: bool = False
    use_ctb: bool = False
    ctb_confidence: int = 2
    bimodal_misses: int = 0
    target_misses: int = 0

    @property
    def predict_taken(self) -> bool:
        return self.counter >= WEAK_TAKEN

    @property
    def trust_ctb(self) -> bool:
        return self.use_ctb and self.ctb_confidence >= 2

    def train_direction(self, taken: bool) -> None:
        predicted = self.predict_taken
        if taken:
            self.counter = min(STRONG_TAKEN, self.counter + 1)
        else:
            self.counter = max(STRONG_NOT_TAKEN, self.counter - 1)
        if predicted != taken:
            self.bimodal_misses += 1
            if self.bimodal_misses >= PHT_THRESHOLD:
                self.use_pht = True

    def train_target(self, target: int) -> None:
        if target != self.target:
            self.target_misses += 1
            if target_changes(self.kind) or self.target_misses >= CTB_THRESHOLD:
                self.use_ctb = True
            self.target = target
        else:
            self.target_misses = 0

    def bump_ctb_confidence(self, ctb_correct: bool) -> None:
        if ctb_correct:
            self.ctb_confidence = min(3, self.ctb_confidence + 1)
        else:
            self.ctb_confidence = max(0, self.ctb_confidence - 1)

    def clone(self) -> "RefEntry":
        return RefEntry(
            address=self.address, target=self.target, kind=self.kind,
            counter=self.counter, use_pht=self.use_pht, use_ctb=self.use_ctb,
            ctb_confidence=self.ctb_confidence,
            bimodal_misses=self.bimodal_misses,
            target_misses=self.target_misses,
        )

    def state_dict(self) -> dict:
        """Production :class:`~repro.btb.entry.BTBEntry` snapshot schema."""
        return {
            "address": self.address,
            "target": self.target,
            "kind": self.kind.name,
            "counter": self.counter,
            "use_pht": self.use_pht,
            "use_ctb": self.use_ctb,
            "ctb_confidence": self.ctb_confidence,
            "bimodal_misses": self.bimodal_misses,
            "target_misses": self.target_misses,
        }


class _Slot:
    """One occupied BTB way: the entry plus an explicit recency stamp."""

    __slots__ = ("entry", "stamp")

    def __init__(self, entry: RefEntry, stamp: int) -> None:
        self.entry = entry
        self.stamp = stamp


class RefBTB:
    """Set-associative BTB with recency modeled as explicit stamps.

    Most-recent = largest stamp, victim = smallest stamp; demotion assigns
    a fresh below-minimum stamp.  Equivalent to the production MRU-first
    way ordering, but the equivalence is *derived per query* by sorting —
    nothing here depends on maintaining a list in a clever order.
    """

    def __init__(self, rows: int, ways: int) -> None:
        self.rows = rows
        self.ways = ways
        self._rows: list[list[_Slot]] = [[] for _ in range(rows)]
        self._mru_stamp = 0
        self._lru_stamp = 0
        self.installs = 0
        self.evictions = 0

    def _row(self, address: int) -> list[_Slot]:
        return self._rows[(address >> 5) % self.rows]

    def _next_mru(self) -> int:
        self._mru_stamp += 1
        return self._mru_stamp

    def _next_lru(self) -> int:
        self._lru_stamp -= 1
        return self._lru_stamp

    # -- reads ------------------------------------------------------------

    def search_row(self, address: int) -> list[RefEntry]:
        """Tag-matching entries of the row, ascending branch address."""
        start = _row_start(address)
        hits = [
            slot.entry
            for slot in self._row(address)
            if _row_start(slot.entry.address) == start
        ]
        return sorted(hits, key=lambda entry: entry.address)

    def lookup(self, branch_address: int) -> RefEntry | None:
        for slot in self._row(branch_address):
            if slot.entry.address == branch_address:
                return slot.entry
        return None

    def is_mru(self, entry: RefEntry) -> bool:
        slots = self._row(entry.address)
        return bool(slots) and max(slots, key=lambda s: s.stamp).entry is entry

    def mru_first(self, address: int) -> list[RefEntry]:
        """The row's entries in replacement order, most recent first."""
        slots = sorted(self._row(address), key=lambda s: s.stamp, reverse=True)
        return [slot.entry for slot in slots]

    # -- writes -----------------------------------------------------------

    def install(self, entry: RefEntry) -> RefEntry | None:
        """Insert as MRU; same-address replaces in place (never a victim)."""
        slots = self._row(entry.address)
        for slot in slots:
            if slot.entry.address == entry.address:
                slot.entry = entry
                slot.stamp = self._next_mru()
                return None
        self.installs += 1
        victim = None
        if len(slots) >= self.ways:
            oldest = min(slots, key=lambda s: s.stamp)
            slots.remove(oldest)
            victim = oldest.entry
            self.evictions += 1
        slots.append(_Slot(entry, self._next_mru()))
        return victim

    def touch(self, entry: RefEntry) -> None:
        for slot in self._row(entry.address):
            if slot.entry is entry:
                slot.stamp = self._next_mru()
                return

    def demote(self, entry: RefEntry) -> None:
        for slot in self._row(entry.address):
            if slot.entry is entry:
                slot.stamp = self._next_lru()
                return

    def remove(self, branch_address: int) -> RefEntry | None:
        slots = self._row(branch_address)
        for slot in slots:
            if slot.entry.address == branch_address:
                slots.remove(slot)
                return slot.entry
        return None

    def __len__(self) -> int:
        return sum(len(slots) for slots in self._rows)

    def state_dict(self) -> dict:
        """Production :class:`~repro.btb.storage.BranchTargetBuffer` schema."""
        rows = []
        for index, slots in enumerate(self._rows):
            if slots:
                ordered = sorted(slots, key=lambda s: s.stamp, reverse=True)
                rows.append(
                    [index, [slot.entry.state_dict() for slot in ordered]]
                )
        return {
            "rows": rows,
            "installs": self.installs,
            "evictions": self.evictions,
        }


class RefBTBP(RefBTB):
    """Preload table: a :class:`RefBTB` with per-source write accounting."""

    def __init__(self, rows: int, ways: int) -> None:
        super().__init__(rows, ways)
        self.writes_by_source = {source: 0 for source in WRITE_SOURCES}

    def write(self, entry: RefEntry, source: str) -> RefEntry | None:
        self.writes_by_source[source] += 1
        return self.install(entry)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["writes_by_source"] = dict(self.writes_by_source)
        return state


class RefBTB2(RefBTB):
    """Second level: victim/surprise write accounting on a :class:`RefBTB`."""

    def __init__(self, rows: int, ways: int) -> None:
        super().__init__(rows, ways)
        self.transfer_hits = 0
        self.victim_writes = 0
        self.surprise_writes = 0

    def write_victim(self, entry: RefEntry) -> RefEntry | None:
        self.victim_writes += 1
        return self.install(entry)

    def write_surprise(self, entry: RefEntry) -> RefEntry | None:
        self.surprise_writes += 1
        return self.install(entry.clone())

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["transfer_hits"] = self.transfer_hits
        state["victim_writes"] = self.victim_writes
        state["surprise_writes"] = self.surprise_writes
        return state


def _tag(branch_address: int) -> int:
    return (branch_address >> 1) & ((1 << TAG_BITS) - 1)


class RefPHT:
    """Direct-mapped tagged direction table as a plain dict."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._table: dict[int, list[int]] = {}  # index -> [tag, counter]
        self.tag_hits = 0
        self.tag_misses = 0

    def predict(self, branch_address: int, index: int) -> bool | None:
        slot = self._table.get(index)
        if slot is None or slot[0] != _tag(branch_address):
            self.tag_misses += 1
            return None
        self.tag_hits += 1
        return slot[1] >= WEAK_TAKEN

    def update(self, branch_address: int, index: int, taken: bool) -> None:
        tag = _tag(branch_address)
        slot = self._table.get(index)
        if slot is None or slot[0] != tag:
            self._table[index] = [tag, WEAK_TAKEN if taken else WEAK_TAKEN - 1]
            return
        if taken:
            slot[1] = min(STRONG_TAKEN, slot[1] + 1)
        else:
            slot[1] = max(STRONG_NOT_TAKEN, slot[1] - 1)

    def state_dict(self) -> dict:
        return {
            "table": [
                [index, *self._table[index]] for index in sorted(self._table)
            ],
            "tag_hits": self.tag_hits,
            "tag_misses": self.tag_misses,
        }


class RefCTB:
    """Direct-mapped tagged target table as a plain dict."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._table: dict[int, list[int]] = {}  # index -> [tag, target]
        self.tag_hits = 0
        self.tag_misses = 0

    def predict(self, branch_address: int, index: int) -> int | None:
        slot = self._table.get(index)
        if slot is None or slot[0] != _tag(branch_address):
            self.tag_misses += 1
            return None
        self.tag_hits += 1
        return slot[1]

    def peek(self, branch_address: int, index: int) -> int | None:
        slot = self._table.get(index)
        if slot is None or slot[0] != _tag(branch_address):
            return None
        return slot[1]

    def update(self, branch_address: int, index: int, target: int) -> None:
        self._table[index] = [_tag(branch_address), target]

    def state_dict(self) -> dict:
        return {
            "table": [
                [index, *self._table[index]] for index in sorted(self._table)
            ],
            "tag_hits": self.tag_hits,
            "tag_misses": self.tag_misses,
        }


class RefFIT:
    """Fully-associative recency table as an explicit LRU-to-MRU list."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._order: list[list[int]] = []  # [address, hint], LRU first
        self.hits = 0
        self.misses = 0

    def _find(self, branch_address: int) -> list[int] | None:
        for pair in self._order:
            if pair[0] == branch_address:
                return pair
        return None

    def probe(self, branch_address: int) -> bool:
        pair = self._find(branch_address)
        if pair is None:
            self.misses += 1
            return False
        self._order.remove(pair)
        self._order.append(pair)
        self.hits += 1
        return True

    def train(self, branch_address: int, hint: int) -> None:
        pair = self._find(branch_address)
        if pair is not None:
            self._order.remove(pair)
        self._order.append([branch_address, hint])
        while len(self._order) > self.entries:
            self._order.pop(0)

    def state_dict(self) -> dict:
        return {
            "table": [list(pair) for pair in self._order],
            "hits": self.hits,
            "misses": self.misses,
        }


class RefSurpriseBHT:
    """Tagless one-bit direction history as a sparse dict."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._bits: dict[int, bool] = {}
        self.guesses = 0
        self.correct_guesses = 0

    def _index(self, address: int) -> int:
        return (address >> 1) % self.entries

    def guess(self, address: int, kind: BranchKind, backward: bool) -> bool:
        self.guesses += 1
        if always_taken(kind):
            return True
        bit = self._bits.get(self._index(address))
        if bit is None:
            return static_guess(kind, backward)
        return bit

    def update(self, address: int, kind: BranchKind, taken: bool) -> None:
        if kind is BranchKind.COND:
            self._bits[self._index(address)] = taken

    def record_outcome(self, guessed: bool, taken: bool) -> None:
        if guessed == taken:
            self.correct_guesses += 1

    def state_dict(self) -> dict:
        return {
            "bits": [[index, self._bits[index]]
                     for index in sorted(self._bits)],
            "guesses": self.guesses,
            "correct_guesses": self.correct_guesses,
        }


class RefHistory:
    """Path history with from-scratch fold computation at every index."""

    def __init__(self) -> None:
        self.directions: list[bool] = []        # last 12, oldest first
        self.taken_addresses: list[int] = []    # last 12, oldest first

    def record(self, branch_address: int, taken: bool) -> None:
        self.directions = (self.directions + [taken])[-CTB_ADDRESS_DEPTH:]
        if taken:
            self.taken_addresses = (
                self.taken_addresses + [branch_address]
            )[-CTB_ADDRESS_DEPTH:]

    def _fold(self, depth: int) -> int:
        folded = 0
        for address in self.taken_addresses[-depth:]:
            folded = ((folded << 3) | (folded >> 13)) & 0xFFFF
            folded ^= (address >> 1) & 0xFFFF
        return folded

    def _direction_bits(self) -> int:
        bits = 0
        for taken in self.directions:
            bits = (bits << 1) | int(taken)
        return bits & 0xFFF

    def pht_index(self, table_entries: int) -> int:
        return (self._direction_bits() ^ self._fold(PHT_ADDRESS_DEPTH)) \
            % table_entries

    def ctb_index(self, table_entries: int) -> int:
        return self._fold(CTB_ADDRESS_DEPTH) % table_entries

    def state_dict(self) -> dict:
        return {
            "directions": list(self.directions),
            "taken_addresses": list(self.taken_addresses),
        }


@dataclass(frozen=True)
class RefResolution:
    """Content decision for a found branch (direction and target)."""

    taken: bool
    target: int | None
    used_pht: bool
    used_ctb: bool


class ReferencePredictor:
    """The full first+second-level content model, wired per the paper.

    The differential runner drives this through the same sequence of
    semantic events the production engine executes (row probe & predict,
    move protocol, surprise install, training, transfer-row delivery) and
    compares outputs after each.  Levels are named by plain strings
    (``"BTB1"`` / ``"BTBP"``) to keep the model free of production types.
    """

    def __init__(self, config: PredictorConfig) -> None:
        self.config = config
        self.btb1 = RefBTB(config.btb1_rows, config.btb1_ways)
        self.btbp = (
            RefBTBP(config.btbp_rows, config.btbp_ways)
            if config.btbp_enabled else None
        )
        self.btb2 = (
            RefBTB2(config.btb2_rows, config.btb2_ways)
            if config.btb2_enabled else None
        )
        self.pht = RefPHT(config.pht_entries)
        self.ctb = RefCTB(config.ctb_entries)
        self.fit = RefFIT(config.fit_entries)
        self.surprise_bht = RefSurpriseBHT(config.surprise_bht_entries)
        self.history = RefHistory()
        self.btbp_promotions = 0
        self.surprise_installs = 0
        #: Last predicted-taken branch address (the single-branch-loop /
        #: FIT re-index gate of the search pipeline; reset on restarts).
        self.last_taken_address: int | None = None
        #: Branch addresses resolved at least once (surprise taxonomy).
        self.seen: set[int] = set()
        self.outcomes: dict[str, int] = {}
        self.branches = 0
        self.taken_branches = 0

    # -- search-side semantics --------------------------------------------

    def hits_in_row(self, address: int) -> list[tuple[RefEntry, str, bool]]:
        """``(entry, level, from_mru)`` at/after ``address`` in its row.

        BTB1 and BTBP are read in parallel; a duplicated branch is served
        by its BTB1 copy.  Ascending address order.
        """
        found: dict[int, tuple[RefEntry, str, bool]] = {}
        if self.btbp is not None:
            for entry in self.btbp.search_row(address):
                if entry.address >= address:
                    found[entry.address] = (
                        entry, "BTBP", self.btbp.is_mru(entry)
                    )
        for entry in self.btb1.search_row(address):
            if entry.address >= address:
                found[entry.address] = (entry, "BTB1", self.btb1.is_mru(entry))
        return [found[key] for key in sorted(found)]

    def resolve(self, entry: RefEntry) -> RefResolution:
        """Direction/target decision, with PHT/CTB consultation stats."""
        taken = entry.predict_taken
        used_pht = False
        if entry.use_pht:
            pht_direction = self.pht.predict(
                entry.address, self.history.pht_index(self.pht.entries)
            )
            if pht_direction is not None:
                taken = pht_direction
                used_pht = True
        target: int | None = None
        used_ctb = False
        if taken:
            target = entry.target
            if entry.trust_ctb:
                ctb_target = self.ctb.predict(
                    entry.address, self.history.ctb_index(self.ctb.entries)
                )
                if ctb_target is not None:
                    target = ctb_target
                    used_ctb = True
        return RefResolution(taken, target, used_pht, used_ctb)

    def apply_prediction(self, entry: RefEntry, resolution: RefResolution) -> None:
        """Search-pipeline side effects of emitting one prediction.

        The FIT is probed for taken predictions outside a single-branch
        loop (the re-index cost lookup), then trained with the next search
        row for every predicted-taken branch.
        """
        if resolution.taken and self.last_taken_address != entry.address:
            self.fit.probe(entry.address)
        if resolution.taken and resolution.target is not None:
            self.last_taken_address = entry.address
            self.fit.train(
                entry.address,
                (resolution.target >> 5) % self.config.btb1_rows,
            )
        else:
            self.last_taken_address = None

    def on_search_restart(self) -> None:
        """A pipeline restart clears the searcher's taken-branch context."""
        self.last_taken_address = None

    # -- move protocol ------------------------------------------------------

    def use_prediction(self, entry: RefEntry, level: str) -> RefEntry | None:
        """The 3.1/3.3 move protocol; returns the BTB1 victim, if any."""
        if level == "BTB1":
            self.btb1.touch(entry)
            return None
        assert self.btbp is not None
        self.btbp.remove(entry.address)
        self.btbp_promotions += 1
        victim = self.btb1.install(entry)
        if victim is not None:
            self.btbp.write(victim, BTB1_VICTIM)
            self._writeback_victim(victim)
        return victim

    def _writeback_victim(self, victim: RefEntry) -> None:
        if self.btb2 is None:
            return
        if self.config.exclusivity is ExclusivityMode.NO_VICTIM_WRITEBACK:
            return
        self.btb2.write_victim(victim.clone())

    def surprise_install(self, record: TraceRecord) -> RefEntry:
        entry = RefEntry(
            address=record.address, target=record.target, kind=record.kind,
            counter=WEAK_TAKEN,
        )
        self.surprise_installs += 1
        if self.btbp is not None:
            self.btbp.write(entry, SURPRISE)
        else:
            victim = self.btb1.install(entry)
            if victim is not None:
                self._writeback_victim(victim)
        if self.btb2 is not None:
            self.btb2.write_surprise(entry)
        return entry

    def preload_write(self, entry: RefEntry) -> None:
        if self.btbp is not None:
            self.btbp.write(entry, BTB2_HIT)
        else:
            victim = self.btb1.install(entry)
            if victim is not None:
                self._writeback_victim(victim)

    def deliver_row(self, row_address: int) -> list[int]:
        """One bulk-transfer row completion: demote + clone-install hits.

        Returns the delivered branch addresses (ascending), for comparison
        against the production transfer engine.
        """
        assert self.btb2 is not None
        hits = self.btb2.search_row(row_address)
        for entry in hits:
            if self.config.exclusivity is ExclusivityMode.INCLUSIVE:
                self.btb2.touch(entry)
            else:
                self.btb2.demote(entry)
            self.btb2.transfer_hits += 1
            self.preload_write(entry.clone())
        return [entry.address for entry in hits]

    # -- resolution-side semantics -------------------------------------------

    def train(self, entry: RefEntry, record: TraceRecord) -> None:
        entry.train_direction(record.taken)
        if entry.use_pht:
            self.pht.update(
                entry.address, self.history.pht_index(self.pht.entries),
                record.taken,
            )
        if record.taken and record.target is not None:
            if entry.use_ctb:
                index = self.history.ctb_index(self.ctb.entries)
                would_predict = self.ctb.peek(entry.address, index)
                if would_predict is not None:
                    entry.bump_ctb_confidence(would_predict == record.target)
                self.ctb.update(entry.address, index, record.target)
            entry.train_target(record.target)

    def train_resident(self, record: TraceRecord) -> None:
        entry = self.btb1.lookup(record.address)
        if entry is None and self.btbp is not None:
            entry = self.btbp.lookup(record.address)
        if entry is not None:
            self.train(entry, record)

    def record_resolved(self, record: TraceRecord) -> None:
        self.surprise_bht.update(record.address, record.kind, record.taken)
        self.history.record(record.address, record.taken)

    def guess_surprise(self, record: TraceRecord) -> bool:
        """Static/BHT direction guess for an unpredicted branch."""
        backward = (
            record.target is not None and record.target <= record.address
        )
        guess = self.surprise_bht.guess(record.address, record.kind, backward)
        self.surprise_bht.record_outcome(guess, record.taken)
        return guess

    def probe_level(self, branch_address: int) -> str | None:
        if self.btb1.lookup(branch_address) is not None:
            return "BTB1"
        if self.btbp is not None and self.btbp.lookup(branch_address) is not None:
            return "BTBP"
        return None

    def classify_surprise(
        self, seen_before: bool, resident: str | None, late_predicted: bool
    ) -> str:
        """Compulsory / latency / capacity taxonomy of section 5.1."""
        if not seen_before:
            return SURPRISE_COMPULSORY
        if late_predicted or resident is not None:
            return SURPRISE_LATENCY
        return SURPRISE_CAPACITY

    def count_branch(self, record: TraceRecord, outcome: str) -> None:
        """Fold one resolved branch into the model's own counters."""
        self.branches += 1
        if record.taken:
            self.taken_branches += 1
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        self.seen.add(record.address)

    # -- snapshots ------------------------------------------------------------

    def state_dict(self) -> dict:
        """Production-schema snapshot of every content structure.

        Matches ``{"hierarchy": sim.hierarchy.state_dict(),
        "btb2": sim.btb2.state_dict()}`` of a production simulator whose
        content evolved identically.
        """
        return {
            "hierarchy": {
                "btb1": self.btb1.state_dict(),
                "btbp": self.btbp.state_dict() if self.btbp is not None else None,
                "pht": self.pht.state_dict(),
                "ctb": self.ctb.state_dict(),
                "fit": self.fit.state_dict(),
                "surprise_bht": self.surprise_bht.state_dict(),
                "history": self.history.state_dict(),
                "btbp_promotions": self.btbp_promotions,
                "surprise_installs": self.surprise_installs,
            },
            "btb2": self.btb2.state_dict() if self.btb2 is not None else None,
        }
