#!/usr/bin/env python3
"""Steering study: watching the ordering table order a bulk transfer.

Drives the section 3.7 machinery directly: a program visits a 4 KB block
along a characteristic sector path; the ordering table learns it; a BTB2
block search is then steered so the sectors the code will actually execute
transfer first.  The script prints the learned entry, the resulting sector
order, and the end-to-end CPI effect of steering on a block-hopping
workload.
"""

from repro import Simulator, ZEC12_CONFIG_1, ZEC12_CONFIG_2, cpi_improvement
from repro.preload.ordering import OrderingEntry, OrderingTable, OrderingTracker, order_sectors
from repro.workloads import ProgramShape, WalkProfile, build_program, generate_trace

BLOCK = 0x4000_0000


def demonstrate_ordering() -> None:
    """Teach the table one block's path and show the steered order."""
    table = OrderingTable()
    tracker = OrderingTracker(table)
    # The program enters the block in quartile 0, runs sectors 1 and 2,
    # jumps to quartile 3 (sectors 26-27), and leaves.
    for offset in (0x090, 0x0A0, 0x110, 0xD10, 0xD90):
        tracker.observe(BLOCK + offset)
    tracker.observe(BLOCK + 0x10_0000)  # leave the block (commit)

    entry = table.lookup(BLOCK)
    print("learned ordering entry:")
    print(f"  active sectors : "
          f"{[s for s in range(32) if entry.sector_active(s)]}")
    print(f"  quartile 0 refs: {sorted(entry.referenced_from(0))}")

    steered = order_sectors(entry, BLOCK + 0x090)
    naive = order_sectors(None, BLOCK + 0x090)
    print(f"\nsteered transfer order (first 8): {steered[:8]}")
    print(f"naive sequential order (first 8) : {naive[:8]}")
    print("-> the executed quartile-3 sectors jump the queue.\n")


def measure_cpi_effect() -> None:
    """End-to-end effect of steering on a cold-code-heavy workload."""
    shape = ProgramShape(
        functions=3000, blocks_per_function=(3, 7),
        instructions_per_block=(2, 5), call_fraction=0.14,
        loop_fraction=0.12, loop_trips=(2, 6), indirect_fraction=0.02,
        forward_taken_bias=0.3, seed=5,
    )
    profile = WalkProfile(uniform_fraction=0.6, burst_mean=2.0,
                          max_call_depth=4, max_loop_iterations=12, seed=35)
    trace = generate_trace(build_program(shape), 400_000, profile)

    baseline = Simulator(ZEC12_CONFIG_1).run(trace)
    steered = Simulator(ZEC12_CONFIG_2).run(trace)
    unsteered = Simulator(
        ZEC12_CONFIG_2.with_(steering_enabled=False, name="BTB2, no steering")
    ).run(trace)

    print("end-to-end CPI benefit of the BTB2 vs configuration 1:")
    print(f"  with ordering-table steering : "
          f"{cpi_improvement(baseline.cpi, steered.cpi):6.2f}%")
    print(f"  sequential transfer order    : "
          f"{cpi_improvement(baseline.cpi, unsteered.cpi):6.2f}%")


def main() -> None:
    demonstrate_ordering()
    measure_cpi_effect()


if __name__ == "__main__":
    main()
